#include "common/status.h"

namespace tpdb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace tpdb
