// Datum: the tagged scalar value flowing through the relational engine.
//
// Following the way the paper extends PostgreSQL with a lineage column type,
// the executor treats lineage references as just another datum type; interval
// endpoints are ordinary int64 columns.
#ifndef TPDB_COMMON_DATUM_H_
#define TPDB_COMMON_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace tpdb {

/// Opaque reference to a lineage formula node owned by a LineageManager.
/// Hash-consing in the manager guarantees that equal ids denote structurally
/// identical formulas, so comparing ids is a sound (syntactic) equality.
struct LineageRef {
  uint32_t id = kNullId;

  /// Sentinel meaning "no lineage" (the SQL NULL of the lineage column).
  static constexpr uint32_t kNullId = 0xffffffffu;

  bool is_null() const { return id == kNullId; }
  static LineageRef Null() { return LineageRef{}; }

  friend bool operator==(LineageRef a, LineageRef b) { return a.id == b.id; }
  friend bool operator!=(LineageRef a, LineageRef b) { return a.id != b.id; }
  friend bool operator<(LineageRef a, LineageRef b) { return a.id < b.id; }
};

/// Physical type tags of engine values.
enum class DatumType { kNull, kInt64, kDouble, kString, kLineage };

/// A single engine value. `std::monostate` encodes SQL NULL.
class Datum {
 public:
  Datum() : value_(std::monostate{}) {}
  Datum(int64_t v) : value_(v) {}                 // NOLINT
  Datum(double v) : value_(v) {}                  // NOLINT
  Datum(std::string v) : value_(std::move(v)) {}  // NOLINT
  Datum(const char* v) : value_(std::string(v)) {}  // NOLINT
  Datum(LineageRef v) : value_(v) {}              // NOLINT

  static Datum Null() { return Datum(); }

  DatumType type() const {
    switch (value_.index()) {
      case 0: return DatumType::kNull;
      case 1: return DatumType::kInt64;
      case 2: return DatumType::kDouble;
      case 3: return DatumType::kString;
      case 4: return DatumType::kLineage;
    }
    return DatumType::kNull;
  }

  bool is_null() const { return value_.index() == 0; }

  int64_t AsInt64() const {
    TPDB_CHECK(type() == DatumType::kInt64) << "datum is not int64";
    return std::get<int64_t>(value_);
  }
  double AsDouble() const {
    TPDB_CHECK(type() == DatumType::kDouble) << "datum is not double";
    return std::get<double>(value_);
  }
  const std::string& AsString() const {
    TPDB_CHECK(type() == DatumType::kString) << "datum is not string";
    return std::get<std::string>(value_);
  }
  LineageRef AsLineage() const {
    TPDB_CHECK(type() == DatumType::kLineage) << "datum is not lineage";
    return std::get<LineageRef>(value_);
  }

  /// Total order across types (NULL < int64 < double < string < lineage),
  /// used by Sort / Dedup operators.
  int Compare(const Datum& other) const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }
  bool operator!=(const Datum& other) const { return Compare(other) != 0; }
  bool operator<(const Datum& other) const { return Compare(other) < 0; }

  /// 64-bit hash for hash-partitioned joins.
  uint64_t Hash() const;

  /// Debug / CSV rendering.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, LineageRef>
      value_;
};

}  // namespace tpdb

#endif  // TPDB_COMMON_DATUM_H_
