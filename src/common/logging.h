// Lightweight assertion / logging macros in the spirit of the database
// codebases this project follows: CHECK-style invariant enforcement that is
// active in all build types, DCHECK for debug-only checks, and a minimal
// leveled logger (TPDB_LOG) for the long-running subsystems — server, WAL,
// compactor — whose failure paths must be visible to an operator, not
// silent.
//
// TPDB_LOG(WARN) << "wal: " << detail;
//
// writes one line to stderr:  [   12.345] W wal.cc:101] wal: detail
// where the timestamp is steady-clock seconds since the first log call.
// The minimum level comes from the TPDB_LOG_LEVEL environment variable
// ("debug" | "info" | "warn" | "error" | "off", default "info") and can be
// overridden programmatically with SetMinLogLevel. A disabled level costs
// one relaxed atomic load and a branch.
#ifndef TPDB_COMMON_LOGGING_H_
#define TPDB_COMMON_LOGGING_H_

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace tpdb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace internal {

inline std::atomic<int>& LogLevelSlot() {
  static std::atomic<int> slot{-1};  // -1 = not yet read from the env
  return slot;
}

inline LogLevel LevelFromEnv() {
  const char* env = std::getenv("TPDB_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off" || v == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

inline LogLevel MinLogLevel() {
  int v = LogLevelSlot().load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(LevelFromEnv());
    LogLevelSlot().store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

/// Seconds on the steady clock since the first call (i.e. roughly process
/// uptime) — monotonic log timestamps that survive wall-clock jumps.
inline double LogUptimeSeconds() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin)
      .count();
}

/// Stream collector flushing one formatted line to stderr on destruction.
class LogMessageBuilder {
 public:
  LogMessageBuilder(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessageBuilder() {
    static constexpr char kTags[] = {'D', 'I', 'W', 'E'};
    const char* base = std::strrchr(file_, '/');
    const std::string body = stream_.str();
    // One fprintf so concurrent writers do not interleave mid-line.
    std::fprintf(stderr, "[%9.3f] %c %s:%d] %s\n", LogUptimeSeconds(),
                 kTags[static_cast<int>(level_) & 3],
                 base != nullptr ? base + 1 : file_, line_, body.c_str());
  }
  template <typename T>
  LogMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// TPDB_LOG(INFO) pastes to kLogINFO below.
inline constexpr LogLevel kLogDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogWARN = LogLevel::kWarn;
inline constexpr LogLevel kLogERROR = LogLevel::kError;

// Terminates the process with a formatted message. Kept out-of-line-ish via
// [[noreturn]] so the hot path only pays for the branch.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

// Stream collector so that `TPDB_CHECK(x) << "detail"` works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Programmatic override of the minimum log level (takes precedence over
/// TPDB_LOG_LEVEL once called).
inline void SetMinLogLevel(LogLevel level) {
  internal::LogLevelSlot().store(static_cast<int>(level),
                                 std::memory_order_relaxed);
}

inline LogLevel MinLogLevel() { return internal::MinLogLevel(); }

}  // namespace tpdb

#define TPDB_LOG(severity)                                               \
  if (::tpdb::internal::kLog##severity >= ::tpdb::internal::MinLogLevel()) \
  ::tpdb::internal::LogMessageBuilder(::tpdb::internal::kLog##severity,  \
                                      __FILE__, __LINE__)

#define TPDB_CHECK(condition)                                        \
  if (!(condition))                                                  \
  ::tpdb::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define TPDB_CHECK_EQ(a, b) TPDB_CHECK((a) == (b))
#define TPDB_CHECK_NE(a, b) TPDB_CHECK((a) != (b))
#define TPDB_CHECK_LT(a, b) TPDB_CHECK((a) < (b))
#define TPDB_CHECK_LE(a, b) TPDB_CHECK((a) <= (b))
#define TPDB_CHECK_GT(a, b) TPDB_CHECK((a) > (b))
#define TPDB_CHECK_GE(a, b) TPDB_CHECK((a) >= (b))

#ifndef NDEBUG
#define TPDB_DCHECK(condition) TPDB_CHECK(condition)
#else
#define TPDB_DCHECK(condition) \
  if (false) ::tpdb::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#endif

#endif  // TPDB_COMMON_LOGGING_H_
