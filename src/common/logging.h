// Lightweight assertion / logging macros in the spirit of the database
// codebases this project follows (CHECK-style invariant enforcement that is
// active in all build types, plus DCHECK for debug-only checks).
#ifndef TPDB_COMMON_LOGGING_H_
#define TPDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tpdb {
namespace internal {

// Terminates the process with a formatted message. Kept out-of-line-ish via
// [[noreturn]] so the hot path only pays for the branch.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

// Stream collector so that `TPDB_CHECK(x) << "detail"` works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tpdb

#define TPDB_CHECK(condition)                                        \
  if (!(condition))                                                  \
  ::tpdb::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define TPDB_CHECK_EQ(a, b) TPDB_CHECK((a) == (b))
#define TPDB_CHECK_NE(a, b) TPDB_CHECK((a) != (b))
#define TPDB_CHECK_LT(a, b) TPDB_CHECK((a) < (b))
#define TPDB_CHECK_LE(a, b) TPDB_CHECK((a) <= (b))
#define TPDB_CHECK_GT(a, b) TPDB_CHECK((a) > (b))
#define TPDB_CHECK_GE(a, b) TPDB_CHECK((a) >= (b))

#ifndef NDEBUG
#define TPDB_DCHECK(condition) TPDB_CHECK(condition)
#else
#define TPDB_DCHECK(condition) \
  if (false) ::tpdb::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#endif

#endif  // TPDB_COMMON_LOGGING_H_
