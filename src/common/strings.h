// Small string helpers shared by printing, CSV I/O, and benches.
#ifndef TPDB_COMMON_STRINGS_H_
#define TPDB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tpdb {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep` (no trimming; empty fields preserved).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tpdb

#endif  // TPDB_COMMON_STRINGS_H_
