#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace tpdb {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  TPDB_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Random::Exponential(double mean) {
  TPDB_CHECK_GT(mean, 0.0);
  const double u = NextDouble();
  const double v = -mean * std::log(1.0 - u);
  const auto r = static_cast<int64_t>(v);
  return r < 1 ? 1 : r;
}

int64_t Random::Zipf(int64_t n, double s) {
  TPDB_CHECK_GT(n, 0);
  if (s <= 0.0) return Uniform(0, n - 1);
  // Inverse-CDF on the (truncated) harmonic weights; O(log n) via a bisection
  // over the analytic approximation would be faster, but generators are not
  // on the measured path, so a rejection scheme keeps this simple and exact
  // enough: sample via the standard "two-level" approximation.
  const double u = NextDouble();
  // Approximate inverse CDF of Zipf using the continuous analogue.
  const double t = std::pow(static_cast<double>(n), 1.0 - s);
  const double x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
  auto r = static_cast<int64_t>(x) - 1;
  if (r < 0) r = 0;
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace tpdb
