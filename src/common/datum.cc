#include "common/datum.h"

#include <cmath>
#include <cstring>

namespace tpdb {

namespace {
// 64-bit FNV-1a; adequate for partitioning, not for adversarial input.
uint64_t FnvHash(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

int Datum::Compare(const Datum& other) const {
  const int ti = static_cast<int>(type());
  const int to = static_cast<int>(other.type());
  if (ti != to) return ti < to ? -1 : 1;
  switch (type()) {
    case DatumType::kNull:
      return 0;
    case DatumType::kInt64: {
      const int64_t a = std::get<int64_t>(value_);
      const int64_t b = std::get<int64_t>(other.value_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DatumType::kDouble: {
      const double a = std::get<double>(value_);
      const double b = std::get<double>(other.value_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DatumType::kString:
      return std::get<std::string>(value_).compare(
          std::get<std::string>(other.value_));
    case DatumType::kLineage: {
      const uint32_t a = std::get<LineageRef>(value_).id;
      const uint32_t b = std::get<LineageRef>(other.value_).id;
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
  return 0;
}

uint64_t Datum::Hash() const {
  switch (type()) {
    case DatumType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case DatumType::kInt64: {
      const int64_t v = std::get<int64_t>(value_);
      return FnvHash(&v, sizeof(v), 1);
    }
    case DatumType::kDouble: {
      const double v = std::get<double>(value_);
      return FnvHash(&v, sizeof(v), 2);
    }
    case DatumType::kString: {
      const std::string& s = std::get<std::string>(value_);
      return FnvHash(s.data(), s.size(), 3);
    }
    case DatumType::kLineage: {
      const uint32_t v = std::get<LineageRef>(value_).id;
      return FnvHash(&v, sizeof(v), 4);
    }
  }
  return 0;
}

std::string Datum::ToString() const {
  switch (type()) {
    case DatumType::kNull:
      return "-";
    case DatumType::kInt64:
      return std::to_string(std::get<int64_t>(value_));
    case DatumType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(value_));
      return buf;
    }
    case DatumType::kString:
      return std::get<std::string>(value_);
    case DatumType::kLineage: {
      LineageRef r = std::get<LineageRef>(value_);
      if (r.is_null()) return "-";
      return "λ#" + std::to_string(r.id);
    }
  }
  return "?";
}

}  // namespace tpdb
