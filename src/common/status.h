// Status / StatusOr: exception-free error propagation, following the
// RocksDB / Arrow idiom of returning a rich status object from fallible
// operations instead of throwing.
#ifndef TPDB_COMMON_STATUS_H_
#define TPDB_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace tpdb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  kIOError,
  kResourceExhausted,
};

/// Result of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad interval".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    TPDB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if not OK.
  const T& value() const& {
    TPDB_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    TPDB_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TPDB_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define TPDB_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::tpdb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace tpdb

#endif  // TPDB_COMMON_STATUS_H_
