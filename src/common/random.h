// Deterministic PRNG used by workload generators and property tests.
// A fixed, seedable generator (xoshiro256**) keeps experiments reproducible
// across standard libraries (std::mt19937 distributions are not portable).
#ifndef TPDB_COMMON_RANDOM_H_
#define TPDB_COMMON_RANDOM_H_

#include <cstdint>

namespace tpdb {

/// Seedable xoshiro256** generator with convenience sampling helpers.
class Random {
 public:
  explicit Random(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator (SplitMix64 expansion of the seed).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric-ish positive integer with mean ~`mean` (clamped to >= 1).
  int64_t Exponential(double mean);

  /// Zipf-distributed value in [0, n) with exponent `s` (s=0 -> uniform).
  int64_t Zipf(int64_t n, double s);

 private:
  uint64_t state_[4];
};

}  // namespace tpdb

#endif  // TPDB_COMMON_RANDOM_H_
