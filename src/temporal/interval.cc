#include "temporal/interval.h"

namespace tpdb {

std::string Interval::ToString() const {
  if (empty()) return "[)";
  return "[" + std::to_string(start) + "," + std::to_string(end) + ")";
}

}  // namespace tpdb
