// Timeline utilities: gap computation, coverage tests, coalescing, and the
// endpoint priority queue used by the LAWAN sweep.
#ifndef TPDB_TEMPORAL_TIMELINE_H_
#define TPDB_TEMPORAL_TIMELINE_H_

#include <queue>
#include <vector>

#include "temporal/interval.h"

namespace tpdb {

/// Returns the maximal subintervals of `domain` NOT covered by any interval
/// in `covered`. `covered` need not be sorted or disjoint. This is the
/// declarative specification of what LAWAU computes incrementally.
std::vector<Interval> Gaps(const Interval& domain,
                           std::vector<Interval> covered);

/// Returns the maximal subintervals of `domain` covered by at least one
/// interval in `covered` (the complement of Gaps within the domain).
std::vector<Interval> CoveredRuns(const Interval& domain,
                                  std::vector<Interval> covered);

/// True iff every chronon of `domain` lies in some interval of `cover`.
bool Covers(const Interval& domain, std::vector<Interval> cover);

/// Merges adjacent/overlapping intervals of a set (classic coalescing).
/// Input need not be sorted; output is sorted and pairwise disjoint with
/// no two adjacent intervals meeting.
std::vector<Interval> Coalesce(std::vector<Interval> intervals);

/// True iff the intervals are pairwise disjoint (share no chronon).
bool PairwiseDisjoint(std::vector<Interval> intervals);

/// Sorted distinct event points (starts and ends) of a set of intervals,
/// optionally clipped to a domain. Consecutive events delimit the maximal
/// runs over which the set of valid intervals is constant.
std::vector<TimePoint> EventPoints(const std::vector<Interval>& intervals,
                                   const Interval* clip_to = nullptr);

/// Min-heap of (ending point, payload) pairs: the priority queue the LAWAN
/// sweep uses to find the next ending point among the valid negative tuples.
template <typename Payload>
class EndpointQueue {
 public:
  void Push(TimePoint end, Payload payload) {
    heap_.push(Entry{end, std::move(payload)});
  }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  TimePoint MinEnd() const {
    TPDB_CHECK(!heap_.empty());
    return heap_.top().end;
  }
  /// Pops and returns the payload of the minimal entry.
  Payload Pop() {
    TPDB_CHECK(!heap_.empty());
    Payload p = heap_.top().payload;
    heap_.pop();
    return p;
  }
  void Clear() { heap_ = {}; }

 private:
  struct Entry {
    TimePoint end;
    Payload payload;
    bool operator>(const Entry& other) const { return end > other.end; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

}  // namespace tpdb

#endif  // TPDB_TEMPORAL_TIMELINE_H_
