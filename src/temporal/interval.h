// Half-open time intervals [start, end) over an integer (chronon) timeline,
// the temporal model used by the paper (e.g. [7,10) = days 7, 8, 9).
#ifndef TPDB_TEMPORAL_INTERVAL_H_
#define TPDB_TEMPORAL_INTERVAL_H_

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace tpdb {

/// Discrete time point (chronon).
using TimePoint = int64_t;

/// Half-open interval [start, end). An interval is valid iff start < end;
/// the default-constructed interval is the canonical empty interval.
struct Interval {
  TimePoint start = 0;
  TimePoint end = 0;

  Interval() = default;
  Interval(TimePoint s, TimePoint e) : start(s), end(e) {}

  /// Number of chronons covered.
  int64_t duration() const { return end > start ? end - start : 0; }

  bool empty() const { return start >= end; }

  /// True iff time point t lies inside [start, end).
  bool Contains(TimePoint t) const { return t >= start && t < end; }

  /// True iff `other` is fully contained in this interval.
  bool Contains(const Interval& other) const {
    return !other.empty() && other.start >= start && other.end <= end;
  }

  /// True iff the two intervals share at least one chronon.
  bool Overlaps(const Interval& other) const {
    return start < other.end && other.start < end;
  }

  /// True iff this interval ends exactly where `other` starts (meets).
  bool Meets(const Interval& other) const { return end == other.start; }

  /// Intersection; empty interval if disjoint.
  Interval Intersect(const Interval& other) const {
    const TimePoint s = start > other.start ? start : other.start;
    const TimePoint e = end < other.end ? end : other.end;
    return s < e ? Interval(s, e) : Interval();
  }

  /// Smallest interval containing both (only meaningful if they touch).
  Interval Span(const Interval& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return Interval(start < other.start ? start : other.start,
                    end > other.end ? end : other.end);
  }

  bool operator==(const Interval& other) const {
    if (empty() && other.empty()) return true;
    return start == other.start && end == other.end;
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  /// Lexicographic (start, end) order; used by sort-based operators.
  bool operator<(const Interval& other) const {
    if (start != other.start) return start < other.start;
    return end < other.end;
  }

  /// Renders as "[s,e)".
  std::string ToString() const;
};

}  // namespace tpdb

#endif  // TPDB_TEMPORAL_INTERVAL_H_
