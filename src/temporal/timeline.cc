#include "temporal/timeline.h"

#include <algorithm>

namespace tpdb {

std::vector<Interval> Gaps(const Interval& domain,
                           std::vector<Interval> covered) {
  std::vector<Interval> gaps;
  if (domain.empty()) return gaps;
  // Clip to domain and drop empties.
  std::vector<Interval> clipped;
  clipped.reserve(covered.size());
  for (const Interval& iv : covered) {
    Interval c = iv.Intersect(domain);
    if (!c.empty()) clipped.push_back(c);
  }
  std::sort(clipped.begin(), clipped.end());
  TimePoint cur = domain.start;
  for (const Interval& iv : clipped) {
    if (iv.start > cur) gaps.emplace_back(cur, iv.start);
    cur = std::max(cur, iv.end);
  }
  if (cur < domain.end) gaps.emplace_back(cur, domain.end);
  return gaps;
}

std::vector<Interval> CoveredRuns(const Interval& domain,
                                  std::vector<Interval> covered) {
  std::vector<Interval> runs;
  if (domain.empty()) return runs;
  std::vector<Interval> clipped;
  clipped.reserve(covered.size());
  for (const Interval& iv : covered) {
    Interval c = iv.Intersect(domain);
    if (!c.empty()) clipped.push_back(c);
  }
  return Coalesce(std::move(clipped));
}

bool Covers(const Interval& domain, std::vector<Interval> cover) {
  return Gaps(domain, std::move(cover)).empty();
}

std::vector<Interval> Coalesce(std::vector<Interval> intervals) {
  std::vector<Interval> out;
  intervals.erase(
      std::remove_if(intervals.begin(), intervals.end(),
                     [](const Interval& iv) { return iv.empty(); }),
      intervals.end());
  if (intervals.empty()) return out;
  std::sort(intervals.begin(), intervals.end());
  Interval cur = intervals.front();
  for (size_t i = 1; i < intervals.size(); ++i) {
    const Interval& iv = intervals[i];
    if (iv.start <= cur.end) {
      cur.end = std::max(cur.end, iv.end);
    } else {
      out.push_back(cur);
      cur = iv;
    }
  }
  out.push_back(cur);
  return out;
}

bool PairwiseDisjoint(std::vector<Interval> intervals) {
  intervals.erase(
      std::remove_if(intervals.begin(), intervals.end(),
                     [](const Interval& iv) { return iv.empty(); }),
      intervals.end());
  std::sort(intervals.begin(), intervals.end());
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].start < intervals[i - 1].end) return false;
  }
  return true;
}

std::vector<TimePoint> EventPoints(const std::vector<Interval>& intervals,
                                   const Interval* clip_to) {
  std::vector<TimePoint> pts;
  pts.reserve(intervals.size() * 2);
  for (const Interval& iv : intervals) {
    Interval c = clip_to != nullptr ? iv.Intersect(*clip_to) : iv;
    if (c.empty()) continue;
    pts.push_back(c.start);
    pts.push_back(c.end);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

}  // namespace tpdb
