// Window-plan assembly: wires the overlap join, LAWAU and LAWAN into one
// pipelined plan (the NJ execution strategy). Exposed separately from the
// join operators so the benchmarks can measure each stage — WO, WUO
// (Fig. 5), WN / WUON (Fig. 6) — exactly as the paper does.
#ifndef TPDB_TP_PLANS_H_
#define TPDB_TP_PLANS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/operator.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"
#include "tp/window.h"

namespace tpdb {

/// How far to take the window pipeline.
enum class WindowStage {
  kOverlap,  ///< r ⟕_{θo∧θ} s only (WO + full-interval unmatched)
  kWuo,      ///< + LAWAU: all unmatched windows (the paper's WUO)
  kWuon,     ///< + LAWAN: all negating windows (the paper's WUON)
};

/// A runnable window pipeline plus the materialized inputs it scans.
/// Move-only; the tables are heap-allocated so operators' pointers stay
/// valid across moves. The probe table is shared: morsel plans built by
/// the parallel runtime all point at one flattened s.
struct WindowPlan {
  std::unique_ptr<Table> r_table;
  std::shared_ptr<const Table> s_table;
  WindowLayout layout{0, 0};
  OperatorPtr root;
};

/// Builds the NJ pipeline over `r` and `s` up to `stage`. With `probe`
/// (from MakeWindowProbeSide over the same `s`), the plan reuses the
/// shared flattened table and partitioned build instead of re-deriving
/// them — the parallel driver's path, where `r` is one morsel.
StatusOr<WindowPlan> MakeWindowPlan(const TPRelation& r, const TPRelation& s,
                                    const JoinCondition& theta,
                                    WindowStage stage,
                                    OverlapAlgorithm algorithm =
                                        OverlapAlgorithm::kPartitioned,
                                    const OverlapProbeSide* probe = nullptr);

/// Flattens and (for the partitioned algorithm) hash-partitions `s` once,
/// for sharing across many MakeWindowPlan calls.
StatusOr<OverlapProbeSide> MakeWindowProbeSide(const TPRelation& s,
                                               const Schema& r_facts,
                                               const JoinCondition& theta,
                                               OverlapAlgorithm algorithm);

/// Continues a materialized WUO table with LAWAN only (used by the Fig. 6
/// bench to time WN in isolation). `wuo` must outlive the operator.
OperatorPtr MakeLawanOnly(const Table* wuo, WindowLayout layout,
                          LineageManager* manager);

/// Convenience for tests and examples: runs the pipeline and returns the
/// materialized windows of the requested classes.
StatusOr<std::vector<TPWindow>> ComputeWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta,
    WindowStage stage,
    OverlapAlgorithm algorithm = OverlapAlgorithm::kPartitioned);

}  // namespace tpdb

#endif  // TPDB_TP_PLANS_H_
