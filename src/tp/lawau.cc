#include "tp/lawau.h"

#include <algorithm>

namespace tpdb {

Lawau::Lawau(OperatorPtr child, WindowLayout layout)
    : child_(std::move(child)), layout_(layout) {
  TPDB_CHECK(child_ != nullptr);
}

void Lawau::Open() {
  child_->Open();
  in_group_ = false;
  input_done_ = false;
  pending_.clear();
}

void Lawau::EmitUnmatched(TimePoint from, TimePoint to) {
  if (from >= to) return;
  Row gap = group_prototype_;
  // Null out the s side; keep rid, r facts, r interval and λr.
  for (int i = 0; i < layout_.num_s_facts(); ++i)
    gap[layout_.s_fact(i)] = Datum::Null();
  gap[layout_.s_ts()] = Datum::Null();
  gap[layout_.s_te()] = Datum::Null();
  gap[layout_.s_lin()] = Datum::Null();
  gap[layout_.w_ts()] = Datum(from);
  gap[layout_.w_te()] = Datum(to);
  gap[layout_.w_class()] =
      Datum(static_cast<int64_t>(WindowClass::kUnmatched));
  pending_.push_back(std::move(gap));
}

void Lawau::FinishGroup() {
  if (!in_group_) return;
  // Case 5 of Fig. 3: the r tuple extends past the last overlapping window.
  EmitUnmatched(covered_end_, group_r_interval_.end);
  in_group_ = false;
}

void Lawau::Consume(Row row) {
  const int64_t rid = layout_.RidOf(row);
  const WindowClass cls = layout_.ClassOf(row);
  const Interval w = layout_.WindowOf(row);

  if (!in_group_ || rid != group_rid_) {
    FinishGroup();
    in_group_ = true;
    group_rid_ = rid;
    group_r_interval_ = layout_.RIntervalOf(row);
    group_prototype_ = row;
    covered_end_ = group_r_interval_.start;
  }

  if (cls == WindowClass::kUnmatched) {
    // Full-interval unmatched window from the overlap join (the r tuple
    // matched nothing); copy through — it already covers the whole tuple.
    covered_end_ = std::max(covered_end_, w.end);
    pending_.push_back(std::move(row));
    return;
  }

  TPDB_DCHECK(cls == WindowClass::kOverlapping);
  // Cases 1-4 of Fig. 3: a gap before this overlapping window is an
  // unmatched window; overlapping windows may themselves overlap, so the
  // sweep tracks the maximal covered end.
  if (w.start > covered_end_) EmitUnmatched(covered_end_, w.start);
  covered_end_ = std::max(covered_end_, w.end);
  pending_.push_back(std::move(row));
}

bool Lawau::Next(Row* out) {
  while (pending_.empty()) {
    if (input_done_) return false;
    Row row;
    if (child_->Next(&row)) {
      Consume(std::move(row));
    } else {
      input_done_ = true;
      FinishGroup();
    }
  }
  *out = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

}  // namespace tpdb
