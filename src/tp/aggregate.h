// Probabilistic temporal aggregation over TP relations.
//
// The classic sequenced aggregate: partition the timeline into maximal
// intervals over which the set of valid tuples is constant and report, per
// interval, an aggregate of the valid tuples. In a probabilistic database
// the natural COUNT is the *expected* count (sum of tuple probabilities,
// by linearity of expectation — exact even for correlated lineages), and
// the probability that at least one / none of the valid tuples is true.
#ifndef TPDB_TP_AGGREGATE_H_
#define TPDB_TP_AGGREGATE_H_

#include <vector>

#include "common/status.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// One run of the aggregate timeline.
struct TemporalAggregateRow {
  Interval interval;
  /// Number of valid tuples over the interval.
  size_t valid_tuples = 0;
  /// Expected number of true tuples: Σ Pr[λi] (exact).
  double expected_count = 0.0;
  /// Probability that at least one valid tuple is true: Pr[∨ λi] (exact).
  double prob_any = 0.0;
  /// Probability that no valid tuple is true (= 1 - prob_any).
  double prob_none = 1.0;
};

/// Options for TemporalAggregate.
struct TemporalAggregateOptions {
  /// Optional restriction of the timeline (empty = full extent).
  Interval window;
  /// Emit runs with zero valid tuples (gaps) too?
  bool include_empty_runs = false;
};

/// Computes the aggregate timeline of `rel` with an event sweep over the
/// tuples' endpoints: O(n log n + runs · cost(probability)).
StatusOr<std::vector<TemporalAggregateRow>> TemporalAggregate(
    const TPRelation& rel, const TemporalAggregateOptions& options = {});

}  // namespace tpdb

#endif  // TPDB_TP_AGGREGATE_H_
