#include "tp/set_ops.h"

#include "tp/overlap_join.h"
#include "tp/plans.h"

namespace tpdb {

namespace {

/// Checks union compatibility and builds θ: equality on every fact column
/// (positionally; column names may differ between the inputs).
StatusOr<JoinCondition> FullFactEquality(const TPRelation& r,
                                         const TPRelation& s) {
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  const Schema& rf = r.fact_schema();
  const Schema& sf = s.fact_schema();
  if (rf.num_columns() != sf.num_columns())
    return Status::InvalidArgument(
        "set operation on relations of different arity: (" + rf.ToString() +
        ") vs (" + sf.ToString() + ")");
  for (size_t i = 0; i < rf.num_columns(); ++i) {
    if (rf.column(i).type != sf.column(i).type &&
        rf.column(i).type != DatumType::kNull &&
        sf.column(i).type != DatumType::kNull)
      return Status::InvalidArgument("set operation on mismatched column " +
                                     std::to_string(i));
  }
  JoinCondition theta;
  for (size_t i = 0; i < rf.num_columns(); ++i)
    theta.equal_columns.emplace_back(rf.column(i).name, sf.column(i).name);
  return theta;
}

/// How one window class contributes to a set operation's output lineage.
enum class SetConcat { kSkip, kLinR, kLinS, kAnd, kAndNot, kOr };

struct SetOpSpec {
  SetConcat unmatched = SetConcat::kSkip;
  SetConcat negating = SetConcat::kSkip;
  /// Also include the unmatched windows of s w.r.t. r (as λs)?
  bool include_s_unmatched = false;
};

Status EmitWindowStream(Operator* windows, const WindowLayout& layout,
                        LineageManager* manager, const SetOpSpec& spec,
                        bool swapped, TPRelation* result) {
  windows->Open();
  while (const Row* row_ptr = windows->NextRef()) {
    const Row& row = *row_ptr;
    const WindowClass cls = layout.ClassOf(row);
    SetConcat concat = SetConcat::kSkip;
    if (cls == WindowClass::kUnmatched)
      concat = swapped ? (spec.include_s_unmatched ? SetConcat::kLinR
                                                   : SetConcat::kSkip)
                       : spec.unmatched;
    else if (cls == WindowClass::kNegating)
      concat = swapped ? SetConcat::kSkip : spec.negating;
    if (concat == SetConcat::kSkip) continue;

    const LineageRef lin_r = layout.RLinOf(row);
    const LineageRef lin_s = layout.SLinOf(row);
    LineageRef lineage;
    switch (concat) {
      case SetConcat::kLinR:
        lineage = lin_r;
        break;
      case SetConcat::kLinS:
        lineage = lin_s;
        break;
      case SetConcat::kAnd:
        lineage = manager->And(lin_r, lin_s);
        break;
      case SetConcat::kAndNot:
        lineage = manager->AndNot(lin_r, lin_s);
        break;
      case SetConcat::kOr:
        lineage = manager->Or(lin_r, lin_s);
        break;
      case SetConcat::kSkip:
        continue;
    }
    Row fact;
    fact.reserve(layout.num_r_facts());
    for (int i = 0; i < layout.num_r_facts(); ++i)
      fact.push_back(row[layout.r_fact(i)]);
    TPDB_RETURN_IF_ERROR(
        result->AppendDerived(std::move(fact), layout.WindowOf(row), lineage));
  }
  windows->Close();
  return Status::OK();
}

Status EmitSetWindows(const TPRelation& r, const TPRelation& s,
                      const JoinCondition& theta, const SetOpSpec& spec,
                      bool swapped, TPRelation* result) {
  StatusOr<WindowPlan> plan =
      MakeWindowPlan(r, s, theta, WindowStage::kWuon);
  if (!plan.ok()) return plan.status();
  return EmitWindowStream(plan->root.get(), plan->layout, r.manager(), spec,
                          swapped, result);
}

/// The window-concatenation recipe of each set operation.
SetOpSpec SpecOf(TPSetOpKind kind) {
  SetOpSpec spec;
  switch (kind) {
    case TPSetOpKind::kUnion:
      spec.unmatched = SetConcat::kLinR;
      spec.negating = SetConcat::kOr;
      spec.include_s_unmatched = true;
      break;
    case TPSetOpKind::kIntersect:
      spec.negating = SetConcat::kAnd;
      break;
    case TPSetOpKind::kDifference:
      spec.unmatched = SetConcat::kLinR;
      spec.negating = SetConcat::kAndNot;
      break;
  }
  return spec;
}

StatusOr<TPRelation> RunSetOp(TPSetOpKind kind, const TPRelation& r,
                              const TPRelation& s, std::string name) {
  TPRelation result(std::move(name), r.fact_schema(), r.manager());
  TPDB_RETURN_IF_ERROR(
      RunSetOpPipeline(kind, /*s_driven=*/false, r, s, &result));
  if (SetOpHasSDrivenPipeline(kind)) {
    TPDB_RETURN_IF_ERROR(
        RunSetOpPipeline(kind, /*s_driven=*/true, r, s, &result));
  }
  return result;
}

}  // namespace

const char* TPSetOpKindName(TPSetOpKind kind) {
  switch (kind) {
    case TPSetOpKind::kUnion:
      return "union";
    case TPSetOpKind::kIntersect:
      return "intersect";
    case TPSetOpKind::kDifference:
      return "except";
  }
  return "?";
}

bool SetOpHasSDrivenPipeline(TPSetOpKind kind) {
  return SpecOf(kind).include_s_unmatched;
}

StatusOr<JoinCondition> SetOpCondition(const TPRelation& r,
                                       const TPRelation& s) {
  return FullFactEquality(r, s);
}

Status EmitSetOpWindows(TPSetOpKind kind, bool swapped, Operator* windows,
                        const WindowLayout& layout, LineageManager* manager,
                        TPRelation* result) {
  TPDB_CHECK(windows != nullptr && result != nullptr);
  return EmitWindowStream(windows, layout, manager, SpecOf(kind), swapped,
                          result);
}

Status RunSetOpPipeline(TPSetOpKind kind, bool s_driven, const TPRelation& r,
                        const TPRelation& s, TPRelation* result) {
  TPDB_CHECK(result != nullptr);
  StatusOr<JoinCondition> theta = FullFactEquality(r, s);
  if (!theta.ok()) return theta.status();
  const SetOpSpec spec = SpecOf(kind);
  if (!s_driven)
    return EmitSetWindows(r, s, *theta, spec, /*swapped=*/false, result);
  // Pipeline with the inputs exchanged: its unmatched windows are the
  // facts valid only in s.
  TPDB_CHECK(spec.include_s_unmatched)
      << TPSetOpKindName(kind) << " has no s-driven pipeline";
  return EmitSetWindows(s, r, SwapJoinCondition(*theta), spec,
                        /*swapped=*/true, result);
}

StatusOr<TPRelation> TPSetOp(TPSetOpKind kind, const TPRelation& r,
                             const TPRelation& s, std::string result_name) {
  if (result_name.empty())
    result_name =
        r.name() + "_" + TPSetOpKindName(kind) + "_" + s.name();
  return RunSetOp(kind, r, s, std::move(result_name));
}

StatusOr<TPRelation> TPSetOp(const TPSetOpSpec& spec, const TPRelation& r,
                             const TPRelation& s) {
  return TPSetOp(spec.kind, r, s, spec.result_name);
}

StatusOr<TPRelation> TPUnion(const TPRelation& r, const TPRelation& s,
                             std::string result_name) {
  if (result_name.empty()) result_name = r.name() + "_union_" + s.name();
  return RunSetOp(TPSetOpKind::kUnion, r, s, std::move(result_name));
}

StatusOr<TPRelation> TPIntersect(const TPRelation& r, const TPRelation& s,
                                 std::string result_name) {
  if (result_name.empty()) result_name = r.name() + "_intersect_" + s.name();
  return RunSetOp(TPSetOpKind::kIntersect, r, s, std::move(result_name));
}

StatusOr<TPRelation> TPDifference(const TPRelation& r, const TPRelation& s,
                                  std::string result_name) {
  if (result_name.empty()) result_name = r.name() + "_except_" + s.name();
  return RunSetOp(TPSetOpKind::kDifference, r, s, std::move(result_name));
}

}  // namespace tpdb
