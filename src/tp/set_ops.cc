#include "tp/set_ops.h"

#include "tp/overlap_join.h"
#include "tp/plans.h"

namespace tpdb {

namespace {

/// Checks union compatibility and builds θ: equality on every fact column
/// (positionally; column names may differ between the inputs).
StatusOr<JoinCondition> FullFactEquality(const TPRelation& r,
                                         const TPRelation& s) {
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  const Schema& rf = r.fact_schema();
  const Schema& sf = s.fact_schema();
  if (rf.num_columns() != sf.num_columns())
    return Status::InvalidArgument(
        "set operation on relations of different arity: (" + rf.ToString() +
        ") vs (" + sf.ToString() + ")");
  for (size_t i = 0; i < rf.num_columns(); ++i) {
    if (rf.column(i).type != sf.column(i).type &&
        rf.column(i).type != DatumType::kNull &&
        sf.column(i).type != DatumType::kNull)
      return Status::InvalidArgument("set operation on mismatched column " +
                                     std::to_string(i));
  }
  JoinCondition theta;
  for (size_t i = 0; i < rf.num_columns(); ++i)
    theta.equal_columns.emplace_back(rf.column(i).name, sf.column(i).name);
  return theta;
}

/// How one window class contributes to a set operation's output lineage.
enum class SetConcat { kSkip, kLinR, kLinS, kAnd, kAndNot, kOr };

struct SetOpSpec {
  SetConcat unmatched = SetConcat::kSkip;
  SetConcat negating = SetConcat::kSkip;
  /// Also include the unmatched windows of s w.r.t. r (as λs)?
  bool include_s_unmatched = false;
};

Status EmitSetWindows(const TPRelation& r, const TPRelation& s,
                      const JoinCondition& theta, const SetOpSpec& spec,
                      bool swapped, TPRelation* result) {
  LineageManager* manager = r.manager();
  StatusOr<WindowPlan> plan =
      MakeWindowPlan(r, s, theta, WindowStage::kWuon);
  if (!plan.ok()) return plan.status();
  const WindowLayout& layout = plan->layout;
  plan->root->Open();
  Row row;
  while (plan->root->Next(&row)) {
    const WindowClass cls = layout.ClassOf(row);
    SetConcat concat = SetConcat::kSkip;
    if (cls == WindowClass::kUnmatched)
      concat = swapped ? (spec.include_s_unmatched ? SetConcat::kLinR
                                                   : SetConcat::kSkip)
                       : spec.unmatched;
    else if (cls == WindowClass::kNegating)
      concat = swapped ? SetConcat::kSkip : spec.negating;
    if (concat == SetConcat::kSkip) continue;

    const LineageRef lin_r = layout.RLinOf(row);
    const LineageRef lin_s = layout.SLinOf(row);
    LineageRef lineage;
    switch (concat) {
      case SetConcat::kLinR:
        lineage = lin_r;
        break;
      case SetConcat::kLinS:
        lineage = lin_s;
        break;
      case SetConcat::kAnd:
        lineage = manager->And(lin_r, lin_s);
        break;
      case SetConcat::kAndNot:
        lineage = manager->AndNot(lin_r, lin_s);
        break;
      case SetConcat::kOr:
        lineage = manager->Or(lin_r, lin_s);
        break;
      case SetConcat::kSkip:
        continue;
    }
    Row fact;
    fact.reserve(layout.num_r_facts());
    for (int i = 0; i < layout.num_r_facts(); ++i)
      fact.push_back(row[layout.r_fact(i)]);
    TPDB_RETURN_IF_ERROR(
        result->AppendDerived(std::move(fact), layout.WindowOf(row), lineage));
  }
  plan->root->Close();
  return Status::OK();
}

StatusOr<TPRelation> RunSetOp(const TPRelation& r, const TPRelation& s,
                              const SetOpSpec& spec, std::string name) {
  StatusOr<JoinCondition> theta = FullFactEquality(r, s);
  if (!theta.ok()) return theta.status();
  TPRelation result(std::move(name), r.fact_schema(), r.manager());
  TPDB_RETURN_IF_ERROR(
      EmitSetWindows(r, s, *theta, spec, /*swapped=*/false, &result));
  if (spec.include_s_unmatched) {
    // Second pipeline with the inputs exchanged: its unmatched windows are
    // the facts valid only in s.
    JoinCondition swapped_theta = SwapJoinCondition(*theta);
    TPDB_RETURN_IF_ERROR(EmitSetWindows(s, r, swapped_theta, spec,
                                        /*swapped=*/true, &result));
  }
  return result;
}

}  // namespace

StatusOr<TPRelation> TPUnion(const TPRelation& r, const TPRelation& s,
                             std::string result_name) {
  if (result_name.empty()) result_name = r.name() + "_union_" + s.name();
  SetOpSpec spec;
  spec.unmatched = SetConcat::kLinR;
  spec.negating = SetConcat::kOr;
  spec.include_s_unmatched = true;
  return RunSetOp(r, s, spec, std::move(result_name));
}

StatusOr<TPRelation> TPIntersect(const TPRelation& r, const TPRelation& s,
                                 std::string result_name) {
  if (result_name.empty()) result_name = r.name() + "_intersect_" + s.name();
  SetOpSpec spec;
  spec.negating = SetConcat::kAnd;
  return RunSetOp(r, s, spec, std::move(result_name));
}

StatusOr<TPRelation> TPDifference(const TPRelation& r, const TPRelation& s,
                                  std::string result_name) {
  if (result_name.empty()) result_name = r.name() + "_except_" + s.name();
  SetOpSpec spec;
  spec.unmatched = SetConcat::kLinR;
  spec.negating = SetConcat::kAndNot;
  return RunSetOp(r, s, spec, std::move(result_name));
}

}  // namespace tpdb
