// Public TP join operators (the paper's Table II):
//
//   anti join   r ▷ s      — WU(r;s,θ) ∪ WN(r;s,θ)
//   left outer  r ⟕ s      — WU(r;s,θ) ∪ WN(r;s,θ) ∪ WO(r;s,θ)
//   right outer r ⟖ s      — WO(r;s,θ) ∪ WU(s;r,θ) ∪ WN(s;r,θ)
//   full outer  r ⟗ s      — all five sets (WO computed once)
//   inner       r ⋈ s      — WO(r;s,θ) (for completeness)
//   semi join   r ⋉ s      — WN(r;s,θ) with lineage λr ∧ λs (an extension:
//                            the dual of the anti join, expressible with
//                            the same windows and a different concatenation)
//
// Each window becomes one output tuple: facts and interval taken verbatim,
// lineage combined with the class's concatenation function, probability
// computed exactly from the lineage.
#ifndef TPDB_TP_OPERATORS_H_
#define TPDB_TP_OPERATORS_H_

#include <string>

#include "common/status.h"
#include "tp/overlap_join.h"
#include "tp/plans.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// The TP joins of the paper (Table II) plus inner and semi joins.
enum class TPJoinKind {
  kInner,
  kAnti,
  kLeftOuter,
  kRightOuter,
  kFullOuter,
  kSemi,
};

/// Parses/prints the operator symbol used in the paper.
const char* TPJoinKindName(TPJoinKind kind);

/// Execution strategy for a TP join.
enum class JoinStrategy {
  /// The paper's approach: lineage-aware windows via LAWAU/LAWAN (NJ).
  kLineageAware,
  /// The baseline: Temporal Alignment adapted for TP joins (TA).
  kTemporalAlignment,
};

/// Options for TPJoin.
struct TPJoinOptions {
  JoinStrategy strategy = JoinStrategy::kLineageAware;
  /// Physical algorithm for the NJ overlap join (ablation knob).
  OverlapAlgorithm overlap_algorithm = OverlapAlgorithm::kPartitioned;
  /// Name of the result relation ("" = derived from the inputs).
  std::string result_name;
  /// Verify the duplicate-free-in-time invariant of both inputs up front
  /// (O(n log n); benchmarks switch this off to time the join alone).
  bool validate_inputs = true;
  /// Slice-count hint for the time-partitioned parallel sweep driver
  /// (exec/time_partition.h); 0 derives it from the context's parallelism.
  /// Only meaningful with overlap_algorithm == kSweep under ParallelTPJoin.
  int time_slices = 0;
};

/// Computes `kind` over r and s with condition θ. Both relations must share
/// a LineageManager and satisfy Validate().
StatusOr<TPRelation> TPJoin(TPJoinKind kind, const TPRelation& r,
                            const TPRelation& s, const JoinCondition& theta,
                            const TPJoinOptions& options = {});

/// Plan-node payload of a TP join: everything needed to construct the
/// operator, minus the inputs (which arrive from the children of the
/// physical node). The executor of a PhysTPJoin node (api/physical_plan.h)
/// builds one of these from the node and hands it to TPJoin — or to
/// exec/parallel.h's ParallelTPJoin when a context is in play.
struct TPJoinSpec {
  TPJoinKind kind = TPJoinKind::kInner;
  JoinCondition theta;
  TPJoinOptions options;
};

/// Runs the join described by `spec` over (r, s).
StatusOr<TPRelation> TPJoin(const TPJoinSpec& spec, const TPRelation& r,
                            const TPRelation& s);

// Convenience wrappers.
StatusOr<TPRelation> TPInnerJoin(const TPRelation& r, const TPRelation& s,
                                 const JoinCondition& theta,
                                 const TPJoinOptions& options = {});
StatusOr<TPRelation> TPAntiJoin(const TPRelation& r, const TPRelation& s,
                                const JoinCondition& theta,
                                const TPJoinOptions& options = {});
StatusOr<TPRelation> TPLeftOuterJoin(const TPRelation& r, const TPRelation& s,
                                     const JoinCondition& theta,
                                     const TPJoinOptions& options = {});
StatusOr<TPRelation> TPRightOuterJoin(const TPRelation& r, const TPRelation& s,
                                      const JoinCondition& theta,
                                      const TPJoinOptions& options = {});
StatusOr<TPRelation> TPFullOuterJoin(const TPRelation& r, const TPRelation& s,
                                     const JoinCondition& theta,
                                     const TPJoinOptions& options = {});
StatusOr<TPRelation> TPSemiJoin(const TPRelation& r, const TPRelation& s,
                                const JoinCondition& theta,
                                const TPJoinOptions& options = {});

/// Output fact schema of `kind` over the given input fact schemas (r facts
/// followed by s facts, except anti join which keeps only r facts).
Schema TPJoinOutputSchema(TPJoinKind kind, const Schema& r_facts,
                          const Schema& s_facts);

// -- Pipeline-level entry points (the parallel driver's building blocks) --
//
// A lineage-aware join runs up to two window pipelines: the r-driven one
// (windows per r tuple — every kind except right outer) and the s-driven
// one (windows per s tuple — right and full outer). Each pipeline's output
// depends on one driving tuple plus the whole other side, so exec/ can run
// a pipeline over contiguous morsels of its driving input and concatenate
// the partial outputs in morsel order to reproduce the serial emit order.

/// Which pipelines `kind` runs.
struct JoinPipelines {
  bool r_driven = false;
  bool s_driven = false;
};
JoinPipelines LineageAwareJoinPipelines(TPJoinKind kind);

/// Runs ONE window pipeline of the lineage-aware `kind` over (r, s) —
/// in join orientation, even for the s-driven pipeline — appending output
/// tuples to `result`, whose schema must be TPJoinOutputSchema(kind, …).
/// Serial LineageAwareJoin == r-driven pipeline, then s-driven pipeline.
/// With `probe` (a MakeWindowProbeSide over the pipeline's probe input —
/// s for the r-driven pipeline, r for the s-driven one), the window plan
/// reuses the shared flattened table + partitioned build.
Status RunLineageAwareJoinPipeline(TPJoinKind kind, bool s_driven,
                                   const TPRelation& r, const TPRelation& s,
                                   const JoinCondition& theta,
                                   OverlapAlgorithm algorithm,
                                   TPRelation* result,
                                   const OverlapProbeSide* probe = nullptr);

/// The window→tuple emission rule of one pipeline of `kind`, applied to an
/// arbitrary window stream (canonical WindowLayout rows; for non-inner
/// kinds the stream must already include the LAWAU/LAWAN output). The
/// time-partitioned driver (exec/time_partition.h) runs the per-rid tail
/// of a pipeline over regrouped slice outputs through this.
Status EmitJoinWindows(TPJoinKind kind, bool s_driven, Operator* windows,
                       const WindowLayout& layout, LineageManager* manager,
                       TPRelation* result);

}  // namespace tpdb

#endif  // TPDB_TP_OPERATORS_H_
