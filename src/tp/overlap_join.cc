#include "tp/overlap_join.h"

#include <utility>

#include "engine/nested_loop_join.h"
#include "engine/scan.h"
#include "engine/sort.h"
#include "engine/stats.h"
#include "engine/temporal_outer_join.h"
#include "tp/sweep_join.h"

namespace tpdb {

namespace {

/// Leaf scan that prepends the row index as an int64 `rid` column. The rid
/// identifies the originating r tuple through the whole window pipeline.
class RowIdScan final : public Operator {
 public:
  explicit RowIdScan(const Table* table) : table_(table) {
    TPDB_CHECK(table != nullptr);
    schema_.AddColumn({"rid", DatumType::kInt64});
    for (const Column& c : table_->schema.columns()) schema_.AddColumn(c);
  }

  const Schema& schema() const override { return schema_; }
  void Open() override { pos_ = 0; }
  bool Next(Row* out) override {
    const Row* row = NextRef();
    if (row == nullptr) return false;
    *out = *row;
    return true;
  }
  /// Real zero-allocation pull: the rid prefix and the fact columns are
  /// assigned into one reused buffer indexed straight into table storage —
  /// no fresh Row per tuple, unlike the default NextRef adapter.
  const Row* NextRef() override {
    if (pos_ >= table_->rows.size()) return nullptr;
    const Row& src = table_->rows[pos_];
    buffer_.resize(src.size() + 1);
    buffer_[0] = Datum(static_cast<int64_t>(pos_));
    std::copy(src.begin(), src.end(), buffer_.begin() + 1);
    ++pos_;
    return &buffer_;
  }
  void Close() override {}

 private:
  const Table* table_;
  Schema schema_;
  size_t pos_ = 0;
  Row buffer_;
};

/// Normalizes join output to the canonical window layout: computes the
/// window interval (intersection for matches, the full r interval for
/// unmatched rows) and appends the window class.
class WindowFinisher final : public Operator {
 public:
  WindowFinisher(OperatorPtr child, WindowLayout layout, Schema schema)
      : child_(std::move(child)),
        layout_(layout),
        schema_(std::move(schema)) {}

  const Schema& schema() const override { return schema_; }
  void Open() override { child_->Open(); }
  bool Next(Row* out) override {
    Row row;
    if (!child_->Next(&row)) return false;
    // Input is either nL+nR wide (nested loop) or has two trailing
    // intersection columns (partitioned join); normalize to canonical width
    // with freshly computed window bounds.
    const size_t base = static_cast<size_t>(layout_.w_ts());
    row.reserve(base + 3);  // window bounds + class appended below
    row.resize(base);
    const Interval rt = layout_.RIntervalOf(row);
    const bool matched = !row[layout_.s_lin()].is_null();
    Interval w = rt;
    WindowClass cls = WindowClass::kUnmatched;
    if (matched) {
      const Interval st(row[layout_.s_ts()].AsInt64(),
                        row[layout_.s_te()].AsInt64());
      w = rt.Intersect(st);
      TPDB_DCHECK(!w.empty());
      cls = WindowClass::kOverlapping;
    }
    row.push_back(Datum(w.start));
    row.push_back(Datum(w.end));
    row.push_back(Datum(static_cast<int64_t>(cls)));
    *out = std::move(row);
    return true;
  }
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  WindowLayout layout_;
  Schema schema_;
};

/// Sides below this many combined rows make the nested loop competitive;
/// above it kAuto prefers the sweep when the probe build is degenerate.
constexpr size_t kSweepAutoMinRows = 64;

}  // namespace

const char* OverlapAlgorithmName(OverlapAlgorithm algorithm) {
  switch (algorithm) {
    case OverlapAlgorithm::kPartitioned:
      return "partitioned";
    case OverlapAlgorithm::kNestedLoop:
      return "nested-loop";
    case OverlapAlgorithm::kSweep:
      return "sweep";
    case OverlapAlgorithm::kAuto:
      return "auto";
  }
  return "?";
}

StatusOr<std::vector<std::pair<int, int>>> ResolveCondition(
    const JoinCondition& theta, const Schema& r_facts,
    const Schema& s_facts) {
  std::vector<std::pair<int, int>> keys;
  keys.reserve(theta.equal_columns.size());
  for (const auto& [rc, sc] : theta.equal_columns) {
    const int ri = r_facts.IndexOf(rc);
    if (ri < 0)
      return Status::InvalidArgument("θ column '" + rc +
                                     "' not in left fact schema (" +
                                     r_facts.ToString() + ")");
    const int si = s_facts.IndexOf(sc);
    if (si < 0)
      return Status::InvalidArgument("θ column '" + sc +
                                     "' not in right fact schema (" +
                                     s_facts.ToString() + ")");
    keys.emplace_back(ri, si);
  }
  return keys;
}

JoinCondition SwapJoinCondition(const JoinCondition& theta) {
  JoinCondition out;
  for (const auto& [rc, sc] : theta.equal_columns)
    out.equal_columns.emplace_back(sc, rc);
  if (theta.predicate) {
    auto pred = theta.predicate;
    out.predicate = [pred](const Row& s_fact, const Row& r_fact) {
      return pred(r_fact, s_fact);
    };
  }
  return out;
}

StatusOr<ThetaMatcher> ThetaMatcher::Make(const JoinCondition& theta,
                                          const Schema& r_facts,
                                          const Schema& s_facts) {
  StatusOr<std::vector<std::pair<int, int>>> keys =
      ResolveCondition(theta, r_facts, s_facts);
  if (!keys.ok()) return keys.status();
  return ThetaMatcher(std::move(*keys), theta.predicate);
}

StatusOr<OverlapProbeSide> MakeOverlapProbeSide(
    std::shared_ptr<const Table> s_table, const Schema& r_facts,
    const Schema& s_facts, const JoinCondition& theta,
    OverlapAlgorithm algorithm) {
  TPDB_CHECK(s_table != nullptr);
  OverlapProbeSide probe;
  probe.s_table = std::move(s_table);
  // Only the partitioned algorithm has a shareable build; the nested loop
  // and the sweep share just the flattened table.
  if (algorithm == OverlapAlgorithm::kNestedLoop ||
      algorithm == OverlapAlgorithm::kSweep)
    return probe;

  StatusOr<std::vector<std::pair<int, int>>> keys =
      ResolveCondition(theta, r_facts, s_facts);
  if (!keys.ok()) return keys.status();
  const int n_sf = static_cast<int>(s_facts.num_columns());
  TemporalJoinSpec spec;  // only the right-hand fields matter for the build
  for (const auto& [ri, si] : *keys) spec.equi_keys.emplace_back(1 + ri, si);
  spec.right_ts = n_sf;
  spec.right_te = n_sf + 1;
  TableScan scan(probe.s_table.get());
  probe.build = std::make_shared<const TemporalBuildSide>(
      MakeTemporalBuildSide(&scan, spec));
  return probe;
}

StatusOr<OperatorPtr> MakeOverlapWindowJoin(
    const Table* r_table, const Schema& r_facts, const Table* s_table,
    const Schema& s_facts, const JoinCondition& theta,
    OverlapAlgorithm algorithm, const OverlapProbeSide* probe,
    const OverlapJoinHints& hints) {
  TPDB_CHECK(r_table != nullptr);
  TPDB_CHECK(s_table != nullptr);
  const int n_rf = static_cast<int>(r_facts.num_columns());
  const int n_sf = static_cast<int>(s_facts.num_columns());
  const WindowLayout layout(n_rf, n_sf);

  StatusOr<std::vector<std::pair<int, int>>> keys =
      ResolveCondition(theta, r_facts, s_facts);
  if (!keys.ok()) return keys.status();

  // A pre-built probe side pins the partitioned algorithm (the build is
  // the partitioned plan's data structure).
  if (probe != nullptr && probe->build != nullptr) {
    TPDB_CHECK(probe->s_table.get() == s_table)
        << "probe side built over a different s table";
    algorithm = OverlapAlgorithm::kPartitioned;
  }
  if (algorithm == OverlapAlgorithm::kAuto) {
    // Optimizer path: estimate from table statistics (interval columns sit
    // right after the facts in the flattened layout).
    const TableStats r_stats =
        TableStats::Compute(*r_table, n_rf, n_rf + 1);
    const TableStats s_stats =
        TableStats::Compute(*s_table, n_sf, n_sf + 1);
    if (PreferPartitionedJoin(r_stats, s_stats, *keys)) {
      algorithm = OverlapAlgorithm::kPartitioned;
    } else if (keys->empty() &&
               r_table->rows.size() + s_table->rows.size() >=
                   kSweepAutoMinRows) {
      // θ has no equalities (empty or predicate-only): a hash build would
      // collapse into one degenerate partition rescanned per probe. The
      // sweep's single active set only ever holds temporally-live tuples.
      algorithm = OverlapAlgorithm::kSweep;
    } else {
      algorithm = OverlapAlgorithm::kNestedLoop;
    }
  }
  if (algorithm == OverlapAlgorithm::kSweep)
    return MakeSweepWindowJoin(r_table, r_facts, s_table, s_facts, theta,
                               hints);

  OperatorPtr left = std::make_unique<RowIdScan>(r_table);
  OperatorPtr right = std::make_unique<TableScan>(s_table);
  const int nl = 4 + n_rf;  // left width: rid + facts + ts/te/lin

  // Residual predicate (general θ) over the concatenated row.
  ExprPtr residual;
  if (theta.predicate) {
    auto pred = theta.predicate;
    residual = Fn(
        [pred, n_rf, n_sf, nl](const Row& row) -> Datum {
          Row rf(row.begin() + 1, row.begin() + 1 + n_rf);
          Row sf(row.begin() + nl, row.begin() + nl + n_sf);
          return Datum(static_cast<int64_t>(pred(rf, sf) ? 1 : 0));
        },
        "θ");
  }

  OperatorPtr joined;
  if (algorithm == OverlapAlgorithm::kPartitioned) {
    TemporalJoinSpec spec;
    for (const auto& [ri, si] : *keys) spec.equi_keys.emplace_back(1 + ri, si);
    spec.left_ts = layout.r_ts();
    spec.left_te = layout.r_te();
    spec.right_ts = n_sf;
    spec.right_te = n_sf + 1;
    spec.residual = residual;
    spec.join_type = JoinType::kLeftOuter;
    if (probe != nullptr && probe->build != nullptr) {
      joined = std::make_unique<TemporalOuterJoin>(
          std::move(left), probe->build, right->schema(), spec);
    } else {
      joined = std::make_unique<TemporalOuterJoin>(std::move(left),
                                                   std::move(right), spec);
    }
  } else {
    ExprPtr pred = OverlapsExpr(layout.r_ts(), layout.r_te(), nl + n_sf,
                                nl + n_sf + 1);
    std::vector<std::pair<int, int>> joined_keys;
    for (const auto& [ri, si] : *keys)
      joined_keys.emplace_back(1 + ri, nl + si);
    if (!joined_keys.empty())
      pred = AndExpr(std::move(pred), ColumnsEqual(joined_keys));
    if (residual != nullptr) pred = AndExpr(std::move(pred), residual);
    joined = std::make_unique<NestedLoopJoin>(std::move(left),
                                              std::move(right), std::move(pred),
                                              JoinType::kLeftOuter);
  }

  Schema schema = layout.MakeSchema(r_facts, s_facts);
  OperatorPtr finished = std::make_unique<WindowFinisher>(
      std::move(joined), layout, std::move(schema));
  if (algorithm == OverlapAlgorithm::kNestedLoop) {
    // A nested loop probes s in table order; the LAWAU/LAWAN sweeps need
    // each rid group ordered by window start, so this plan pays for an
    // extra sort (the partitioned plan produces the order for free).
    finished = std::make_unique<Sort>(
        std::move(finished),
        std::vector<SortKey>{{layout.rid(), true}, {layout.w_ts(), true}});
  }
  return finished;
}

}  // namespace tpdb
