#include "tp/tp_ops.h"

#include <algorithm>
#include <numeric>

#include "lineage/probability.h"

namespace tpdb {

StatusOr<TPRelation> TPSelect(const TPRelation& rel,
                              std::function<bool(const Row&)> predicate,
                              std::string result_name) {
  if (!predicate) return Status::InvalidArgument("TPSelect: null predicate");
  if (result_name.empty()) result_name = rel.name() + "_select";
  TPRelation out(std::move(result_name), rel.fact_schema(), rel.manager());
  for (const TPTuple& t : rel.tuples()) {
    if (!predicate(t.fact)) continue;
    TPDB_RETURN_IF_ERROR(out.AppendDerived(t.fact, t.interval, t.lineage));
  }
  return out;
}

StatusOr<TPRelation> TPThreshold(const TPRelation& rel, double threshold,
                                 std::string result_name) {
  if (threshold < 0.0 || threshold > 1.0)
    return Status::InvalidArgument("TPThreshold: threshold out of [0,1]");
  if (result_name.empty()) result_name = rel.name() + "_threshold";
  TPRelation out(std::move(result_name), rel.fact_schema(), rel.manager());
  ProbabilityEngine prob(rel.manager());
  for (const TPTuple& t : rel.tuples()) {
    if (prob.Probability(t.lineage) < threshold) continue;
    TPDB_RETURN_IF_ERROR(out.AppendDerived(t.fact, t.interval, t.lineage));
  }
  return out;
}

StatusOr<TPRelation> TPTimeslice(const TPRelation& rel, Interval window,
                                 std::string result_name) {
  if (window.empty())
    return Status::InvalidArgument("TPTimeslice: empty window");
  if (result_name.empty()) result_name = rel.name() + "_slice";
  TPRelation out(std::move(result_name), rel.fact_schema(), rel.manager());
  for (const TPTuple& t : rel.tuples()) {
    const Interval clipped = t.interval.Intersect(window);
    if (clipped.empty()) continue;
    TPDB_RETURN_IF_ERROR(out.AppendDerived(t.fact, clipped, t.lineage));
  }
  return out;
}

std::vector<SnapshotRow> TPSnapshot(const TPRelation& rel, TimePoint t) {
  std::vector<SnapshotRow> out;
  ProbabilityEngine prob(rel.manager());
  for (const TPTuple& tup : rel.tuples()) {
    if (!tup.interval.Contains(t)) continue;
    out.push_back(
        SnapshotRow{tup.fact, tup.lineage, prob.Probability(tup.lineage)});
  }
  return out;
}

StatusOr<TPRelation> TPCoalesce(const TPRelation& rel,
                                std::string result_name) {
  if (result_name.empty()) result_name = rel.name() + "_coalesced";
  // Order by (fact, lineage, start); merge runs that touch or overlap.
  std::vector<size_t> order(rel.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rel](size_t a, size_t b) {
    const TPTuple& ta = rel.tuple(a);
    const TPTuple& tb = rel.tuple(b);
    const int c = CompareRows(ta.fact, tb.fact);
    if (c != 0) return c < 0;
    if (ta.lineage != tb.lineage) return ta.lineage < tb.lineage;
    return ta.interval < tb.interval;
  });

  TPRelation out(std::move(result_name), rel.fact_schema(), rel.manager());
  size_t i = 0;
  while (i < order.size()) {
    const TPTuple& first = rel.tuple(order[i]);
    Interval merged = first.interval;
    size_t j = i + 1;
    while (j < order.size()) {
      const TPTuple& next = rel.tuple(order[j]);
      if (CompareRows(next.fact, first.fact) != 0 ||
          next.lineage != first.lineage || next.interval.start > merged.end)
        break;
      merged.end = std::max(merged.end, next.interval.end);
      ++j;
    }
    TPDB_RETURN_IF_ERROR(
        out.AppendDerived(first.fact, merged, first.lineage));
    i = j;
  }
  return out;
}

}  // namespace tpdb
