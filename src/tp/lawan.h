// LAWAN (Lineage-Aware Window Algorithm — Negating), Section III-C.
//
// Extends WUO (overlapping + unmatched windows, the LAWAU output) with the
// negating windows. Within each rid group (ordered by window start), the
// sweep visits every starting point of an overlapping window and every
// ending point recorded in a priority queue of the currently valid s
// tuples; between two consecutive event points with a non-empty valid set
// it emits a negating window whose λs is the disjunction of the lineages in
// the queue (the three cases of Fig. 4). Unmatched and overlapping windows
// are copied to the output interleaved with the created negating windows.
//
// Streaming: per-group state is the priority queue of (ending point, λ)
// plus the sweep position — no tuple replication, no re-scan of the input.
#ifndef TPDB_TP_LAWAN_H_
#define TPDB_TP_LAWAN_H_

#include <deque>
#include <vector>

#include "engine/operator.h"
#include "lineage/lineage.h"
#include "temporal/timeline.h"
#include "tp/window.h"

namespace tpdb {

/// Pipelined computation of WUON = WUO ∪ WN from the LAWAU output.
class Lawan final : public Operator {
 public:
  /// `child` must produce canonical window rows grouped by rid, ordered by
  /// window start within each group. `manager` builds the λs disjunctions.
  Lawan(OperatorPtr child, WindowLayout layout, LineageManager* manager);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override { child_->Close(); }

 private:
  /// Advances the sweep to `target`, draining queue entries that end before
  /// it and emitting negating windows over every run with a non-empty
  /// valid set. Pass `target` past the last ending point to finish a group.
  void AdvanceSweep(TimePoint target);
  void EmitNegating(TimePoint from, TimePoint to);
  void FinishGroup();
  void Consume(Row row);

  OperatorPtr child_;
  WindowLayout layout_;
  LineageManager* manager_;

  bool in_group_ = false;
  int64_t group_rid_ = -1;
  Row group_prototype_;
  TimePoint pos_ = 0;  // sweep position within the group
  // Ending points of the valid s tuples; payload = lineage id.
  EndpointQueue<LineageRef> queue_;
  // Lineages of the currently valid s tuples (parallel to queue contents).
  std::vector<std::pair<TimePoint, LineageRef>> active_;

  bool input_done_ = false;
  std::deque<Row> pending_;
};

}  // namespace tpdb

#endif  // TPDB_TP_LAWAN_H_
