// Generalized lineage-aware temporal windows (Section II of the paper).
//
// A window (Fr, Fs, T, λr, λs) binds an interval to the lineages of the
// matching valid tuples of each input relation. Three disjoint classes
// (Table I of the paper):
//   - overlapping WO(r;s,θ): maximal interval where one pair (r, s)
//     overlaps and satisfies θ;
//   - unmatched  WU(r;s,θ): maximal subinterval of an r tuple where no s
//     tuple is valid and satisfies θ (Fs = λs = null);
//   - negating   WN(r;s,θ): maximal subinterval of an r tuple where the set
//     of valid θ-matching s tuples is constant and non-empty; λs is the
//     disjunction of their lineages (Fs = null).
//
// Inside the executor, windows travel as plain rows with the canonical
// layout described by WindowLayout; the TPWindow struct is the materialized
// value-semantic form used by the public API, tests, and examples.
#ifndef TPDB_TP_WINDOW_H_
#define TPDB_TP_WINDOW_H_

#include <string>
#include <vector>

#include "engine/row.h"
#include "lineage/lineage.h"
#include "temporal/interval.h"

namespace tpdb {

/// The three disjoint window classes of the paper's Table I.
enum class WindowClass : int64_t {
  kOverlapping = 0,
  kUnmatched = 1,
  kNegating = 2,
};

/// Name of a window class ("overlapping" / "unmatched" / "negating").
const char* WindowClassName(WindowClass cls);

/// Materialized generalized lineage-aware temporal window.
struct TPWindow {
  WindowClass cls = WindowClass::kOverlapping;
  /// Index of the originating r tuple (groups windows per r tuple; the
  /// paper groups by (Fr, r.T), which identifies the tuple in a valid TP
  /// relation — the id makes the grouping explicit).
  int64_t rid = -1;
  Row fact_r;
  /// Empty (all-NULL) for unmatched and negating windows.
  Row fact_s;
  Interval window;
  /// Original interval of the r tuple (carried by the computation; the
  /// paper's r ⟕_{θo∧θ} s "enhances every window with the initial
  /// time-interval of the tuple of r").
  Interval r_interval;
  LineageRef lin_r;
  /// Null for unmatched windows; disjunction of matching s lineages for
  /// negating windows; the s tuple's lineage for overlapping windows.
  LineageRef lin_s;

  std::string ToString(const LineageManager& mgr) const;
};

/// Column layout of window rows inside the executor:
///   rid | r facts... | r_ts r_te r_lin | s facts... | s_ts s_te s_lin |
///   w_ts w_te | w_class
class WindowLayout {
 public:
  WindowLayout(int num_r_facts, int num_s_facts)
      : n_rf_(num_r_facts), n_sf_(num_s_facts) {}

  int rid() const { return 0; }
  int r_fact(int i) const { return 1 + i; }
  int num_r_facts() const { return n_rf_; }
  int r_ts() const { return 1 + n_rf_; }
  int r_te() const { return 2 + n_rf_; }
  int r_lin() const { return 3 + n_rf_; }
  int s_fact(int i) const { return 4 + n_rf_ + i; }
  int num_s_facts() const { return n_sf_; }
  int s_ts() const { return 4 + n_rf_ + n_sf_; }
  int s_te() const { return 5 + n_rf_ + n_sf_; }
  int s_lin() const { return 6 + n_rf_ + n_sf_; }
  int w_ts() const { return 7 + n_rf_ + n_sf_; }
  int w_te() const { return 8 + n_rf_ + n_sf_; }
  int w_class() const { return 9 + n_rf_ + n_sf_; }
  int num_columns() const { return 10 + n_rf_ + n_sf_; }

  /// Builds the engine schema for this layout given the fact schemas.
  Schema MakeSchema(const Schema& r_facts, const Schema& s_facts) const;

  // -- Row accessors ------------------------------------------------------
  WindowClass ClassOf(const Row& row) const {
    return static_cast<WindowClass>(row[w_class()].AsInt64());
  }
  Interval WindowOf(const Row& row) const {
    return Interval(row[w_ts()].AsInt64(), row[w_te()].AsInt64());
  }
  Interval RIntervalOf(const Row& row) const {
    return Interval(row[r_ts()].AsInt64(), row[r_te()].AsInt64());
  }
  int64_t RidOf(const Row& row) const { return row[rid()].AsInt64(); }
  LineageRef RLinOf(const Row& row) const {
    return row[r_lin()].AsLineage();
  }
  LineageRef SLinOf(const Row& row) const {
    const Datum& d = row[s_lin()];
    return d.is_null() ? LineageRef::Null() : d.AsLineage();
  }

  /// Converts an engine row into a materialized TPWindow.
  TPWindow ToWindow(const Row& row) const;

 private:
  int n_rf_;
  int n_sf_;
};

/// Sorts windows by (rid, window start, class, lin_s) — the canonical order
/// used to compare window sets in tests.
void SortWindows(std::vector<TPWindow>* windows);

/// Renders a window set, one per line.
std::string WindowsToString(const LineageManager& mgr,
                            const std::vector<TPWindow>& windows);

}  // namespace tpdb

#endif  // TPDB_TP_WINDOW_H_
