#include "tp/operators.h"

#include "baseline/ta_join.h"
#include "tp/concat.h"

namespace tpdb {

const char* TPJoinKindName(TPJoinKind kind) {
  switch (kind) {
    case TPJoinKind::kInner:
      return "inner";
    case TPJoinKind::kAnti:
      return "anti";
    case TPJoinKind::kLeftOuter:
      return "left-outer";
    case TPJoinKind::kRightOuter:
      return "right-outer";
    case TPJoinKind::kFullOuter:
      return "full-outer";
    case TPJoinKind::kSemi:
      return "semi";
  }
  return "?";
}

Schema TPJoinOutputSchema(TPJoinKind kind, const Schema& r_facts,
                          const Schema& s_facts) {
  Schema out = r_facts;
  if (kind == TPJoinKind::kAnti || kind == TPJoinKind::kSemi) return out;
  for (const Column& c : s_facts.columns()) {
    Column copy = c;
    if (out.IndexOf(copy.name) >= 0) copy.name += "_s";
    out.AddColumn(std::move(copy));
  }
  return out;
}

namespace {

/// Which window classes of a pipeline feed the output, and whether the
/// pipeline ran with swapped inputs (s on the left).
struct EmitSpec {
  bool keep_overlapping = true;
  bool keep_unmatched = true;
  bool keep_negating = true;
  bool swapped = false;       // pipeline fact_r belongs to the s relation
  bool drop_s_facts = false;  // anti/semi joins keep only the r facts
  // Semi join: negating windows concatenate with ∧ of the λs disjunction
  // (λr ∧ (λs1 ∨ …)) instead of the default andNot.
  bool semi_concat = false;
};

/// The window classes `kind` keeps in the given pipeline orientation.
EmitSpec MakeEmitSpec(TPJoinKind kind, bool s_driven) {
  EmitSpec spec;
  if (s_driven) {
    spec.swapped = true;
    // WO(r;s,θ) = WO(s;r,θ): the full-outer join already emitted the
    // overlapping windows from the r-driven pipeline.
    spec.keep_overlapping = kind == TPJoinKind::kRightOuter;
    return spec;
  }
  switch (kind) {
    case TPJoinKind::kInner:
      spec.keep_unmatched = false;
      spec.keep_negating = false;
      break;
    case TPJoinKind::kAnti:
      spec.keep_overlapping = false;
      spec.drop_s_facts = true;
      break;
    case TPJoinKind::kSemi:
      spec.keep_overlapping = false;
      spec.keep_unmatched = false;
      spec.drop_s_facts = true;
      spec.semi_concat = true;
      break;
    default:
      break;
  }
  return spec;
}

/// Streams the window operator and appends one output tuple per kept
/// window.
Status EmitWindows(Operator* windows, const WindowLayout& layout,
                   LineageManager* manager, const EmitSpec& spec,
                   TPRelation* result) {
  windows->Open();
  while (const Row* row_ptr = windows->NextRef()) {
    const Row& row = *row_ptr;
    const WindowClass cls = layout.ClassOf(row);
    if ((cls == WindowClass::kOverlapping && !spec.keep_overlapping) ||
        (cls == WindowClass::kUnmatched && !spec.keep_unmatched) ||
        (cls == WindowClass::kNegating && !spec.keep_negating))
      continue;
    const LineageRef lineage =
        spec.semi_concat && cls == WindowClass::kNegating
            ? manager->And(layout.RLinOf(row), layout.SLinOf(row))
            : ConcatWindowLineage(manager, cls, layout.RLinOf(row),
                                  layout.SLinOf(row));
    Row fact;
    if (spec.drop_s_facts) {
      fact.reserve(layout.num_r_facts());
      for (int i = 0; i < layout.num_r_facts(); ++i)
        fact.push_back(row[layout.r_fact(i)]);
    } else if (!spec.swapped) {
      fact.reserve(layout.num_r_facts() + layout.num_s_facts());
      for (int i = 0; i < layout.num_r_facts(); ++i)
        fact.push_back(row[layout.r_fact(i)]);
      for (int i = 0; i < layout.num_s_facts(); ++i)
        fact.push_back(row[layout.s_fact(i)]);
    } else {
      // The pipeline ran on (s, r): its r side is the join's s relation.
      fact.reserve(layout.num_r_facts() + layout.num_s_facts());
      for (int i = 0; i < layout.num_s_facts(); ++i)
        fact.push_back(row[layout.s_fact(i)]);
      for (int i = 0; i < layout.num_r_facts(); ++i)
        fact.push_back(row[layout.r_fact(i)]);
    }
    TPDB_RETURN_IF_ERROR(
        result->AppendDerived(std::move(fact), layout.WindowOf(row), lineage));
  }
  windows->Close();
  return Status::OK();
}

StatusOr<TPRelation> LineageAwareJoin(TPJoinKind kind, const TPRelation& r,
                                      const TPRelation& s,
                                      const JoinCondition& theta,
                                      const TPJoinOptions& options,
                                      std::string name) {
  TPRelation result(std::move(name),
                    TPJoinOutputSchema(kind, r.fact_schema(), s.fact_schema()),
                    r.manager());
  const JoinPipelines pipelines = LineageAwareJoinPipelines(kind);
  if (pipelines.r_driven) {
    TPDB_RETURN_IF_ERROR(RunLineageAwareJoinPipeline(
        kind, /*s_driven=*/false, r, s, theta, options.overlap_algorithm,
        &result));
  }
  if (pipelines.s_driven) {
    TPDB_RETURN_IF_ERROR(RunLineageAwareJoinPipeline(
        kind, /*s_driven=*/true, r, s, theta, options.overlap_algorithm,
        &result));
  }
  return result;
}

}  // namespace

JoinPipelines LineageAwareJoinPipelines(TPJoinKind kind) {
  JoinPipelines pipelines;
  pipelines.r_driven = kind != TPJoinKind::kRightOuter;
  pipelines.s_driven =
      kind == TPJoinKind::kRightOuter || kind == TPJoinKind::kFullOuter;
  return pipelines;
}

Status RunLineageAwareJoinPipeline(TPJoinKind kind, bool s_driven,
                                   const TPRelation& r, const TPRelation& s,
                                   const JoinCondition& theta,
                                   OverlapAlgorithm algorithm,
                                   TPRelation* result,
                                   const OverlapProbeSide* probe) {
  TPDB_CHECK(result != nullptr);
  LineageManager* manager = r.manager();
  const WindowStage stage =
      kind == TPJoinKind::kInner ? WindowStage::kOverlap : WindowStage::kWuon;

  if (!s_driven) {
    TPDB_CHECK(kind != TPJoinKind::kRightOuter)
        << "right outer join has no r-driven pipeline";
    StatusOr<WindowPlan> plan =
        MakeWindowPlan(r, s, theta, stage, algorithm, probe);
    if (!plan.ok()) return plan.status();
    return EmitWindows(plan->root.get(), plan->layout, manager,
                       MakeEmitSpec(kind, /*s_driven=*/false), result);
  }

  TPDB_CHECK(kind == TPJoinKind::kRightOuter ||
             kind == TPJoinKind::kFullOuter)
      << "only the outer-join kinds run an s-driven pipeline";
  StatusOr<WindowPlan> plan =
      MakeWindowPlan(s, r, SwapJoinCondition(theta), stage, algorithm, probe);
  if (!plan.ok()) return plan.status();
  return EmitWindows(plan->root.get(), plan->layout, manager,
                     MakeEmitSpec(kind, /*s_driven=*/true), result);
}

Status EmitJoinWindows(TPJoinKind kind, bool s_driven, Operator* windows,
                       const WindowLayout& layout, LineageManager* manager,
                       TPRelation* result) {
  TPDB_CHECK(windows != nullptr && result != nullptr);
  return EmitWindows(windows, layout, manager, MakeEmitSpec(kind, s_driven),
                     result);
}

StatusOr<TPRelation> TPJoin(TPJoinKind kind, const TPRelation& r,
                            const TPRelation& s, const JoinCondition& theta,
                            const TPJoinOptions& options) {
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  if (options.validate_inputs) {
    TPDB_RETURN_IF_ERROR(r.Validate());
    TPDB_RETURN_IF_ERROR(s.Validate());
  }
  std::string name = options.result_name;
  if (name.empty())
    name = r.name() + "_" + TPJoinKindName(kind) + "_" + s.name();

  switch (options.strategy) {
    case JoinStrategy::kLineageAware:
      return LineageAwareJoin(kind, r, s, theta, options, std::move(name));
    case JoinStrategy::kTemporalAlignment:
      return TemporalAlignmentJoin(kind, r, s, theta, std::move(name));
  }
  return Status::Internal("unknown join strategy");
}

StatusOr<TPRelation> TPJoin(const TPJoinSpec& spec, const TPRelation& r,
                            const TPRelation& s) {
  return TPJoin(spec.kind, r, s, spec.theta, spec.options);
}

StatusOr<TPRelation> TPInnerJoin(const TPRelation& r, const TPRelation& s,
                                 const JoinCondition& theta,
                                 const TPJoinOptions& options) {
  return TPJoin(TPJoinKind::kInner, r, s, theta, options);
}
StatusOr<TPRelation> TPAntiJoin(const TPRelation& r, const TPRelation& s,
                                const JoinCondition& theta,
                                const TPJoinOptions& options) {
  return TPJoin(TPJoinKind::kAnti, r, s, theta, options);
}
StatusOr<TPRelation> TPLeftOuterJoin(const TPRelation& r, const TPRelation& s,
                                     const JoinCondition& theta,
                                     const TPJoinOptions& options) {
  return TPJoin(TPJoinKind::kLeftOuter, r, s, theta, options);
}
StatusOr<TPRelation> TPRightOuterJoin(const TPRelation& r,
                                      const TPRelation& s,
                                      const JoinCondition& theta,
                                      const TPJoinOptions& options) {
  return TPJoin(TPJoinKind::kRightOuter, r, s, theta, options);
}
StatusOr<TPRelation> TPFullOuterJoin(const TPRelation& r, const TPRelation& s,
                                     const JoinCondition& theta,
                                     const TPJoinOptions& options) {
  return TPJoin(TPJoinKind::kFullOuter, r, s, theta, options);
}
StatusOr<TPRelation> TPSemiJoin(const TPRelation& r, const TPRelation& s,
                                const JoinCondition& theta,
                                const TPJoinOptions& options) {
  return TPJoin(TPJoinKind::kSemi, r, s, theta, options);
}

}  // namespace tpdb
