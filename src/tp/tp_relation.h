// Temporal-probabilistic relations: the data model of the paper.
//
// A TP tuple is (F, λ, T, p): a fact (non-temporal attributes), a lineage
// formula over independent base-tuple variables, a half-open validity
// interval, and the probability p = Pr[λ]. Base tuples carry a fresh
// variable each; derived tuples (join results) carry compound lineages.
//
// A TP relation is *duplicate-free in time*: tuples with the same fact have
// pairwise disjoint intervals (at each time point, one fact is described by
// at most one tuple) — the property the paper's example relies on ("there is
// no other tuple in a that predicts ... over an interval overlapping with
// [7,10)").
#ifndef TPDB_TP_TP_RELATION_H_
#define TPDB_TP_TP_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/row.h"
#include "lineage/lineage.h"
#include "temporal/interval.h"

namespace tpdb {

namespace storage {
class SegmentedTable;
}  // namespace storage

/// One temporal-probabilistic tuple.
struct TPTuple {
  Row fact;            ///< non-temporal attribute values
  LineageRef lineage;  ///< λ — never null in a valid relation
  Interval interval;   ///< T = [Ts, Te)
};

/// Reserved column names of the flattened (engine-level) representation.
inline constexpr const char* kTsColumn = "_ts";
inline constexpr const char* kTeColumn = "_te";
inline constexpr const char* kLineageColumn = "_lin";
/// Virtual output column: the tuple's lineage probability. Not stored —
/// computed on demand (ORDER BY _prob, the wire protocol's result column).
inline constexpr const char* kProbColumn = "_prob";

/// A named TP relation bound to a LineageManager.
class TPRelation {
 public:
  /// `fact_schema` describes only the non-temporal attributes; interval and
  /// lineage are managed by the relation. `manager` must outlive it.
  TPRelation(std::string name, Schema fact_schema, LineageManager* manager);

  const std::string& name() const { return name_; }
  const Schema& fact_schema() const { return fact_schema_; }
  LineageManager* manager() const { return manager_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const TPTuple& tuple(size_t i) const {
    TPDB_CHECK_LT(i, tuples_.size());
    return tuples_[i];
  }
  const std::vector<TPTuple>& tuples() const { return tuples_; }

  /// Appends a *base* tuple: registers a fresh independent variable with
  /// marginal `prob` (named `var_name` if given, e.g. "a1") and uses it as
  /// the lineage. Fails on arity mismatch or empty interval.
  Status AppendBase(Row fact, Interval interval, double prob,
                    std::string var_name = "");

  /// Appends a *derived* tuple with an existing lineage (used by operators).
  Status AppendDerived(Row fact, Interval interval, LineageRef lineage);

  /// Moves every tuple of `other` (in order) to the end of this relation —
  /// the merge step of the parallel drivers, which concatenate per-morsel
  /// partial results. Both relations must share the manager and have
  /// fact schemas of equal arity. `other` is left empty.
  Status Absorb(TPRelation&& other);

  /// Replaces the relation's contents wholesale with `tuples` and the
  /// columnar backing `cold` describing the same data in the same order —
  /// the compaction swap (storage/compact). Unlike the append paths this
  /// keeps (attaches) the cold backing; the caller vouches they match.
  Status ReplaceContents(std::vector<TPTuple> tuples,
                         std::shared_ptr<const storage::SegmentedTable> cold);

  /// Verifies the duplicate-free-in-time invariant and basic well-formedness
  /// (non-empty intervals, non-null lineages, fact arity).
  Status Validate() const;

  /// Probability Pr[λ] of tuple `i` (computed exactly from its lineage).
  double Probability(size_t i) const;

  /// Flattened engine table: fact columns ++ _ts ++ _te ++ _lin.
  /// Row order matches tuple order, so row index == tuple id.
  Table ToTable() const;

  /// Inverse of ToTable() for a table using the reserved column layout.
  static StatusOr<TPRelation> FromTable(std::string name, const Table& table,
                                        LineageManager* manager);

  /// Multi-line rendering in the style of the paper's Fig. 1 (facts, λ, T,
  /// p), mainly for examples and debugging.
  std::string ToString() const;

  /// Columnar cold-storage backing (storage/segment.h) attached by
  /// LoadSnapshot: the mapped segments this relation was rebuilt from,
  /// which the planner scans directly — with zone-map pruning — instead of
  /// flattening the tuples. Null for relations without a snapshot backing;
  /// any mutation of the relation detaches it (the segments would go
  /// stale). Probability zone maps carry the manager's epoch at load time,
  /// and the planner stops probability pruning once SetVariableProbability
  /// moves the epoch on (numeric/temporal pruning stays valid).
  const std::shared_ptr<const storage::SegmentedTable>& cold_storage() const {
    return cold_storage_;
  }
  void set_cold_storage(std::shared_ptr<const storage::SegmentedTable> s) {
    cold_storage_ = std::move(s);
  }

  /// True iff the tuples are ordered by nondecreasing interval start —
  /// tracked incrementally on appends, recomputed by ReplaceContents
  /// (compaction re-sorts merged segments by _ts, so compacted relations
  /// regain the flag), and propagated by Absorb. The sweep-line join
  /// (tp/sweep_join.h) skips its sort on flagged inputs.
  bool sorted_by_ts() const { return sorted_by_ts_; }

 private:
  std::string name_;
  Schema fact_schema_;
  LineageManager* manager_;
  std::vector<TPTuple> tuples_;
  std::shared_ptr<const storage::SegmentedTable> cold_storage_;
  bool sorted_by_ts_ = true;  ///< vacuously true while empty
};

}  // namespace tpdb

#endif  // TPDB_TP_TP_RELATION_H_
