#include "tp/concat.h"

namespace tpdb {

LineageRef ConcatWindowLineage(LineageManager* manager, WindowClass cls,
                               LineageRef lin_r, LineageRef lin_s) {
  TPDB_CHECK(manager != nullptr);
  TPDB_CHECK(!lin_r.is_null()) << "window without λr";
  switch (cls) {
    case WindowClass::kOverlapping:
      TPDB_CHECK(!lin_s.is_null()) << "overlapping window without λs";
      return manager->And(lin_r, lin_s);
    case WindowClass::kUnmatched:
      TPDB_CHECK(lin_s.is_null()) << "unmatched window with λs";
      return lin_r;
    case WindowClass::kNegating:
      TPDB_CHECK(!lin_s.is_null()) << "negating window without λs";
      return manager->AndNot(lin_r, lin_s);
  }
  TPDB_CHECK(false) << "unknown window class";
  return LineageRef::Null();
}

}  // namespace tpdb
