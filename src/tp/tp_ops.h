// Auxiliary TP operators that round out the algebra: selection on facts,
// probability-threshold selection, timeslice/snapshot, and lineage-aware
// coalescing. These are the operations a user composes around the joins
// (e.g. "take the anti-join result, keep tuples with p ≥ 0.4, snapshot
// day 5").
#ifndef TPDB_TP_TP_OPS_H_
#define TPDB_TP_TP_OPS_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// σ_pred: keeps the tuples whose fact satisfies `predicate`.
StatusOr<TPRelation> TPSelect(const TPRelation& rel,
                              std::function<bool(const Row&)> predicate,
                              std::string result_name = "");

/// σ_{p ≥ threshold}: keeps tuples whose exact probability meets the
/// threshold (computed from the lineage).
StatusOr<TPRelation> TPThreshold(const TPRelation& rel, double threshold,
                                 std::string result_name = "");

/// τ_[from,to): restricts every tuple to the given window, dropping tuples
/// that do not intersect it. Lineages and probabilities are unchanged
/// (sequenced semantics: validity is clipped, truth is not).
StatusOr<TPRelation> TPTimeslice(const TPRelation& rel, Interval window,
                                 std::string result_name = "");

/// Snapshot at time point t: the non-temporal probabilistic relation valid
/// at t, returned as (fact, probability) rows.
struct SnapshotRow {
  Row fact;
  LineageRef lineage;
  double probability = 0.0;
};
std::vector<SnapshotRow> TPSnapshot(const TPRelation& rel, TimePoint t);

/// Lineage-aware coalescing: merges value-equivalent tuples with *adjacent
/// or overlapping* intervals and identical lineage into maximal intervals.
/// (Merging tuples with different lineages would change probabilities, so
/// only syntactically equal lineages — equal refs — are merged.) The
/// result is Validate()-clean if the input was.
StatusOr<TPRelation> TPCoalesce(const TPRelation& rel,
                                std::string result_name = "");

}  // namespace tpdb

#endif  // TPDB_TP_TP_OPS_H_
