// LAWAU (Lineage-Aware Window Algorithm — Unmatched), Section III-B.
//
// Extends the overlap-join result with the *remaining* unmatched windows:
// the maximal subintervals of each r tuple during which no s tuple is valid
// or satisfies θ. The input arrives grouped by rid with windows ordered by
// start (the overlap join produces exactly this order), so a single sweep
// per group suffices: existing windows are copied through, and every gap
// between the covered prefix and the next overlapping window — and after
// the last one — becomes an unmatched window (the five cases of Fig. 3).
//
// The operator is streaming: state is one group's sweep position plus a
// small output queue; there is no tuple replication.
#ifndef TPDB_TP_LAWAU_H_
#define TPDB_TP_LAWAU_H_

#include <deque>

#include "engine/operator.h"
#include "tp/window.h"

namespace tpdb {

/// Pipelined computation of WUO = WO ∪ WU from the overlap-join output.
class Lawau final : public Operator {
 public:
  /// `child` must produce canonical window rows (WindowLayout) grouped by
  /// rid and ordered by window start within each group.
  Lawau(OperatorPtr child, WindowLayout layout);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override { child_->Close(); }

 private:
  /// Emits the unmatched window [from, to) for the current group.
  void EmitUnmatched(TimePoint from, TimePoint to);
  /// Finishes the current group: emits the trailing gap, if any.
  void FinishGroup();
  /// Feeds one input row into the sweep.
  void Consume(Row row);

  OperatorPtr child_;
  WindowLayout layout_;

  bool in_group_ = false;
  int64_t group_rid_ = -1;
  Interval group_r_interval_;
  Row group_prototype_;   // a row of the group; template for gap windows
  TimePoint covered_end_ = 0;  // sweep position: max end of seen windows
  bool input_done_ = false;
  std::deque<Row> pending_;
};

}  // namespace tpdb

#endif  // TPDB_TP_LAWAU_H_
