// Sweep-line interval join (OverlapAlgorithm::kSweep): both sides sorted
// by _ts, one merged stream of tuple-start events swept left to right with
// per-equi-key active sets.
//
// At each event the arriving tuple probes the OTHER side's active set for
// its key — expiring entries whose interval ended at or before the event
// time — and then inserts itself. Every overlapping θ-matching pair (r, s)
// is discovered exactly once, at t = max(r.ts, s.ts) = the window start,
// so the sweep emits each overlapping window with zero post-processing.
// Grouping the emitted windows by rid (and adding the full-interval
// unmatched window for rids that matched nothing) reproduces exactly the
// stream MakeOverlapWindowJoin's probe plan feeds LAWAU: per-rid groups
// ordered by window start.
//
// The same core runs the per-slice work of the time-partitioned parallel
// driver (exec/time_partition.h): a slice sweeps only its id subsets and
// suppresses windows starting before its lower bound (`emit_lo`), which
// deduplicates boundary-spanning replicas — a window's start lies in
// exactly one slice, and both tuples of its pair are replicated there.
#ifndef TPDB_TP_SWEEP_JOIN_H_
#define TPDB_TP_SWEEP_JOIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/operator.h"
#include "tp/overlap_join.h"
#include "tp/window.h"

namespace tpdb {

/// Execution counters of one sweep (also exported as tpdb_join_sweep_*
/// metrics).
struct SweepStats {
  uint64_t endpoints = 0;   ///< start events processed
  /// High-water mark of retained active-set entries. Expiry is lazy (an
  /// entry is dropped when its key bucket is next probed), so this bounds
  /// the true number of live intervals from above.
  uint64_t active_max = 0;
  uint64_t windows = 0;     ///< overlapping windows emitted
};

/// One sweep's inputs: flattened tables (facts ++ _ts ++ _te ++ _lin),
/// optional row subsets, and the slice emit bound.
struct SweepSpec {
  const Table* r_table = nullptr;
  const Table* s_table = nullptr;
  WindowLayout layout{0, 0};
  /// Row subsets (slice membership); null = every row in table order. When
  /// the matching *_sorted flag is set the ids must be ordered by _ts.
  const std::vector<uint32_t>* r_ids = nullptr;
  const std::vector<uint32_t>* s_ids = nullptr;
  bool r_sorted = false;
  bool s_sorted = false;
  /// Emit only windows whose start is >= emit_lo — the time-partitioned
  /// driver's dedup rule for boundary-spanning replicas.
  TimePoint emit_lo = std::numeric_limits<TimePoint>::min();
};

/// Runs the sweep, appending the overlapping windows (canonical
/// WindowLayout rows, class kOverlapping) to `*out` in event order. rid
/// values are r_table row indices — global even when sweeping subsets.
void RunSweep(const SweepSpec& spec, const ThetaMatcher& theta,
              std::vector<Row>* out, SweepStats* stats);

/// Distributes sweep output rows into `num_r` per-rid buckets, preserving
/// input order within each bucket (= per-rid window-start order).
void GroupWindowsByRid(std::vector<Row> rows, size_t num_r,
                       std::vector<std::vector<Row>>* buckets);

/// Streams the per-rid buckets of rids [rid_begin, rid_end) in rid order,
/// emitting a full-interval unmatched window for every rid whose bucket is
/// empty — the exact contract of MakeOverlapWindowJoin's output. Single
/// pass: Next() moves rows out of the buckets.
class BucketWindowSource final : public Operator {
 public:
  BucketWindowSource(std::vector<std::vector<Row>>* buckets, size_t rid_begin,
                     size_t rid_end, const Table* r_table, WindowLayout layout,
                     Schema schema);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Row* out) override;
  const Row* NextRef() override;
  void Close() override {}

 private:
  /// Next row, or null at end: a bucket row, or the rebuilt unmatched
  /// buffer for an empty bucket.
  Row* Advance();
  void BuildUnmatched(size_t rid);

  std::vector<std::vector<Row>>* buckets_;
  size_t rid_begin_;
  size_t rid_end_;
  const Table* r_table_;
  WindowLayout layout_;
  Schema schema_;
  size_t rid_ = 0;
  size_t pos_ = 0;
  Row unmatched_buffer_;
};

/// kSweep lowering of MakeOverlapWindowJoin: sweeps on Open() (sorting a
/// side only when its hint says it is not already _ts-ordered), groups per
/// rid, and streams groups in rid order with full-interval unmatched
/// fill-ins — the same output contract, same downstream LAWAU/LAWAN.
/// `stats`, when given, is filled on Open() and must outlive the operator.
StatusOr<OperatorPtr> MakeSweepWindowJoin(
    const Table* r_table, const Schema& r_facts, const Table* s_table,
    const Schema& s_facts, const JoinCondition& theta,
    const OverlapJoinHints& hints = {}, SweepStats* stats = nullptr);

}  // namespace tpdb

#endif  // TPDB_TP_SWEEP_JOIN_H_
