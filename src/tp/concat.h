// Lineage-concatenation functions (Section II): each window class maps to a
// unique function combining λr and λs into the output tuple's lineage:
//   overlapping -> and(λr, λs)        = λr ∧ λs
//   negating    -> andNot(λr, λs)     = λr ∧ ¬λs
//   unmatched   -> identity on λr     (λs is null)
#ifndef TPDB_TP_CONCAT_H_
#define TPDB_TP_CONCAT_H_

#include "lineage/lineage.h"
#include "tp/window.h"

namespace tpdb {

/// Applies the class-appropriate concatenation function.
LineageRef ConcatWindowLineage(LineageManager* manager, WindowClass cls,
                               LineageRef lin_r, LineageRef lin_s);

}  // namespace tpdb

#endif  // TPDB_TP_CONCAT_H_
