#include "tp/window.h"

#include <algorithm>

#include "lineage/print.h"

namespace tpdb {

const char* WindowClassName(WindowClass cls) {
  switch (cls) {
    case WindowClass::kOverlapping:
      return "overlapping";
    case WindowClass::kUnmatched:
      return "unmatched";
    case WindowClass::kNegating:
      return "negating";
  }
  return "?";
}

std::string TPWindow::ToString(const LineageManager& mgr) const {
  std::string out = "(";
  out += RowToString(fact_r);
  out += " | ";
  out += fact_s.empty() ? "-" : RowToString(fact_s);
  out += " | ";
  out += window.ToString();
  out += " | λr=";
  out += LineageToString(mgr, lin_r);
  out += " | λs=";
  out += LineageToString(mgr, lin_s);
  out += ") ";
  out += WindowClassName(cls);
  return out;
}

Schema WindowLayout::MakeSchema(const Schema& r_facts,
                                const Schema& s_facts) const {
  TPDB_CHECK_EQ(static_cast<int>(r_facts.num_columns()), n_rf_);
  TPDB_CHECK_EQ(static_cast<int>(s_facts.num_columns()), n_sf_);
  Schema out;
  out.AddColumn({"rid", DatumType::kInt64});
  for (const Column& c : r_facts.columns()) out.AddColumn(c);
  out.AddColumn({"r_ts", DatumType::kInt64});
  out.AddColumn({"r_te", DatumType::kInt64});
  out.AddColumn({"r_lin", DatumType::kLineage});
  for (const Column& c : s_facts.columns()) {
    Column copy = c;
    if (out.IndexOf(copy.name) >= 0) copy.name += "_s";
    out.AddColumn(std::move(copy));
  }
  out.AddColumn({"s_ts", DatumType::kInt64});
  out.AddColumn({"s_te", DatumType::kInt64});
  out.AddColumn({"s_lin", DatumType::kLineage});
  out.AddColumn({"w_ts", DatumType::kInt64});
  out.AddColumn({"w_te", DatumType::kInt64});
  out.AddColumn({"w_class", DatumType::kInt64});
  TPDB_CHECK_EQ(static_cast<int>(out.num_columns()), num_columns());
  return out;
}

TPWindow WindowLayout::ToWindow(const Row& row) const {
  TPWindow w;
  w.cls = ClassOf(row);
  w.rid = RidOf(row);
  w.fact_r.reserve(n_rf_);
  for (int i = 0; i < n_rf_; ++i) w.fact_r.push_back(row[r_fact(i)]);
  if (w.cls == WindowClass::kOverlapping) {
    w.fact_s.reserve(n_sf_);
    for (int i = 0; i < n_sf_; ++i) w.fact_s.push_back(row[s_fact(i)]);
  }
  w.window = WindowOf(row);
  w.r_interval = RIntervalOf(row);
  w.lin_r = RLinOf(row);
  w.lin_s = SLinOf(row);
  return w;
}

void SortWindows(std::vector<TPWindow>* windows) {
  std::sort(windows->begin(), windows->end(),
            [](const TPWindow& a, const TPWindow& b) {
              if (a.rid != b.rid) return a.rid < b.rid;
              if (a.window.start != b.window.start)
                return a.window.start < b.window.start;
              if (a.window.end != b.window.end)
                return a.window.end < b.window.end;
              if (a.cls != b.cls)
                return static_cast<int64_t>(a.cls) <
                       static_cast<int64_t>(b.cls);
              return a.lin_s < b.lin_s;
            });
}

std::string WindowsToString(const LineageManager& mgr,
                            const std::vector<TPWindow>& windows) {
  std::string out;
  for (const TPWindow& w : windows) {
    out += w.ToString(mgr);
    out += "\n";
  }
  return out;
}

}  // namespace tpdb
