// Overlapping-window computation: the conventional outer join r ⟕_{θo∧θ} s
// of Section III-A, producing canonical window rows (WindowLayout):
//   - one overlapping window per (r, s) pair that overlaps and satisfies θ,
//     with the intersection interval and the original r interval;
//   - one full-interval unmatched window for every r tuple that matches no
//     s tuple at all.
// The remaining (partial) unmatched windows are added by LAWAU downstream.
#ifndef TPDB_TP_OVERLAP_JOIN_H_
#define TPDB_TP_OVERLAP_JOIN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/operator.h"
#include "engine/temporal_outer_join.h"
#include "tp/tp_relation.h"
#include "tp/window.h"

namespace tpdb {

/// The join condition θ over the non-temporal attributes of r and s.
struct JoinCondition {
  /// Pairwise equality of fact columns, by name (e.g. {"Loc","Loc"}).
  std::vector<std::pair<std::string, std::string>> equal_columns;

  /// Optional general predicate over the two fact rows; combined (AND) with
  /// the equalities. Leave empty for pure equi-θ.
  std::function<bool(const Row& r_fact, const Row& s_fact)> predicate;

  /// Convenience: θ with a single equality column present in both schemas.
  static JoinCondition Equals(const std::string& column) {
    JoinCondition cond;
    cond.equal_columns.emplace_back(column, column);
    return cond;
  }

  /// True iff θ has no constraints (matches every pair). NOT the same as
  /// equal_columns.empty(): a predicate-only θ still constrains pairs but
  /// gives the hash-based plans a single degenerate partition — kAuto
  /// routes that shape to kSweep, whose one active set is bounded by
  /// temporal overlap instead of the full cross product.
  bool IsTrivial() const {
    return equal_columns.empty() && !predicate;
  }
};

/// Physical algorithm for the overlap join.
enum class OverlapAlgorithm {
  /// Hash-partition s on the equi-keys, probe sorted by interval start —
  /// the plan the paper's NJ uses inside PostgreSQL.
  kPartitioned,
  /// Plain nested loop — what the optimizer falls back to for TA (and the
  /// ablation baseline).
  kNestedLoop,
  /// Sort-merge/sweep-line: both sides sorted by _ts (skipped when the
  /// hints say an input already is), one merged start-event stream swept
  /// with per-equi-key active sets (tp/sweep_join.h). O(n log n + output)
  /// instead of the probe's per-key partition rescans, so it is immune to
  /// key skew; with no equi-keys it degrades to ONE active set bounded by
  /// temporal overlap rather than a full cross product.
  kSweep,
  /// Cost-based choice among the above from table statistics (the
  /// optimizer path; see engine/stats.h).
  kAuto,
};

/// Name of an overlap algorithm ("partitioned" / "nested-loop" / "sweep" /
/// "auto").
const char* OverlapAlgorithmName(OverlapAlgorithm algorithm);

/// Physical properties of the inputs the caller already knows. Sortedness
/// by _ts flows from TPRelation::sorted_by_ts() — maintained on append and
/// restored by compaction, which re-sorts merged segments by _ts — and
/// lets kSweep skip its sort entirely.
struct OverlapJoinHints {
  bool r_sorted_by_ts = false;
  bool s_sorted_by_ts = false;
};

/// The flattened + pre-partitioned probe (s) side of an overlap join —
/// immutable and shareable, so the parallel runtime can flatten and
/// partition s ONCE and probe it from every morsel plan instead of paying
/// the build per morsel. `build` is null for the nested-loop algorithm
/// (only the flattened table is shared then).
struct OverlapProbeSide {
  std::shared_ptr<const Table> s_table;
  std::shared_ptr<const TemporalBuildSide> build;
};

/// Flattens nothing: takes an already-flattened `s_table` and partitions
/// it on the equi-keys of `theta` (for kPartitioned / kAuto).
StatusOr<OverlapProbeSide> MakeOverlapProbeSide(
    std::shared_ptr<const Table> s_table, const Schema& r_facts,
    const Schema& s_facts, const JoinCondition& theta,
    OverlapAlgorithm algorithm);

/// Builds the pipelined plan computing WO(r;s,θ) ∪ {full-interval unmatched}
/// over the flattened tables (which must stay alive while the operator
/// runs). Output rows follow WindowLayout(r_facts, s_facts); within each rid
/// the windows are ordered by start, which is exactly the order LAWAU
/// expects — no extra sort is needed (the pipeline stays streaming).
///
/// With a `probe` (whose s_table must be the one passed here), the
/// partitioned algorithm probes the shared build instead of re-building;
/// a non-null probe->build pins the partitioned algorithm.
StatusOr<OperatorPtr> MakeOverlapWindowJoin(
    const Table* r_table, const Schema& r_facts, const Table* s_table,
    const Schema& s_facts, const JoinCondition& theta,
    OverlapAlgorithm algorithm, const OverlapProbeSide* probe = nullptr,
    const OverlapJoinHints& hints = {});

/// Resolves the equality column names of `theta` against the fact schemas.
StatusOr<std::vector<std::pair<int, int>>> ResolveCondition(
    const JoinCondition& theta, const Schema& r_facts, const Schema& s_facts);

/// θ with the two sides exchanged (for pipelines that run on (s, r)).
JoinCondition SwapJoinCondition(const JoinCondition& theta);

/// Resolved, directly evaluable form of θ over two fact rows.
class ThetaMatcher {
 public:
  /// `keys` are resolved (left index, right index) equality pairs.
  ThetaMatcher(std::vector<std::pair<int, int>> keys,
               std::function<bool(const Row&, const Row&)> predicate)
      : keys_(std::move(keys)), predicate_(std::move(predicate)) {}

  /// Builds a matcher by resolving `theta` against the fact schemas.
  static StatusOr<ThetaMatcher> Make(const JoinCondition& theta,
                                     const Schema& r_facts,
                                     const Schema& s_facts);

  bool Matches(const Row& r_fact, const Row& s_fact) const {
    for (const auto& [ri, si] : keys_) {
      if (r_fact[ri].is_null() || s_fact[si].is_null()) return false;
      if (r_fact[ri] != s_fact[si]) return false;
    }
    return !predicate_ || predicate_(r_fact, s_fact);
  }

  /// Resolved equality pairs (left index, right index).
  const std::vector<std::pair<int, int>>& keys() const { return keys_; }

  /// The general (non-equality) predicate part of θ; may be empty.
  const std::function<bool(const Row&, const Row&)>& predicate() const {
    return predicate_;
  }

 private:
  std::vector<std::pair<int, int>> keys_;
  std::function<bool(const Row&, const Row&)> predicate_;
};

}  // namespace tpdb

#endif  // TPDB_TP_OVERLAP_JOIN_H_
