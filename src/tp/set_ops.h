// Temporal-probabilistic set operations — union, intersection, difference —
// built on the same generalized lineage-aware windows as the joins.
//
// These are the operations of the authors' companion paper ("Supporting
// set operations in temporal-probabilistic databases", ICDE 2018, the
// paper's reference [1]); this implementation derives them directly from
// the window machinery, with θ being equality on *all* fact columns:
//
//   r ∩ s : negating windows of r w.r.t. s, lineage  λr ∧ λs
//   r − s : unmatched (λr) and negating (λr ∧ ¬λs) windows — the anti join
//           under full-fact equality
//   r ∪ s : unmatched windows of r (λr), negating windows of r with
//           lineage λr ∨ λs, and unmatched windows of s (λs)
//
// Because valid TP relations are duplicate-free in time, at most one tuple
// of each input is valid per (fact, time point), so the negating windows'
// λs disjunction has exactly one disjunct and the outputs above are again
// duplicate-free — Validate()-clean TP relations.
#ifndef TPDB_TP_SET_OPS_H_
#define TPDB_TP_SET_OPS_H_

#include <string>

#include "common/status.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// r ∪Tp s: at each time point, a fact is true iff it is true in r or s.
StatusOr<TPRelation> TPUnion(const TPRelation& r, const TPRelation& s,
                             std::string result_name = "");

/// r ∩Tp s: at each time point, a fact is true iff true in both inputs.
StatusOr<TPRelation> TPIntersect(const TPRelation& r, const TPRelation& s,
                                 std::string result_name = "");

/// r −Tp s: at each time point, a fact is true iff true in r and not in s.
StatusOr<TPRelation> TPDifference(const TPRelation& r, const TPRelation& s,
                                  std::string result_name = "");

/// The three set operations, as a tag for the generic entry points below.
enum class TPSetOpKind { kUnion, kIntersect, kDifference };

const char* TPSetOpKindName(TPSetOpKind kind);

/// Dispatches to TPUnion / TPIntersect / TPDifference.
StatusOr<TPRelation> TPSetOp(TPSetOpKind kind, const TPRelation& r,
                             const TPRelation& s, std::string result_name = "");

/// Plan-node payload of a TP set operation — the executor of a PhysTPSetOp
/// node (api/physical_plan.h) builds one of these from the node and hands
/// it to TPSetOp, or to exec/parallel.h's ParallelTPSetOp.
struct TPSetOpSpec {
  TPSetOpKind kind = TPSetOpKind::kUnion;
  std::string result_name;
};

/// Runs the set operation described by `spec` over (r, s).
StatusOr<TPRelation> TPSetOp(const TPSetOpSpec& spec, const TPRelation& r,
                             const TPRelation& s);

// -- Pipeline-level entry points (the parallel driver's building blocks) --
//
// A set operation runs one r-driven window pipeline (unmatched/negating
// windows of r tuples) and — for union only — a second, s-driven pipeline
// (the unmatched windows of s). Since θ is equality on ALL fact columns,
// tuples that can interact have equal facts, so exec/ hash-partitions both
// inputs by fact and runs fully independent pipeline pairs per partition.

/// True iff `kind` also runs the s-driven (unmatched-of-s) pipeline.
bool SetOpHasSDrivenPipeline(TPSetOpKind kind);

/// Runs ONE pipeline of the set operation over (r, s) — in operation
/// orientation, even for the s-driven pipeline — appending output tuples
/// to `result` (schema = r's fact schema).
Status RunSetOpPipeline(TPSetOpKind kind, bool s_driven, const TPRelation& r,
                        const TPRelation& s, TPRelation* result);

/// θ of the set operations: equality on every fact column, after checking
/// union compatibility of the two relations.
StatusOr<JoinCondition> SetOpCondition(const TPRelation& r,
                                       const TPRelation& s);

/// The window→tuple lineage-concatenation rule of `kind`, applied to an
/// arbitrary WUON window stream (canonical WindowLayout rows). `swapped`
/// marks the s-driven pipeline (inputs exchanged). Used by the
/// time-partitioned parallel driver (exec/time_partition.h).
Status EmitSetOpWindows(TPSetOpKind kind, bool swapped, Operator* windows,
                        const WindowLayout& layout, LineageManager* manager,
                        TPRelation* result);

}  // namespace tpdb

#endif  // TPDB_TP_SET_OPS_H_
