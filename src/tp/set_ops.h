// Temporal-probabilistic set operations — union, intersection, difference —
// built on the same generalized lineage-aware windows as the joins.
//
// These are the operations of the authors' companion paper ("Supporting
// set operations in temporal-probabilistic databases", ICDE 2018, the
// paper's reference [1]); this implementation derives them directly from
// the window machinery, with θ being equality on *all* fact columns:
//
//   r ∩ s : negating windows of r w.r.t. s, lineage  λr ∧ λs
//   r − s : unmatched (λr) and negating (λr ∧ ¬λs) windows — the anti join
//           under full-fact equality
//   r ∪ s : unmatched windows of r (λr), negating windows of r with
//           lineage λr ∨ λs, and unmatched windows of s (λs)
//
// Because valid TP relations are duplicate-free in time, at most one tuple
// of each input is valid per (fact, time point), so the negating windows'
// λs disjunction has exactly one disjunct and the outputs above are again
// duplicate-free — Validate()-clean TP relations.
#ifndef TPDB_TP_SET_OPS_H_
#define TPDB_TP_SET_OPS_H_

#include <string>

#include "common/status.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// r ∪Tp s: at each time point, a fact is true iff it is true in r or s.
StatusOr<TPRelation> TPUnion(const TPRelation& r, const TPRelation& s,
                             std::string result_name = "");

/// r ∩Tp s: at each time point, a fact is true iff true in both inputs.
StatusOr<TPRelation> TPIntersect(const TPRelation& r, const TPRelation& s,
                                 std::string result_name = "");

/// r −Tp s: at each time point, a fact is true iff true in r and not in s.
StatusOr<TPRelation> TPDifference(const TPRelation& r, const TPRelation& s,
                                  std::string result_name = "");

}  // namespace tpdb

#endif  // TPDB_TP_SET_OPS_H_
