#include "tp/tp_relation.h"

#include <algorithm>
#include <map>

#include "lineage/print.h"
#include "lineage/probability.h"
#include "temporal/timeline.h"

namespace tpdb {

TPRelation::TPRelation(std::string name, Schema fact_schema,
                       LineageManager* manager)
    : name_(std::move(name)),
      fact_schema_(std::move(fact_schema)),
      manager_(manager) {
  TPDB_CHECK(manager_ != nullptr);
}

Status TPRelation::AppendBase(Row fact, Interval interval, double prob,
                              std::string var_name) {
  if (prob < 0.0 || prob > 1.0)
    return Status::InvalidArgument("probability out of [0,1]: " +
                                   std::to_string(prob));
  if (interval.empty())
    return Status::InvalidArgument("empty interval " + interval.ToString());
  const VarId var = manager_->RegisterVariable(prob, std::move(var_name));
  return AppendDerived(std::move(fact), interval, manager_->Var(var));
}

Status TPRelation::AppendDerived(Row fact, Interval interval,
                                 LineageRef lineage) {
  if (fact.size() != fact_schema_.num_columns())
    return Status::InvalidArgument(
        name_ + ": fact arity " + std::to_string(fact.size()) +
        " does not match schema arity " +
        std::to_string(fact_schema_.num_columns()));
  if (interval.empty())
    return Status::InvalidArgument("empty interval " + interval.ToString());
  if (lineage.is_null())
    return Status::InvalidArgument("null lineage in " + name_);
  if (!tuples_.empty() && interval.start < tuples_.back().interval.start)
    sorted_by_ts_ = false;
  tuples_.push_back(TPTuple{std::move(fact), lineage, interval});
  cold_storage_.reset();  // the columnar backing no longer matches
  return Status::OK();
}

Status TPRelation::ReplaceContents(
    std::vector<TPTuple> tuples,
    std::shared_ptr<const storage::SegmentedTable> cold) {
  for (const TPTuple& t : tuples) {
    if (t.fact.size() != fact_schema_.num_columns())
      return Status::InvalidArgument(
          name_ + ": fact arity " + std::to_string(t.fact.size()) +
          " does not match schema arity " +
          std::to_string(fact_schema_.num_columns()));
    if (t.lineage.is_null())
      return Status::InvalidArgument("null lineage in " + name_);
  }
  sorted_by_ts_ = true;
  for (size_t i = 1; i < tuples.size(); ++i) {
    if (tuples[i].interval.start < tuples[i - 1].interval.start) {
      sorted_by_ts_ = false;
      break;
    }
  }
  tuples_ = std::move(tuples);
  cold_storage_ = std::move(cold);
  return Status::OK();
}

Status TPRelation::Absorb(TPRelation&& other) {
  if (other.manager_ != manager_)
    return Status::InvalidArgument(
        "Absorb: '" + other.name_ + "' is bound to a different "
        "LineageManager than '" + name_ + "'");
  if (other.fact_schema_.num_columns() != fact_schema_.num_columns())
    return Status::InvalidArgument(
        "Absorb: fact arity mismatch between '" + name_ + "' and '" +
        other.name_ + "'");
  sorted_by_ts_ =
      sorted_by_ts_ && other.sorted_by_ts_ &&
      (tuples_.empty() || other.tuples_.empty() ||
       tuples_.back().interval.start <= other.tuples_.front().interval.start);
  if (tuples_.empty()) {
    tuples_ = std::move(other.tuples_);
  } else {
    tuples_.reserve(tuples_.size() + other.tuples_.size());
    for (TPTuple& t : other.tuples_) tuples_.push_back(std::move(t));
  }
  other.tuples_.clear();
  other.sorted_by_ts_ = true;  // vacuously, now that it is empty
  cold_storage_.reset();
  other.cold_storage_.reset();
  return Status::OK();
}

Status TPRelation::Validate() const {
  // Group tuple intervals by fact and check pairwise disjointness.
  std::map<Row, std::vector<Interval>, bool (*)(const Row&, const Row&)>
      by_fact(+[](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  for (size_t i = 0; i < tuples_.size(); ++i) {
    const TPTuple& t = tuples_[i];
    if (t.fact.size() != fact_schema_.num_columns())
      return Status::Internal(name_ + ": tuple " + std::to_string(i) +
                              " has wrong arity");
    if (t.interval.empty())
      return Status::Internal(name_ + ": tuple " + std::to_string(i) +
                              " has empty interval");
    if (t.lineage.is_null())
      return Status::Internal(name_ + ": tuple " + std::to_string(i) +
                              " has null lineage");
    by_fact[t.fact].push_back(t.interval);
  }
  for (auto& [fact, intervals] : by_fact) {
    if (!PairwiseDisjoint(intervals))
      return Status::InvalidArgument(
          name_ + ": overlapping intervals for fact (" + RowToString(fact) +
          ") — TP relations must be duplicate-free at each time point");
  }
  return Status::OK();
}

double TPRelation::Probability(size_t i) const {
  TPDB_CHECK_LT(i, tuples_.size());
  ProbabilityEngine engine(manager_);
  return engine.Probability(tuples_[i].lineage);
}

Table TPRelation::ToTable() const {
  Table out;
  Schema schema = fact_schema_;
  schema.AddColumn({kTsColumn, DatumType::kInt64});
  schema.AddColumn({kTeColumn, DatumType::kInt64});
  schema.AddColumn({kLineageColumn, DatumType::kLineage});
  out.schema = std::move(schema);
  out.rows.reserve(tuples_.size());
  for (const TPTuple& t : tuples_) {
    Row row = t.fact;
    row.push_back(Datum(t.interval.start));
    row.push_back(Datum(t.interval.end));
    row.push_back(Datum(t.lineage));
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<TPRelation> TPRelation::FromTable(std::string name,
                                           const Table& table,
                                           LineageManager* manager) {
  const Schema& schema = table.schema;
  const int ts = schema.IndexOf(kTsColumn);
  const int te = schema.IndexOf(kTeColumn);
  const int lin = schema.IndexOf(kLineageColumn);
  if (ts < 0 || te < 0 || lin < 0)
    return Status::InvalidArgument(
        "table lacks the reserved _ts/_te/_lin columns");
  std::vector<Column> fact_cols;
  std::vector<int> fact_idx;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (static_cast<int>(i) == ts || static_cast<int>(i) == te ||
        static_cast<int>(i) == lin)
      continue;
    fact_cols.push_back(schema.column(i));
    fact_idx.push_back(static_cast<int>(i));
  }
  TPRelation rel(std::move(name), Schema(std::move(fact_cols)), manager);
  for (const Row& row : table.rows) {
    Row fact;
    fact.reserve(fact_idx.size());
    for (const int i : fact_idx) fact.push_back(row[i]);
    TPDB_RETURN_IF_ERROR(rel.AppendDerived(
        std::move(fact), Interval(row[ts].AsInt64(), row[te].AsInt64()),
        row[lin].AsLineage()));
  }
  return rel;
}

std::string TPRelation::ToString() const {
  ProbabilityEngine engine(manager_);
  std::string out = name_ + " (" + fact_schema_.ToString() + ", λ, T, p)\n";
  for (const TPTuple& t : tuples_) {
    out += "  (";
    out += RowToString(t.fact);
    out += " | ";
    out += LineageToString(*manager_, t.lineage);
    out += " | ";
    out += t.interval.ToString();
    char buf[32];
    std::snprintf(buf, sizeof(buf), " | %.4g)", engine.Probability(t.lineage));
    out += buf;
    out += "\n";
  }
  return out;
}

}  // namespace tpdb
