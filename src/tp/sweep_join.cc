#include "tp/sweep_join.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace tpdb {

namespace {

struct SweepMetrics {
  obs::Counter* endpoints = obs::MetricsRegistry::Default().counter(
      "tpdb_join_sweep_endpoints_total", "join",
      "Start events processed by sweep-line joins.");
  obs::Counter* windows = obs::MetricsRegistry::Default().counter(
      "tpdb_join_sweep_windows_total", "join",
      "Overlapping windows emitted by sweep-line joins.");
  obs::Histogram* active_max = obs::MetricsRegistry::Default().histogram(
      "tpdb_join_sweep_active_max", "join",
      "Active-set high-water mark per sweep (lazy expiry).");

  static const SweepMetrics& Get() {
    static const SweepMetrics m;
    return m;
  }
};

/// One live interval of an active set: when it ends, and which row it is.
struct ActiveEntry {
  TimePoint te;
  uint32_t idx;
};

/// Per-key active sets, keyed by the combined hash of the tuple's resolved
/// equi-key values. Collisions are harmless: every probe hit re-verifies
/// the actual θ (key equality + predicate). With no equi-keys every tuple
/// lands under one hash — a single active set, which is exactly the sane
/// predicate-only plan (the scan is bounded by temporal overlap, unlike
/// the degenerate single partition a hash build would produce).
using ActiveSets = std::unordered_map<uint64_t, std::vector<ActiveEntry>>;

/// Processing order of one side: row ids sorted by (_ts, id). `ids` null
/// means all rows; `sorted` skips the sort (stable, so equal starts keep
/// id order either way).
std::vector<uint32_t> SideOrder(const Table& table,
                                const std::vector<uint32_t>* ids, bool sorted,
                                int ts_col) {
  std::vector<uint32_t> order;
  if (ids != nullptr) {
    order = *ids;
  } else {
    order.resize(table.rows.size());
    std::iota(order.begin(), order.end(), 0u);
  }
  if (!sorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return table.rows[a][ts_col].AsInt64() <
                              table.rows[b][ts_col].AsInt64();
                     });
  }
  return order;
}

}  // namespace

void RunSweep(const SweepSpec& spec, const ThetaMatcher& theta,
              std::vector<Row>* out, SweepStats* stats) {
  TPDB_CHECK(spec.r_table != nullptr && spec.s_table != nullptr);
  TPDB_CHECK(out != nullptr && stats != nullptr);
  const Table& rt = *spec.r_table;
  const Table& st = *spec.s_table;
  const WindowLayout& layout = spec.layout;
  const int n_rf = layout.num_r_facts();
  const int n_sf = layout.num_s_facts();
  // Flattened input rows: facts ++ _ts ++ _te ++ _lin.
  const int r_ts = n_rf, r_te = n_rf + 1, r_lin = n_rf + 2;
  const int s_ts = n_sf, s_te = n_sf + 1, s_lin = n_sf + 2;

  const std::vector<uint32_t> r_order =
      SideOrder(rt, spec.r_ids, spec.r_sorted, r_ts);
  const std::vector<uint32_t> s_order =
      SideOrder(st, spec.s_ids, spec.s_sorted, s_ts);

  const auto& keys = theta.keys();
  const auto& pred = theta.predicate();

  // Combined hash of a tuple's resolved key values; nullopt for a null key
  // (a null never equals anything, so the tuple can neither probe nor be
  // probed — it still yields its unmatched windows via its empty bucket).
  const auto hash_keys = [&keys](const Row& row,
                                 bool is_r) -> std::optional<uint64_t> {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const auto& [ri, si] : keys) {
      const Datum& d = row[is_r ? ri : si];
      if (d.is_null()) return std::nullopt;
      h = (h ^ d.Hash()) * 1099511628211ull;
    }
    return h;
  };

  const auto matches = [&](const Row& r_row, const Row& s_row) {
    for (const auto& [ri, si] : keys) {
      if (r_row[ri].is_null() || s_row[si].is_null() ||
          r_row[ri] != s_row[si])
        return false;
    }
    if (!pred) return true;
    const Row rf(r_row.begin(), r_row.begin() + n_rf);
    const Row sf(s_row.begin(), s_row.begin() + n_sf);
    return pred(rf, sf);
  };

  // Emits the overlapping window of pair (ridx, sidx) starting at t.
  const auto emit = [&](uint32_t ridx, uint32_t sidx, TimePoint t) {
    const Row& r_row = rt.rows[ridx];
    const Row& s_row = st.rows[sidx];
    const TimePoint w_end =
        std::min(r_row[r_te].AsInt64(), s_row[s_te].AsInt64());
    Row row;
    row.reserve(static_cast<size_t>(layout.num_columns()));
    row.push_back(Datum(static_cast<int64_t>(ridx)));
    for (int i = 0; i < n_rf; ++i) row.push_back(r_row[i]);
    row.push_back(r_row[r_ts]);
    row.push_back(r_row[r_te]);
    row.push_back(r_row[r_lin]);
    for (int i = 0; i < n_sf; ++i) row.push_back(s_row[i]);
    row.push_back(s_row[s_ts]);
    row.push_back(s_row[s_te]);
    row.push_back(s_row[s_lin]);
    row.push_back(Datum(t));
    row.push_back(Datum(w_end));
    row.push_back(
        Datum(static_cast<int64_t>(WindowClass::kOverlapping)));
    out->push_back(std::move(row));
  };

  ActiveSets r_active, s_active;
  size_t live = 0;

  // Probes `actives[h]` at time t: expired entries (te <= t) are dropped
  // in place (stable — surviving entries keep insertion order, which is
  // what makes per-rid emission ordered by s start), live ones are handed
  // to `on_live`.
  const auto probe = [&live](ActiveSets& actives, uint64_t h, TimePoint t,
                             const auto& on_live) {
    const auto it = actives.find(h);
    if (it == actives.end()) return;
    std::vector<ActiveEntry>& entries = it->second;
    size_t w = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].te <= t) continue;
      entries[w++] = entries[i];
      on_live(entries[i].idx);
    }
    live -= entries.size() - w;
    entries.resize(w);
  };

  size_t ri = 0, si = 0;
  while (ri < r_order.size() || si < s_order.size()) {
    // Ties go to s: an r tuple starting at t must see s tuples starting at
    // t already active (their pair's window starts at t = the r event).
    const bool take_r =
        si >= s_order.size() ||
        (ri < r_order.size() &&
         rt.rows[r_order[ri]][r_ts].AsInt64() <
             st.rows[s_order[si]][s_ts].AsInt64());
    ++stats->endpoints;
    if (take_r) {
      const uint32_t idx = r_order[ri++];
      const Row& row = rt.rows[idx];
      const TimePoint t = row[r_ts].AsInt64();
      const std::optional<uint64_t> h = hash_keys(row, /*is_r=*/true);
      if (!h) continue;
      if (t >= spec.emit_lo) {
        probe(s_active, *h, t, [&](uint32_t sidx) {
          if (matches(row, st.rows[sidx])) emit(idx, sidx, t);
        });
      } else {
        probe(s_active, *h, t, [](uint32_t) {});
      }
      r_active[*h].push_back({row[r_te].AsInt64(), idx});
    } else {
      const uint32_t idx = s_order[si++];
      const Row& row = st.rows[idx];
      const TimePoint t = row[s_ts].AsInt64();
      const std::optional<uint64_t> h = hash_keys(row, /*is_r=*/false);
      if (!h) continue;
      if (t >= spec.emit_lo) {
        probe(r_active, *h, t, [&](uint32_t ridx) {
          if (matches(rt.rows[ridx], row)) emit(ridx, idx, t);
        });
      } else {
        probe(r_active, *h, t, [](uint32_t) {});
      }
      s_active[*h].push_back({row[s_te].AsInt64(), idx});
    }
    ++live;
    stats->active_max = std::max<uint64_t>(stats->active_max, live);
  }
  stats->windows = out->size();

  const SweepMetrics& m = SweepMetrics::Get();
  m.endpoints->Add(stats->endpoints);
  m.windows->Add(stats->windows);
  m.active_max->Record(stats->active_max);
}

void GroupWindowsByRid(std::vector<Row> rows, size_t num_r,
                       std::vector<std::vector<Row>>* buckets) {
  TPDB_CHECK(buckets != nullptr);
  buckets->clear();
  buckets->resize(num_r);
  for (Row& row : rows) {
    const size_t rid = static_cast<size_t>(row[0].AsInt64());
    TPDB_DCHECK(rid < num_r);
    (*buckets)[rid].push_back(std::move(row));
  }
}

BucketWindowSource::BucketWindowSource(std::vector<std::vector<Row>>* buckets,
                                       size_t rid_begin, size_t rid_end,
                                       const Table* r_table,
                                       WindowLayout layout, Schema schema)
    : buckets_(buckets),
      rid_begin_(rid_begin),
      rid_end_(rid_end),
      r_table_(r_table),
      layout_(layout),
      schema_(std::move(schema)),
      rid_(rid_begin) {
  TPDB_CHECK(buckets_ != nullptr && r_table_ != nullptr);
  TPDB_CHECK(rid_end_ <= buckets_->size());
}

void BucketWindowSource::Open() {
  rid_ = rid_begin_;
  pos_ = 0;
}

void BucketWindowSource::BuildUnmatched(size_t rid) {
  const Row& src = r_table_->rows[rid];
  const int n_rf = layout_.num_r_facts();
  const int n_sf = layout_.num_s_facts();
  Row& row = unmatched_buffer_;
  row.clear();
  row.reserve(static_cast<size_t>(layout_.num_columns()));
  row.push_back(Datum(static_cast<int64_t>(rid)));
  for (int i = 0; i < n_rf; ++i) row.push_back(src[i]);
  row.push_back(src[n_rf]);      // r_ts
  row.push_back(src[n_rf + 1]);  // r_te
  row.push_back(src[n_rf + 2]);  // r_lin
  for (int i = 0; i < n_sf + 3; ++i) row.push_back(Datum());  // s side: null
  row.push_back(src[n_rf]);      // w = the full r interval
  row.push_back(src[n_rf + 1]);
  row.push_back(Datum(static_cast<int64_t>(WindowClass::kUnmatched)));
}

Row* BucketWindowSource::Advance() {
  while (rid_ < rid_end_) {
    std::vector<Row>& bucket = (*buckets_)[rid_];
    if (bucket.empty()) {
      BuildUnmatched(rid_);
      ++rid_;
      pos_ = 0;
      return &unmatched_buffer_;
    }
    if (pos_ < bucket.size()) return &bucket[pos_++];
    ++rid_;
    pos_ = 0;
  }
  return nullptr;
}

bool BucketWindowSource::Next(Row* out) {
  Row* row = Advance();
  if (row == nullptr) return false;
  *out = std::move(*row);  // single pass: bucket rows are consumed
  return true;
}

const Row* BucketWindowSource::NextRef() { return Advance(); }

namespace {

/// The kSweep plan: sweep + regroup on Open(), then stream like a
/// BucketWindowSource over all rids.
class SweepWindowJoin final : public Operator {
 public:
  SweepWindowJoin(const Table* r_table, const Table* s_table,
                  WindowLayout layout, Schema schema, ThetaMatcher theta,
                  OverlapJoinHints hints, SweepStats* stats_out)
      : r_table_(r_table),
        s_table_(s_table),
        layout_(layout),
        schema_(std::move(schema)),
        theta_(std::move(theta)),
        hints_(hints),
        stats_out_(stats_out) {}

  const Schema& schema() const override { return schema_; }

  void Open() override {
    SweepSpec spec;
    spec.r_table = r_table_;
    spec.s_table = s_table_;
    spec.layout = layout_;
    spec.r_sorted = hints_.r_sorted_by_ts;
    spec.s_sorted = hints_.s_sorted_by_ts;
    std::vector<Row> rows;
    SweepStats stats;
    RunSweep(spec, theta_, &rows, &stats);
    if (stats_out_ != nullptr) *stats_out_ = stats;
    GroupWindowsByRid(std::move(rows), r_table_->rows.size(), &buckets_);
    source_ = std::make_unique<BucketWindowSource>(
        &buckets_, 0, r_table_->rows.size(), r_table_, layout_, schema_);
    source_->Open();
  }
  bool Next(Row* out) override { return source_->Next(out); }
  const Row* NextRef() override { return source_->NextRef(); }
  void Close() override {
    if (source_ != nullptr) source_->Close();
  }

 private:
  const Table* r_table_;
  const Table* s_table_;
  WindowLayout layout_;
  Schema schema_;
  ThetaMatcher theta_;
  OverlapJoinHints hints_;
  SweepStats* stats_out_;
  std::vector<std::vector<Row>> buckets_;
  std::unique_ptr<BucketWindowSource> source_;
};

}  // namespace

StatusOr<OperatorPtr> MakeSweepWindowJoin(
    const Table* r_table, const Schema& r_facts, const Table* s_table,
    const Schema& s_facts, const JoinCondition& theta,
    const OverlapJoinHints& hints, SweepStats* stats) {
  TPDB_CHECK(r_table != nullptr && s_table != nullptr);
  StatusOr<ThetaMatcher> matcher =
      ThetaMatcher::Make(theta, r_facts, s_facts);
  if (!matcher.ok()) return matcher.status();
  const WindowLayout layout(static_cast<int>(r_facts.num_columns()),
                            static_cast<int>(s_facts.num_columns()));
  return OperatorPtr(std::make_unique<SweepWindowJoin>(
      r_table, s_table, layout, layout.MakeSchema(r_facts, s_facts),
      std::move(*matcher), hints, stats));
}

}  // namespace tpdb
