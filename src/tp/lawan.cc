#include "tp/lawan.h"

#include <algorithm>

namespace tpdb {

Lawan::Lawan(OperatorPtr child, WindowLayout layout, LineageManager* manager)
    : child_(std::move(child)), layout_(layout), manager_(manager) {
  TPDB_CHECK(child_ != nullptr);
  TPDB_CHECK(manager_ != nullptr);
}

void Lawan::Open() {
  child_->Open();
  in_group_ = false;
  input_done_ = false;
  pending_.clear();
  queue_.Clear();
  active_.clear();
}

void Lawan::EmitNegating(TimePoint from, TimePoint to) {
  if (from >= to || active_.empty()) return;
  std::vector<LineageRef> lineages;
  lineages.reserve(active_.size());
  for (const auto& [end, lin] : active_) lineages.push_back(lin);
  const LineageRef lam_s = manager_->OrAll(lineages);

  Row neg = group_prototype_;
  for (int i = 0; i < layout_.num_s_facts(); ++i)
    neg[layout_.s_fact(i)] = Datum::Null();
  neg[layout_.s_ts()] = Datum::Null();
  neg[layout_.s_te()] = Datum::Null();
  neg[layout_.s_lin()] = Datum(lam_s);
  neg[layout_.w_ts()] = Datum(from);
  neg[layout_.w_te()] = Datum(to);
  neg[layout_.w_class()] = Datum(static_cast<int64_t>(WindowClass::kNegating));
  pending_.push_back(std::move(neg));
}

void Lawan::AdvanceSweep(TimePoint target) {
  // Case 2 of Fig. 4: the next ending point in the queue bounds the window;
  // case 3: the target (an upcoming starting point or the group end) does.
  while (!queue_.empty() && queue_.MinEnd() <= target) {
    const TimePoint bound = queue_.MinEnd();
    EmitNegating(pos_, bound);
    pos_ = std::max(pos_, bound);
    // Remove every s tuple ending at `bound` from the valid set.
    while (!queue_.empty() && queue_.MinEnd() == bound) {
      queue_.Pop();
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [bound](const auto& e) {
                                   return e.first == bound;
                                 }),
                  active_.end());
  }
  if (target > pos_) {
    EmitNegating(pos_, target);
    pos_ = target;
  }
}

void Lawan::FinishGroup() {
  if (!in_group_) return;
  if (!queue_.empty()) {
    // Drain: advance past the last ending point.
    TimePoint last = queue_.MinEnd();
    // Find the maximum ending point among active tuples.
    for (const auto& [end, lin] : active_) last = std::max(last, end);
    AdvanceSweep(last);
  }
  TPDB_DCHECK(active_.empty());
  queue_.Clear();
  active_.clear();
  in_group_ = false;
}

void Lawan::Consume(Row row) {
  const int64_t rid = layout_.RidOf(row);
  const WindowClass cls = layout_.ClassOf(row);
  const Interval w = layout_.WindowOf(row);

  if (!in_group_ || rid != group_rid_) {
    FinishGroup();
    in_group_ = true;
    group_rid_ = rid;
    group_prototype_ = row;
    pos_ = w.start;
  }

  switch (cls) {
    case WindowClass::kUnmatched:
      // Case 1 of Fig. 4: copy; the valid set is necessarily empty over an
      // unmatched window, so the sweep just moves past it.
      AdvanceSweep(w.start);
      pos_ = std::max(pos_, w.end);
      pending_.push_back(std::move(row));
      break;
    case WindowClass::kOverlapping: {
      // A new s tuple starts being valid at w.start: emit the negating
      // window ending at this starting point (if any), then register the
      // tuple's ending point and lineage in the queue.
      AdvanceSweep(w.start);
      const LineageRef lin_s = layout_.SLinOf(row);
      TPDB_DCHECK(!lin_s.is_null());
      queue_.Push(w.end, lin_s);
      active_.emplace_back(w.end, lin_s);
      pending_.push_back(std::move(row));
      break;
    }
    case WindowClass::kNegating:
      TPDB_CHECK(false) << "LAWAN input already contains negating windows";
      break;
  }
}

bool Lawan::Next(Row* out) {
  while (pending_.empty()) {
    if (input_done_) return false;
    Row row;
    if (child_->Next(&row)) {
      Consume(std::move(row));
    } else {
      input_done_ = true;
      FinishGroup();
    }
  }
  *out = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

}  // namespace tpdb
