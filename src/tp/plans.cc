#include "tp/plans.h"

#include "engine/materialize.h"
#include "engine/scan.h"
#include "tp/lawan.h"
#include "tp/lawau.h"

namespace tpdb {

StatusOr<WindowPlan> MakeWindowPlan(const TPRelation& r, const TPRelation& s,
                                    const JoinCondition& theta,
                                    WindowStage stage,
                                    OverlapAlgorithm algorithm,
                                    const OverlapProbeSide* probe) {
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  WindowPlan plan;
  plan.r_table = std::make_unique<Table>(r.ToTable());
  plan.s_table = probe != nullptr
                     ? probe->s_table
                     : std::make_shared<const Table>(s.ToTable());
  plan.layout =
      WindowLayout(static_cast<int>(r.fact_schema().num_columns()),
                   static_cast<int>(s.fact_schema().num_columns()));

  // Sortedness survives flattening (ToTable keeps tuple order), so the
  // sweep can skip its sort for relations appended in _ts order or
  // re-sorted by compaction.
  OverlapJoinHints hints;
  hints.r_sorted_by_ts = r.sorted_by_ts();
  hints.s_sorted_by_ts = s.sorted_by_ts();
  StatusOr<OperatorPtr> join =
      MakeOverlapWindowJoin(plan.r_table.get(), r.fact_schema(),
                            plan.s_table.get(), s.fact_schema(), theta,
                            algorithm, probe, hints);
  if (!join.ok()) return join.status();
  OperatorPtr root = std::move(*join);

  if (stage == WindowStage::kWuo || stage == WindowStage::kWuon)
    root = std::make_unique<Lawau>(std::move(root), plan.layout);
  if (stage == WindowStage::kWuon)
    root = std::make_unique<Lawan>(std::move(root), plan.layout, r.manager());

  plan.root = std::move(root);
  return plan;
}

StatusOr<OverlapProbeSide> MakeWindowProbeSide(const TPRelation& s,
                                               const Schema& r_facts,
                                               const JoinCondition& theta,
                                               OverlapAlgorithm algorithm) {
  return MakeOverlapProbeSide(std::make_shared<const Table>(s.ToTable()),
                              r_facts, s.fact_schema(), theta, algorithm);
}

OperatorPtr MakeLawanOnly(const Table* wuo, WindowLayout layout,
                          LineageManager* manager) {
  return std::make_unique<Lawan>(std::make_unique<TableScan>(wuo), layout,
                                 manager);
}

StatusOr<std::vector<TPWindow>> ComputeWindows(const TPRelation& r,
                                               const TPRelation& s,
                                               const JoinCondition& theta,
                                               WindowStage stage,
                                               OverlapAlgorithm algorithm) {
  StatusOr<WindowPlan> plan = MakeWindowPlan(r, s, theta, stage, algorithm);
  if (!plan.ok()) return plan.status();
  std::vector<TPWindow> out;
  plan->root->Open();
  Row row;
  while (plan->root->Next(&row)) out.push_back(plan->layout.ToWindow(row));
  plan->root->Close();
  return out;
}

}  // namespace tpdb
