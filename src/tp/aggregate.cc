#include "tp/aggregate.h"

#include <algorithm>

#include "lineage/probability.h"
#include "temporal/timeline.h"

namespace tpdb {

StatusOr<std::vector<TemporalAggregateRow>> TemporalAggregate(
    const TPRelation& rel, const TemporalAggregateOptions& options) {
  std::vector<TemporalAggregateRow> out;
  if (rel.empty()) return out;

  // Collect tuple intervals (clipped to the window, if any).
  const bool clipped = !options.window.empty();
  std::vector<Interval> intervals;
  intervals.reserve(rel.size());
  for (const TPTuple& t : rel.tuples()) {
    const Interval iv =
        clipped ? t.interval.Intersect(options.window) : t.interval;
    intervals.push_back(iv);  // keep positional alignment with tuples
  }

  const std::vector<TimePoint> events = EventPoints(intervals);
  if (events.size() < 2) return out;

  // Sweep: maintain the set of valid tuple indices between events.
  // Index tuples by start for incremental insertion.
  std::vector<uint32_t> by_start(rel.size());
  for (uint32_t i = 0; i < rel.size(); ++i) by_start[i] = i;
  std::sort(by_start.begin(), by_start.end(),
            [&intervals](uint32_t a, uint32_t b) {
              return intervals[a].start < intervals[b].start;
            });

  ProbabilityEngine prob(rel.manager());
  LineageManager* manager = rel.manager();
  std::vector<uint32_t> active;
  size_t next = 0;
  for (size_t e = 0; e + 1 < events.size(); ++e) {
    const Interval run(events[e], events[e + 1]);
    // Add tuples starting here; drop tuples that ended.
    while (next < by_start.size() &&
           intervals[by_start[next]].start <= run.start) {
      if (!intervals[by_start[next]].empty()) active.push_back(by_start[next]);
      ++next;
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&intervals, &run](uint32_t i) {
                                  return intervals[i].end <= run.start;
                                }),
                 active.end());

    if (active.empty() && !options.include_empty_runs) continue;

    TemporalAggregateRow row;
    row.interval = run;
    row.valid_tuples = active.size();
    if (!active.empty()) {
      std::vector<LineageRef> lineages;
      lineages.reserve(active.size());
      for (const uint32_t i : active) {
        const LineageRef lam = rel.tuple(i).lineage;
        row.expected_count += prob.Probability(lam);
        lineages.push_back(lam);
      }
      row.prob_any = prob.Probability(manager->OrAll(lineages));
      row.prob_none = 1.0 - row.prob_any;
    } else {
      row.prob_any = 0.0;
      row.prob_none = 1.0;
    }
    out.push_back(std::move(row));
  }
  // Runs are maximal by construction: EventPoints ignores empty (clipped
  // away) intervals, so every event changes the valid set.
  return out;
}

}  // namespace tpdb
