// Per-query tracing: a TraceContext accumulates a tree of timed spans —
// the query phases (parse, optimize, execute) plus one span per physical
// plan node, whose payload is the node's NodeStats actuals — and renders
// them as chrome://tracing JSON (load the file via the chrome://tracing or
// Perfetto UI) or as an indented text tree.
//
// A trace id rides the wire: the kTraceQuery frame carries the client's
// query id, which becomes the trace id, so a span tree seen in the tracing
// UI names the request that produced it. Plan-node spans reuse the exact
// NodeStats slots the Explain rendering reads, which is what makes the
// trace and "Physical plan (est | actual)" agree node-for-node.
//
// TraceContexts are single-threaded by design: one context belongs to one
// query on one session thread (parallel morsels aggregate into NodeStats,
// which the plan-node spans read after the fact).
#ifndef TPDB_OBS_TRACE_H_
#define TPDB_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpdb {
struct PhysicalNode;
}  // namespace tpdb

namespace tpdb::obs {

/// One completed span. `parent` is the id of the enclosing span (0 =
/// root). Plan-node spans carry the produced row count in `rows`;
/// phase spans leave it at kNoRows.
struct TraceSpan {
  static constexpr uint64_t kNoRows = ~uint64_t{0};

  uint64_t id = 0;      ///< 1-based, in creation (pre-)order
  uint64_t parent = 0;  ///< 0 = no parent
  std::string name;
  std::string detail;       ///< plan-node label or phase annotation
  uint64_t start_us = 0;    ///< steady-clock microseconds
  uint64_t dur_us = 0;
  uint64_t rows = kNoRows;  ///< plan-node spans: rows produced
  bool plan_node = false;   ///< true for per-PhysicalNode spans
};

class TraceContext {
 public:
  explicit TraceContext(uint64_t trace_id = 0) : trace_id_(trace_id) {}

  uint64_t trace_id() const { return trace_id_; }

  /// Opens a span under the innermost still-open span and returns its id.
  uint64_t StartSpan(std::string name);

  /// Closes the span — must be the innermost open one (spans nest).
  void EndSpan(uint64_t id);

  /// Records an already-measured span (plan nodes, whose timing comes from
  /// NodeStats rather than live start/stop). Returns its id.
  uint64_t AddSpan(TraceSpan span);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// The plan-node spans only, in creation order — pre-order over the
  /// physical tree, matching the Explain rendering line order.
  std::vector<const TraceSpan*> PlanSpans() const;

  /// chrome://tracing "traceEvents" JSON (complete "X" events). The
  /// physical-plan rendering, when given, is embedded under
  /// otherData.physical_plan so one artifact carries both views.
  std::string ToChromeJson(const std::string& physical_plan = "") const;

  /// Indented text tree ("name detail  1.234 ms (rows N)") for logs.
  std::string ToTreeString() const;

 private:
  uint64_t trace_id_;
  std::vector<TraceSpan> spans_;
  std::vector<uint64_t> open_;  ///< stack of open span ids
};

/// Mirrors a physical tree into plan-node spans under `parent`: one span
/// per node, pre-order, named by the node's op and carrying its NodeStats
/// actual rows/time as the payload. `base_start_us` anchors the synthetic
/// span times (NodeStats records durations, not start times; children
/// share their parent's start so the tree nests in the tracing UI).
void AddPlanSpans(const PhysicalNode& node, uint64_t parent,
                  uint64_t base_start_us, TraceContext* trace);

}  // namespace tpdb::obs

#endif  // TPDB_OBS_TRACE_H_
