// Cumulative runtime telemetry in the spirit of Postgres's pg_stat_* views
// and Prometheus client libraries: a process-wide MetricsRegistry of named
// counters, gauges, and latency histograms that every subsystem records
// into on its hot paths.
//
// Design constraints, in order:
//   1. Recording must be near-free under concurrency. Counters and
//      histograms shard their state across cacheline-padded slots indexed
//      by a thread-local shard id, so concurrent writers on different
//      cores do not bounce a line; each write is one or two relaxed
//      fetch_adds.
//   2. Reads are rare and may be slow. Snapshots merge the shards.
//   3. Quantiles come from log-bucketed histograms: each power-of-two
//      octave splits into 8 sub-buckets, so a bucket is at most 12.5%
//      wide relative to its lower bound — quantile estimates carry a
//      bounded relative error without storing samples.
//   4. Building with -DTPDB_NO_METRICS compiles every Record/Add/Set to a
//      no-op (the benchmark gate measures the enabled build against this
//      baseline). The registry and metric objects still exist so call
//      sites compile unchanged; only the hot-path writes vanish.
//
// The snapshot type (HistogramData) is plain data with the bucketing and
// quantile math attached, usable on its own — bench code records into a
// local HistogramData (single-threaded, never compiled out) so the whole
// repo has exactly one quantile implementation.
#ifndef TPDB_OBS_METRICS_H_
#define TPDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpdb::obs {

#ifdef TPDB_NO_METRICS
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Writer-side sharding degree (power of two). Eight slots is enough to
/// take contention off any core count this engine targets while keeping a
/// Counter at 512 bytes.
inline constexpr uint32_t kMetricShards = 8;

/// Stable per-thread shard index in [0, kMetricShards).
inline uint32_t CurrentShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

/// Appends `s` as a quoted, escaped JSON string literal — shared by the
/// registry and trace renderers.
void AppendJsonEscaped(const std::string& s, std::string* out);

/// Microseconds on the steady clock (monotonic; origin unspecified).
inline uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -- Histogram bucketing ---------------------------------------------------

/// log2(sub-buckets per octave).
inline constexpr uint32_t kHistSubBits = 3;
inline constexpr uint32_t kHistSubBuckets = 1u << kHistSubBits;  // 8
/// Buckets 0..7 hold the exact values 0..7; octaves [2^b, 2^{b+1}) for
/// b in [3, 63] each contribute 8 sub-buckets.
inline constexpr uint32_t kHistNumBuckets =
    kHistSubBuckets +
    (64 - kHistSubBits) * kHistSubBuckets;  // 8 exact + 61 octaves * 8 = 496

/// Bucket index for a recorded value.
inline uint32_t HistBucket(uint64_t v) {
  if (v < kHistSubBuckets) return static_cast<uint32_t>(v);
  const uint32_t b = 63 - static_cast<uint32_t>(std::countl_zero(v));
  const uint32_t sub =
      static_cast<uint32_t>(v >> (b - kHistSubBits)) & (kHistSubBuckets - 1);
  return kHistSubBuckets + (b - kHistSubBits) * kHistSubBuckets + sub;
}

/// Inclusive lower bound of a bucket.
inline uint64_t HistBucketLower(uint32_t idx) {
  if (idx < kHistSubBuckets) return idx;
  const uint32_t b = kHistSubBits + (idx - kHistSubBuckets) / kHistSubBuckets;
  const uint32_t sub = (idx - kHistSubBuckets) % kHistSubBuckets;
  return (uint64_t{1} << b) + (uint64_t{sub} << (b - kHistSubBits));
}

/// Exclusive upper bound of a bucket (saturates at the top).
inline uint64_t HistBucketUpper(uint32_t idx) {
  if (idx < kHistSubBuckets) return idx + 1;
  const uint32_t b = kHistSubBits + (idx - kHistSubBuckets) / kHistSubBuckets;
  const uint64_t width = uint64_t{1} << (b - kHistSubBits);
  const uint64_t lower = HistBucketLower(idx);
  return lower > ~uint64_t{0} - width ? ~uint64_t{0} : lower + width;
}

/// A merged, plain-data histogram: the one home of the quantile math.
/// Mergeable (bucket-wise addition) and directly recordable when atomicity
/// is not needed (bench latency collection). Never compiled out.
struct HistogramData {
  std::array<uint64_t, kHistNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  void Record(uint64_t value) {
    buckets[HistBucket(value)] += 1;
    count += 1;
    sum += value;
  }

  void Merge(const HistogramData& other) {
    for (uint32_t i = 0; i < kHistNumBuckets; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Largest non-empty bucket's upper bound (0 when empty) — an upper
  /// estimate of the maximum recorded value.
  uint64_t MaxEstimate() const;

  /// Quantile estimate for q in [0, 1], linearly interpolated inside the
  /// target bucket. Relative error is bounded by the bucket width: exact
  /// below 8, at most 12.5% beyond.
  double Quantile(double q) const;
};

// -- Writer-side metric types ----------------------------------------------

/// Monotonic counter, sharded across padded cachelines.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
#ifndef TPDB_NO_METRICS
    shards_[CurrentShard()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time signed value (queue depths, active counts). A single
/// atomic: gauges see orders of magnitude fewer writes than counters.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#ifndef TPDB_NO_METRICS
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t n) {
#ifndef TPDB_NO_METRICS
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Sub(int64_t n) { Add(-n); }

  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Concurrent log-bucketed histogram; Snapshot() merges the shards into a
/// HistogramData. Values are whatever unit the metric's name declares
/// (this codebase uses microseconds for latencies, bytes for sizes).
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
#ifndef TPDB_NO_METRICS
    Shard& s = shards_[CurrentShard()];
    s.buckets[HistBucket(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  HistogramData Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Scope guard recording its lifetime (microseconds) into a histogram.
/// Under TPDB_NO_METRICS the clock reads vanish with the Record.
class ScopedLatencyTimer {
 public:
#ifndef TPDB_NO_METRICS
  explicit ScopedLatencyTimer(Histogram* h) : h_(h), start_us_(NowUs()) {}
  ~ScopedLatencyTimer() {
    if (h_ != nullptr) h_->Record(NowUs() - start_us_);
  }

 private:
  Histogram* h_;
  uint64_t start_us_;
#else
  explicit ScopedLatencyTimer(Histogram*) {}
#endif
 public:
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;
};

// -- Registry --------------------------------------------------------------

/// Process-wide registry of named metrics. Registration is mutex-guarded
/// and expected once per call site (handles are cached in function-local
/// statics); returned pointers are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem reports into. Never
  /// destroyed (instrumented code may run during static teardown).
  static MetricsRegistry& Default();

  /// Registers (or looks up) a metric. `subsystem` groups the metric in
  /// the JSON rendering and the README catalogue; `help` becomes the
  /// Prometheus # HELP line. Re-registering a name returns the existing
  /// metric; registering it as a different kind aborts.
  Counter* counter(const std::string& name, const std::string& subsystem,
                   const std::string& help);
  Gauge* gauge(const std::string& name, const std::string& subsystem,
               const std::string& help);
  Histogram* histogram(const std::string& name, const std::string& subsystem,
                       const std::string& help);

  /// Prometheus text exposition format (counters + gauges as-is,
  /// histograms with cumulative non-empty buckets, _sum and _count).
  std::string RenderPrometheus() const;

  /// JSON rendering with derived quantiles per histogram:
  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,mean,p50,p95,p99,max,subsystem}}}.
  std::string RenderJson() const;

  /// Name/subsystem/kind rows, sorted by name — the metrics catalogue.
  struct MetricInfo {
    std::string name;
    std::string subsystem;
    std::string help;
    const char* kind;  // "counter" | "gauge" | "histogram"
  };
  std::vector<MetricInfo> List() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string subsystem;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* Register(const std::string& name, Kind kind,
                  const std::string& subsystem, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace tpdb::obs

#endif  // TPDB_OBS_METRICS_H_
