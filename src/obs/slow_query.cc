#include "obs/slow_query.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tpdb::obs {

namespace {

/// Threshold in microseconds; < 0 = disabled, INT64_MIN = unread env.
std::atomic<int64_t>& ThresholdSlot() {
  static std::atomic<int64_t> slot{INT64_MIN};
  return slot;
}

int64_t ThresholdUs() {
  int64_t v = ThresholdSlot().load(std::memory_order_relaxed);
  if (v == INT64_MIN) {
    v = -1;
    if (const char* env = std::getenv("TPDB_SLOW_QUERY_MS")) {
      char* end = nullptr;
      const double ms = std::strtod(env, &end);
      if (end != env && ms >= 0) v = static_cast<int64_t>(ms * 1e3);
    }
    ThresholdSlot().store(v, std::memory_order_relaxed);
  }
  return v;
}

Counter* SlowQueryCounter() {
  static Counter* const c = MetricsRegistry::Default().counter(
      "tpdb_engine_slow_queries_total", "engine",
      "Queries slower than the slow-query-log threshold.");
  return c;
}

}  // namespace

void SlowQueryLog::SetThresholdMs(double ms) {
  ThresholdSlot().store(ms < 0 ? -1 : static_cast<int64_t>(ms * 1e3),
                        std::memory_order_relaxed);
}

double SlowQueryLog::ThresholdMs() {
  const int64_t us = ThresholdUs();
  return us < 0 ? -1.0 : static_cast<double>(us) / 1e3;
}

void SlowQueryLog::Record(std::string_view sql, double seconds,
                          uint64_t rows) {
  const int64_t threshold_us = ThresholdUs();
  if (threshold_us < 0) return;
  const int64_t took_us = static_cast<int64_t>(seconds * 1e6);
  if (took_us < threshold_us) return;
  SlowQueryCounter()->Add();
  char took[32];
  std::snprintf(took, sizeof(took), "%.3f",
                static_cast<double>(took_us) / 1e3);
  TPDB_LOG(WARN) << "slow query (" << took << " ms, " << rows
                 << " rows): " << std::string(sql);
}

}  // namespace tpdb::obs
