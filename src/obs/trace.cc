#include "obs/trace.h"

#include <cstdio>

#include "api/physical_plan.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace tpdb::obs {

uint64_t TraceContext::StartSpan(std::string name) {
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = open_.empty() ? 0 : open_.back();
  span.name = std::move(name);
  span.start_us = NowUs();
  spans_.push_back(std::move(span));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void TraceContext::EndSpan(uint64_t id) {
  TPDB_CHECK(!open_.empty() && open_.back() == id)
      << "EndSpan(" << id << ") does not close the innermost open span";
  TraceSpan& span = spans_[id - 1];
  span.dur_us = NowUs() - span.start_us;
  open_.pop_back();
}

uint64_t TraceContext::AddSpan(TraceSpan span) {
  span.id = spans_.size() + 1;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

std::vector<const TraceSpan*> TraceContext::PlanSpans() const {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& span : spans_) {
    if (span.plan_node) out.push_back(&span);
  }
  return out;
}

std::string TraceContext::ToChromeJson(
    const std::string& physical_plan) const {
  std::string events;
  for (const TraceSpan& span : spans_) {
    if (!events.empty()) events += ",";
    events += "{\"name\":";
    AppendJsonEscaped(span.name, &events);
    events += ",\"cat\":\"";
    events += span.plan_node ? "plan" : "phase";
    events += "\",\"ph\":\"X\",\"ts\":" + std::to_string(span.start_us) +
              ",\"dur\":" + std::to_string(span.dur_us) +
              ",\"pid\":1,\"tid\":1,\"args\":{\"id\":" +
              std::to_string(span.id) +
              ",\"parent\":" + std::to_string(span.parent);
    if (span.rows != TraceSpan::kNoRows)
      events += ",\"rows\":" + std::to_string(span.rows);
    if (!span.detail.empty()) {
      events += ",\"detail\":";
      AppendJsonEscaped(span.detail, &events);
    }
    events += "}}";
  }
  std::string other = "{\"trace_id\":" + std::to_string(trace_id_);
  if (!physical_plan.empty()) {
    other += ",\"physical_plan\":";
    AppendJsonEscaped(physical_plan, &other);
  }
  other += "}";
  return "{\"traceEvents\":[" + events + "],\"otherData\":" + other + "}";
}

std::string TraceContext::ToTreeString() const {
  // Depth = distance to the root through parent ids (spans are created
  // parents-first, so a single forward pass suffices).
  std::vector<int> depth(spans_.size(), 0);
  std::string out;
  for (const TraceSpan& span : spans_) {
    const int d =
        span.parent == 0 ? 0 : depth[static_cast<size_t>(span.parent) - 1] + 1;
    depth[span.id - 1] = d;
    out.append(static_cast<size_t>(d) * 2, ' ');
    out += span.name;
    if (!span.detail.empty()) out += " " + span.detail;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %.3f ms",
                  static_cast<double>(span.dur_us) / 1e3);
    out += buf;
    if (span.rows != TraceSpan::kNoRows)
      out += " (rows " + std::to_string(span.rows) + ")";
    out += "\n";
  }
  return out;
}

void AddPlanSpans(const PhysicalNode& node, uint64_t parent,
                  uint64_t base_start_us, TraceContext* trace) {
  TraceSpan span;
  span.parent = parent;
  span.name = PhysOpName(node.op);
  span.detail = node.Label();
  span.start_us = base_start_us;
  span.plan_node = true;
  if (node.actual != nullptr) {
    span.dur_us = static_cast<uint64_t>(node.actual->seconds * 1e6);
    span.rows = node.actual->rows;
  }
  const uint64_t id = trace->AddSpan(std::move(span));
  for (const PhysicalNodePtr& child : node.children)
    AddPlanSpans(*child, id, base_start_us, trace);
}

}  // namespace tpdb::obs
