#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace tpdb::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

uint64_t HistogramData::MaxEstimate() const {
  for (uint32_t i = kHistNumBuckets; i-- > 0;) {
    if (buckets[i] != 0) return HistBucketUpper(i);
  }
  return 0;
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 0-based, nearest-rank with interpolation
  // inside the bucket that contains it.
  const double target = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (uint32_t i = 0; i < kHistNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t in_bucket = buckets[i];
    if (target < static_cast<double>(seen + in_bucket)) {
      const double frac =
          in_bucket == 1
              ? 0.5
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      const double lower = static_cast<double>(HistBucketLower(i));
      const double upper = static_cast<double>(HistBucketUpper(i));
      return lower + frac * (upper - lower);
    }
    seen += in_bucket;
  }
  return static_cast<double>(MaxEstimate());
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
#ifndef TPDB_NO_METRICS
  for (const Shard& s : shards_) {
    for (uint32_t i = 0; i < kHistNumBuckets; ++i) {
      const uint64_t n = s.buckets[i].load(std::memory_order_relaxed);
      out.buckets[i] += n;
      out.count += n;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
#endif
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::Register(const std::string& name,
                                                  Kind kind,
                                                  const std::string& subsystem,
                                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    TPDB_CHECK(it->second.kind == kind)
        << "metric '" << name << "' re-registered as a different kind";
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.subsystem = subsystem;
  entry.help = help;
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &metrics_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& subsystem,
                                  const std::string& help) {
  return Register(name, Kind::kCounter, subsystem, help)->counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& subsystem,
                              const std::string& help) {
  return Register(name, Kind::kGauge, subsystem, help)->gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& subsystem,
                                      const std::string& help) {
  return Register(name, Kind::kHistogram, subsystem, help)->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    out += "# HELP " + name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const HistogramData snap = entry.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (uint32_t i = 0; i < kHistNumBuckets; ++i) {
          if (snap.buckets[i] == 0) continue;
          cumulative += snap.buckets[i];
          out += name + "_bucket{le=\"" +
                 std::to_string(HistBucketUpper(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
               "\n";
        out += name + "_sum " + std::to_string(snap.sum) + "\n";
        out += name + "_count " + std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        if (!counters.empty()) counters += ",";
        AppendJsonEscaped(name, &counters);
        counters += ":" + std::to_string(entry.counter->Value());
        break;
      }
      case Kind::kGauge: {
        if (!gauges.empty()) gauges += ",";
        AppendJsonEscaped(name, &gauges);
        gauges += ":" + std::to_string(entry.gauge->Value());
        break;
      }
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const HistogramData snap = entry.histogram->Snapshot();
        AppendJsonEscaped(name, &histograms);
        histograms += ":{\"count\":" + std::to_string(snap.count) +
                      ",\"sum\":" + std::to_string(snap.sum) +
                      ",\"mean\":" + FormatDouble(snap.Mean()) +
                      ",\"p50\":" + FormatDouble(snap.Quantile(0.5)) +
                      ",\"p95\":" + FormatDouble(snap.Quantile(0.95)) +
                      ",\"p99\":" + FormatDouble(snap.Quantile(0.99)) +
                      ",\"max\":" + std::to_string(snap.MaxEstimate()) +
                      ",\"subsystem\":";
        AppendJsonEscaped(entry.subsystem, &histograms);
        histograms += "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

std::vector<MetricsRegistry::MetricInfo> MetricsRegistry::List() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricInfo> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    const char* kind = entry.kind == Kind::kCounter   ? "counter"
                       : entry.kind == Kind::kGauge   ? "gauge"
                                                      : "histogram";
    out.push_back(MetricInfo{name, entry.subsystem, entry.help, kind});
  }
  return out;
}

}  // namespace tpdb::obs
