// Threshold-gated slow-query log: queries whose end-to-end execution
// exceeds a configurable wall-time threshold are logged at WARN with their
// SQL text, duration and row count, and counted in
// tpdb_engine_slow_queries_total. Disabled by default; enable with the
// TPDB_SLOW_QUERY_MS environment variable, the server's --slow-query-ms
// flag, or SetThresholdMs.
#ifndef TPDB_OBS_SLOW_QUERY_H_
#define TPDB_OBS_SLOW_QUERY_H_

#include <cstdint>
#include <string_view>

namespace tpdb::obs {

class SlowQueryLog {
 public:
  /// Threshold in milliseconds; a negative value disables the log.
  static void SetThresholdMs(double ms);

  /// Current threshold (ms), or a negative value when disabled. First
  /// call reads TPDB_SLOW_QUERY_MS.
  static double ThresholdMs();

  /// Records one finished query: logs + counts it when `seconds` crosses
  /// the threshold. Cheap when disabled (one relaxed load + compare).
  static void Record(std::string_view sql, double seconds, uint64_t rows);
};

}  // namespace tpdb::obs

#endif  // TPDB_OBS_SLOW_QUERY_H_
