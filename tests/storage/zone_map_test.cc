// Zone-map pruning: a time-range (or probability / numeric) filtered scan
// over a multi-segment table must skip every segment whose zone map rules
// it out — asserted both on SegmentScan's counters directly and on the
// Explain storage section — while returning exactly the rows the unpruned
// in-memory pipeline returns.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/database.h"
#include "engine/materialize.h"
#include "storage/scan.h"
#include "storage/snapshot.h"

namespace tpdb {
namespace {

constexpr int64_t kTuples = 320;
constexpr size_t kSegmentRows = 64;  // 5 segments of 64 rows

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// 320 tuples: tuple i has key i%4, val i (double), interval [2i, 2i+1)
/// and probability 0.2 for i < 160, 0.9 beyond — so time, value and
/// probability all correlate with the segment order.
void Populate(TPDatabase* db) {
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  schema.AddColumn({"val", DatumType::kDouble});
  TPRelation* rel = *db->CreateRelation("events", schema);
  for (int64_t i = 0; i < kTuples; ++i) {
    ASSERT_TRUE(rel->AppendBase({Datum(i % 4), Datum(static_cast<double>(i))},
                                {2 * i, 2 * i + 1}, i < 160 ? 0.2 : 0.9)
                    .ok());
  }
}

class ZoneMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("zone_map.tpdb");
    Populate(&warm_);
    storage::SnapshotOptions options;
    options.segment_rows = kSegmentRows;
    ASSERT_TRUE(warm_.SaveSnapshot(path_, options).ok());
    ASSERT_TRUE(cold_.LoadSnapshot(path_).ok());
    ASSERT_NE((*cold_.Get("events"))->cold_storage(), nullptr);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Pruned (cold) and unpruned (warm) results must agree element-wise.
  void ExpectSameResults(const std::string& query) {
    StatusOr<TPRelation> a = warm_.Query(query);
    StatusOr<TPRelation> b = cold_.Query(query);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->size(), b->size()) << query;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->tuple(i).fact, b->tuple(i).fact) << query << " row " << i;
      EXPECT_EQ(a->tuple(i).interval, b->tuple(i).interval);
      EXPECT_EQ(a->Probability(i), b->Probability(i));
    }
  }

  std::string path_;
  TPDatabase warm_;
  TPDatabase cold_;
};

TEST_F(ZoneMapTest, SegmentScanSkipsNonOverlappingTimeRanges) {
  const auto& table = *(*cold_.Get("events"))->cold_storage();
  ASSERT_EQ(table.segments().size(), 5u);

  // _ts >= 512 ⇔ tuple index >= 256: only the last segment qualifies.
  storage::ScanPredicate predicate;
  predicate.AddLowerBound("_ts", 512.0, /*strict=*/false);
  StorageStats stats;
  storage::SegmentScan scan(&table, predicate, &stats);
  const Table out = Materialize(&scan);
  EXPECT_EQ(stats.segments_scanned, 1u);
  EXPECT_EQ(stats.segments_skipped, 4u);
  EXPECT_EQ(stats.rows_decoded, kSegmentRows);
  EXPECT_GT(stats.bytes_mapped, 0u);
  // The scan itself is conservative: it returns the whole surviving
  // segment; the filter above it does the exact per-row work.
  EXPECT_EQ(out.size(), kSegmentRows);
}

TEST_F(ZoneMapTest, ExplainReportsTimeRangePruning) {
  StatusOr<std::string> explain =
      cold_.Explain("SELECT * FROM events WHERE _ts >= 512");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("(cold)"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("segments scanned: 1"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("segments skipped: 4"), std::string::npos)
      << *explain;
  ExpectSameResults("SELECT * FROM events WHERE _ts >= 512");

  // A bounded window: _ts < 100 keeps only the first segment.
  StatusOr<std::string> window =
      cold_.Explain("SELECT * FROM events WHERE _ts >= 20 AND _ts < 100");
  ASSERT_TRUE(window.ok());
  EXPECT_NE(window->find("segments scanned: 1"), std::string::npos)
      << *window;
  EXPECT_NE(window->find("segments skipped: 4"), std::string::npos)
      << *window;
  ExpectSameResults("SELECT * FROM events WHERE _ts >= 20 AND _ts < 100");
}

TEST_F(ZoneMapTest, ProbabilityThresholdSkipsLowProbabilitySegments) {
  // Tuples 0..159 have p = 0.2: segments 0 and 1 are all below 0.5 and
  // are skipped; segment 2 is mixed (rows 128..191) and must be scanned.
  StatusOr<std::string> explain =
      cold_.Explain("SELECT * FROM events WITH PROB >= 0.5");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("segments scanned: 3"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("segments skipped: 2"), std::string::npos)
      << *explain;
  ExpectSameResults("SELECT * FROM events WITH PROB >= 0.5");
}

TEST_F(ZoneMapTest, NumericFactColumnBoundsPrune) {
  StatusOr<std::string> explain =
      cold_.Explain("SELECT * FROM events WHERE val >= 300.0");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("segments scanned: 1"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("segments skipped: 4"), std::string::npos)
      << *explain;
  ExpectSameResults("SELECT * FROM events WHERE val >= 300.0");

  // Equality on the key column cannot prune (every segment holds keys
  // 0..3) — all segments scan, nothing is wrongly skipped.
  StatusOr<std::string> all =
      cold_.Explain("SELECT * FROM events WHERE key = 2");
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all->find("segments scanned: 5"), std::string::npos) << *all;
  EXPECT_NE(all->find("segments skipped: 0"), std::string::npos) << *all;
  ExpectSameResults("SELECT * FROM events WHERE key = 2");
}

TEST_F(ZoneMapTest, ProbabilityPruningStopsAfterSetVariableProbability) {
  // Regression: zone-map max_prob is snapshot-time data. Raising a base
  // probability afterwards must not let a stale bound silently drop rows
  // — the planner's epoch gate disables probability pruning instead.
  const std::string query = "SELECT * FROM events WITH PROB >= 0.5";
  StatusOr<TPRelation> before = cold_.Query(query);
  ASSERT_TRUE(before.ok());

  // Tuple 0 lives in a segment whose max_prob (0.2) is below the
  // threshold; raise its variable to 0.95.
  const TPRelation& rel = **cold_.Get("events");
  cold_.manager()->SetVariableProbability(
      cold_.manager()->Variables(rel.tuple(0).lineage).front(), 0.95);

  StatusOr<TPRelation> after = cold_.Query(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1);  // the raised tuple joins

  // And Explain must show pruning disabled (every segment scanned).
  StatusOr<std::string> explain = cold_.Explain(query);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("segments scanned: 5"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("segments skipped: 0"), std::string::npos)
      << *explain;

  // Time/numeric pruning is unaffected by the epoch bump.
  StatusOr<std::string> temporal =
      cold_.Explain("SELECT * FROM events WHERE _ts >= 512");
  ASSERT_TRUE(temporal.ok());
  EXPECT_NE(temporal->find("segments skipped: 4"), std::string::npos)
      << *temporal;
}

TEST_F(ZoneMapTest, WarmDatabaseHasNoStorageSection) {
  StatusOr<std::string> explain =
      warm_.Explain("SELECT * FROM events WHERE _ts >= 512");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->find("segments"), std::string::npos) << *explain;
}

}  // namespace
}  // namespace tpdb
