// Snapshot round-trip properties: a database saved with SaveSnapshot and
// reloaded into a fresh TPDatabase must hold element-wise identical
// relations (facts, intervals, lineage renderings, exact probabilities)
// and answer every query of the reference suite — joins, LAWAU/LAWAN set
// operations, aggregates, filtered/ordered/probability-thresholded
// pipelines — with identical results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/random.h"
#include "storage/snapshot.h"
#include "tests/reference/fixtures.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// The sorted variable names mentioned by a lineage formula — comparable
/// across managers (node ids are not: commutative children re-order by
/// arena id after re-interning, without affecting semantics).
std::vector<std::string> VariableNames(const TPRelation& rel,
                                       LineageRef lineage) {
  std::vector<std::string> names;
  for (const VarId v : rel.manager()->Variables(lineage))
    names.push_back(rel.manager()->VariableName(v));
  std::sort(names.begin(), names.end());
  return names;
}

/// Element-wise equality of two relations: schema, facts, intervals,
/// lineage variable sets (names survive snapshots) and exact probability.
void ExpectRelationsEqual(const TPRelation& a, const TPRelation& b) {
  ASSERT_EQ(a.size(), b.size()) << a.name();
  EXPECT_TRUE(a.fact_schema() == b.fact_schema()) << a.name();
  for (size_t i = 0; i < a.size(); ++i) {
    const TPTuple& ta = a.tuple(i);
    const TPTuple& tb = b.tuple(i);
    EXPECT_EQ(ta.fact, tb.fact) << a.name() << " tuple " << i;
    EXPECT_EQ(ta.interval, tb.interval) << a.name() << " tuple " << i;
    EXPECT_EQ(VariableNames(a, ta.lineage), VariableNames(b, tb.lineage))
        << a.name() << " tuple " << i;
    EXPECT_EQ(a.Probability(i), b.Probability(i))
        << a.name() << " tuple " << i;
  }
}

/// Runs `query` on both databases and compares the results element-wise
/// (including exact probabilities).
void ExpectSameResults(TPDatabase& warm, TPDatabase& cold,
                       const std::string& query) {
  StatusOr<TPRelation> a = warm.Query(query);
  StatusOr<TPRelation> b = cold.Query(query);
  ASSERT_TRUE(a.ok()) << query << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << query << ": " << b.status().ToString();
  SCOPED_TRACE(query);
  ExpectRelationsEqual(*a, *b);
}

/// The Fig. 1 booking example plus random relations and derived results
/// (compound lineages with negation), registered into `db`.
void PopulateDatabase(TPDatabase* db, uint64_t seed) {
  Schema ab_schema;
  ab_schema.AddColumn({"Name", DatumType::kString});
  ab_schema.AddColumn({"Loc", DatumType::kString});
  TPRelation* a = *db->CreateRelation("wants", ab_schema);
  ASSERT_TRUE(
      a->AppendBase({Datum("Ann"), Datum("ZAK")}, {7, 10}, 0.8, "a1").ok());
  ASSERT_TRUE(
      a->AppendBase({Datum("Tom"), Datum("ZAK")}, {3, 9}, 0.4, "a2").ok());

  Schema b_schema;
  b_schema.AddColumn({"Hotel", DatumType::kString});
  b_schema.AddColumn({"Loc", DatumType::kString});
  TPRelation* b = *db->CreateRelation("hotels", b_schema);
  ASSERT_TRUE(
      b->AppendBase({Datum("H1"), Datum("ZAK")}, {2, 8}, 0.7, "b1").ok());
  ASSERT_TRUE(
      b->AppendBase({Datum("H2"), Datum("ZAK")}, {6, 12}, 0.5, "b2").ok());
  ASSERT_TRUE(
      b->AppendBase({Datum("H3"), Datum("KOS")}, {1, 14}, 0.9, "b3").ok());

  Random rng(seed);
  testing::RandomRelationOptions options;
  options.num_tuples = 24;
  auto r = testing::MakeRandomRelation(db->manager(), "r", options, &rng);
  auto s = testing::MakeRandomRelation(db->manager(), "s", options, &rng);
  ASSERT_TRUE(db->Register(std::move(*r)).ok());
  ASSERT_TRUE(db->Register(std::move(*s)).ok());

  // Derived relations carry compound lineages (∧, ∨, ¬) into the node
  // table: an outer join (NULL padding exercises the null bitmaps) and a
  // difference (AndNot lineages).
  StatusOr<TPRelation> joined = db->Query("wants LEFT JOIN hotels ON Loc");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_TRUE(db->Register(std::move(*joined)).ok());
  StatusOr<TPRelation> diff = db->Query("r EXCEPT s");
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  ASSERT_TRUE(db->Register(std::move(*diff)).ok());
}

class SnapshotRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRoundtripTest, CatalogAndQueriesSurviveReload) {
  const std::string path =
      TempPath("roundtrip_" + std::to_string(GetParam()) + ".tpdb");
  TPDatabase db;
  PopulateDatabase(&db, GetParam());
  ASSERT_TRUE(db.SaveSnapshot(path).ok());

  TPDatabase reloaded;
  ASSERT_TRUE(reloaded.LoadSnapshot(path).ok());

  // Every relation must reload element-wise identical, with the columnar
  // backing attached.
  ASSERT_EQ(db.RelationNames(), reloaded.RelationNames());
  for (const std::string& name : db.RelationNames()) {
    ExpectRelationsEqual(**db.Get(name), **reloaded.Get(name));
    EXPECT_NE((*reloaded.Get(name))->cold_storage(), nullptr) << name;
  }

  // Reference query suite: TP joins (NJ and the TA baseline), LAWAU /
  // LAWAN set operations, aggregates and fused pipelines.
  const std::vector<std::string> queries = {
      "wants INNER JOIN hotels ON Loc",
      "wants LEFT JOIN hotels ON Loc",
      "wants FULL JOIN hotels ON Loc",
      "wants ANTI JOIN hotels ON Loc",
      "r SEMI JOIN s ON key USING TA",
      "r INNER JOIN s ON key USING TA",
      "r UNION s",
      "r INTERSECT s",
      "r EXCEPT s",
      "SELECT key, COUNT(*) AS n, MAX(tag) FROM r GROUP BY key",
      "SELECT Name, Hotel FROM wants INNER JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY Name LIMIT 3",
      "SELECT * FROM r WHERE key = 1 AND _ts >= 4",
      "SELECT * FROM wants WITH PROB >= 0.5",
      "SELECT * FROM r WHERE tag >= 1 ORDER BY _ts LIMIT 10 "
      "WITH PROB > 0.2",
  };
  for (const std::string& query : queries) ExpectSameResults(db, reloaded, query);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundtripTest,
                         ::testing::Values(7u, 1234u, 99991u));

TEST(SnapshotTest, EmptyDatabaseAndEmptyRelationRoundtrip) {
  const std::string path = TempPath("roundtrip_empty.tpdb");
  TPDatabase db;
  Schema schema;
  schema.AddColumn({"x", DatumType::kInt64});
  ASSERT_TRUE(db.CreateRelation("empty", schema).ok());
  ASSERT_TRUE(db.SaveSnapshot(path).ok());

  TPDatabase reloaded;
  ASSERT_TRUE(reloaded.LoadSnapshot(path).ok());
  StatusOr<const TPRelation*> rel =
      const_cast<const TPDatabase&>(reloaded).Get("empty");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE((*rel)->empty());
  EXPECT_TRUE((*rel)->fact_schema() == schema);
  std::remove(path.c_str());
}

TEST(SnapshotTest, SnapshotStatementsRunThroughTheQueryApi) {
  const std::string path = TempPath("roundtrip_stmt.tpdb");
  TPDatabase db;
  PopulateDatabase(&db, 42);
  ASSERT_TRUE(db.Query("SAVE SNAPSHOT '" + path + "'").ok());

  TPDatabase reloaded;
  ASSERT_TRUE(reloaded.Query("LOAD SNAPSHOT '" + path + "'").ok());
  ExpectSameResults(db, reloaded, "wants LEFT JOIN hotels ON Loc");

  // Loading again clashes on variable names — reported, not aborted.
  const Status again =
      reloaded.Query("LOAD SNAPSHOT '" + path + "'").status();
  EXPECT_FALSE(again.ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MultiSegmentRelationRoundtripsAcrossSegmentSizes) {
  const std::string path = TempPath("roundtrip_segments.tpdb");
  TPDatabase db;
  Random rng(4711);
  testing::RandomRelationOptions options;
  options.num_tuples = 150;
  options.num_keys = 5;
  options.horizon = 400;
  auto r = testing::MakeRandomRelation(db.manager(), "big", options, &rng);
  ASSERT_TRUE(db.Register(std::move(*r)).ok());

  for (const size_t segment_rows : {1u, 7u, 64u, 4096u}) {
    storage::SnapshotOptions snap;
    snap.segment_rows = segment_rows;
    ASSERT_TRUE(db.SaveSnapshot(path, snap).ok());
    TPDatabase reloaded;
    ASSERT_TRUE(reloaded.LoadSnapshot(path).ok());
    SCOPED_TRACE("segment_rows=" + std::to_string(segment_rows));
    ExpectRelationsEqual(**db.Get("big"), **reloaded.Get("big"));
    ExpectSameResults(db, reloaded, "SELECT * FROM big WHERE _ts >= 100");
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, FailedLoadLeavesNoState) {
  // Regression: a load rejected for a relation-name clash must not leave
  // the snapshot's variables behind in the lineage manager — a retry
  // after resolving the clash has to succeed.
  const std::string path = TempPath("roundtrip_failed_load.tpdb");
  {
    TPDatabase source;
    Schema schema;
    schema.AddColumn({"x", DatumType::kInt64});
    TPRelation* rel = *source.CreateRelation("clash", schema);
    ASSERT_TRUE(
        rel->AppendBase({Datum(int64_t{1})}, {0, 5}, 0.5, "snapvar").ok());
    ASSERT_TRUE(source.SaveSnapshot(path).ok());
  }

  TPDatabase db;
  ASSERT_TRUE(db.CreateRelation("clash", Schema{}).ok());
  const Status failed = db.LoadSnapshot(path);
  EXPECT_EQ(failed.code(), StatusCode::kAlreadyExists) << failed.ToString();
  EXPECT_FALSE(db.manager()->FindVariable("snapvar").ok())
      << "failed load polluted the lineage manager";

  ASSERT_TRUE(db.Drop("clash").ok());
  EXPECT_TRUE(db.LoadSnapshot(path).ok());
  EXPECT_EQ((*db.Get("clash"))->size(), 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MutationDetachesColdStorage) {
  const std::string path = TempPath("roundtrip_detach.tpdb");
  TPDatabase db;
  Schema schema;
  schema.AddColumn({"x", DatumType::kInt64});
  TPRelation* rel = *db.CreateRelation("t", schema);
  ASSERT_TRUE(rel->AppendBase({Datum(int64_t{1})}, {0, 5}, 0.5).ok());
  ASSERT_TRUE(db.SaveSnapshot(path).ok());

  TPDatabase reloaded;
  ASSERT_TRUE(reloaded.LoadSnapshot(path).ok());
  TPRelation* loaded = *reloaded.Get("t");
  ASSERT_NE(loaded->cold_storage(), nullptr);
  ASSERT_TRUE(loaded->AppendBase({Datum(int64_t{2})}, {5, 9}, 0.5).ok());
  // The appended tuple is not in the mapped segments; the backing must go.
  EXPECT_EQ(loaded->cold_storage(), nullptr);
  StatusOr<TPRelation> all =
      reloaded.Query("SELECT * FROM t WHERE x >= 0");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpdb
