// Malformed-snapshot error paths: every corrupted, truncated or alien
// input must surface as a Status (IOError & friends) — never a crash.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "api/database.h"
#include "storage/snapshot.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small valid snapshot to corrupt.
std::string MakeValidSnapshot(const std::string& name) {
  const std::string path = TempPath(name);
  TPDatabase db;
  Schema schema;
  schema.AddColumn({"city", DatumType::kString});
  schema.AddColumn({"pop", DatumType::kInt64});
  TPRelation* rel = *db.CreateRelation("cities", schema);
  EXPECT_TRUE(
      rel->AppendBase({Datum("zrh"), Datum(int64_t{400})}, {0, 9}, 0.9).ok());
  EXPECT_TRUE(
      rel->AppendBase({Datum("gva"), Datum(int64_t{200})}, {3, 7}, 0.4).ok());
  EXPECT_TRUE(db.SaveSnapshot(path).ok());
  return path;
}

Status TryLoad(const std::string& path) {
  TPDatabase db;
  return db.LoadSnapshot(path);
}

TEST(SnapshotCorruptionTest, MissingFile) {
  const Status status = TryLoad(TempPath("does_not_exist.tpdb"));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(SnapshotCorruptionTest, NotASnapshot) {
  const std::string path = TempPath("corrupt_alien.tpdb");
  WriteFile(path, std::string(64, 'x'));
  const Status status = TryLoad(path);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("bad magic"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, TooSmall) {
  const std::string path = TempPath("corrupt_small.tpdb");
  WriteFile(path, "TPDB");
  const Status status = TryLoad(path);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, TruncatedFile) {
  const std::string path = MakeValidSnapshot("corrupt_trunc.tpdb");
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 40u);
  // Drop the trailer and some payload: the header's size no longer adds up.
  WriteFile(path, bytes.substr(0, bytes.size() - 17));
  const Status status = TryLoad(path);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, BitFlipFailsChecksum) {
  const std::string path = MakeValidSnapshot("corrupt_flip.tpdb");
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x20;  // somewhere inside the payload
  WriteFile(path, bytes);
  const Status status = TryLoad(path);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("CRC"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, UnsupportedVersion) {
  const std::string path = MakeValidSnapshot("corrupt_version.tpdb");
  std::string bytes = ReadFile(path);
  bytes[8] = 99;  // version field follows the 8-byte magic
  WriteFile(path, bytes);
  const Status status = TryLoad(path);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, EveryPrefixFailsCleanly) {
  // Load every strict prefix of a valid snapshot: none may crash, all must
  // report an error (a prefix can never pass the size check).
  const std::string path = MakeValidSnapshot("corrupt_prefix.tpdb");
  const std::string bytes = ReadFile(path);
  const std::string prefix_path = TempPath("corrupt_prefix_cut.tpdb");
  for (size_t n = 0; n < bytes.size(); n += 7) {
    WriteFile(prefix_path, bytes.substr(0, n));
    EXPECT_FALSE(TryLoad(prefix_path).ok()) << "prefix of " << n << " bytes";
  }
  std::remove(path.c_str());
  std::remove(prefix_path.c_str());
}

}  // namespace
}  // namespace tpdb
