// Compaction tests: folding delta segments into compressed base segments
// must be invisible to readers — element-wise results and exact
// probabilities identical before, during and after a compaction running
// concurrently with queries — while the storage accounting shows the
// deltas gone and the data re-packed.
//
// The appended data carries strictly increasing timestamps so compaction's
// interval re-sort is the identity permutation and tuple order (hence
// result order) is comparable across the swap.
#include "storage/compact/compactor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

Schema EventSchema() {
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  schema.AddColumn({"loc", DatumType::kString});
  return schema;
}

TPDatabase::AppendRow EventRow(int64_t i) {
  static const char* kCities[] = {"GVA", "ZAK", "BRN", "LSN"};
  TPDatabase::AppendRow row;
  row.fact = {Datum(i % 50), Datum(i % 11 == 0
                                       ? Datum::Null()
                                       : Datum(kCities[i % 4]))};
  row.interval = Interval(i * 3, i * 3 + 2);  // strictly increasing _ts
  row.prob = 0.3 + 0.1 * static_cast<double>(i % 5);
  return row;
}

/// One query result reduced to comparable form.
struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

std::vector<CanonicalTuple> RunQuery(TPDatabase* db,
                                     const std::string& query) {
  StatusOr<TPRelation> result = db->Query(query);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  std::vector<CanonicalTuple> out;
  if (!result.ok()) return out;
  ProbabilityEngine engine(result->manager());
  out.reserve(result->size());
  for (const TPTuple& t : result->tuples())
    out.push_back({t.fact, t.interval, engine.Probability(t.lineage)});
  return out;
}

bool SameTuples(const std::vector<CanonicalTuple>& a,
                const std::vector<CanonicalTuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (CompareRows(a[i].fact, b[i].fact) != 0 ||
        !(a[i].interval == b[i].interval) ||
        a[i].probability != b[i].probability)
      return false;
  return true;
}

/// Cold-backed database: 600 rows snapshot-loaded (base segments) plus
/// `extra_batches` appended batches (one delta segment each).
void BuildColdDatabase(TPDatabase* db, const std::string& snap_path,
                       size_t extra_batches, size_t batch_rows) {
  {
    TPDatabase builder;
    ASSERT_TRUE(builder.CreateRelation("events", EventSchema()).ok());
    std::vector<TPDatabase::AppendRow> rows;
    for (int64_t i = 0; i < 600; ++i) rows.push_back(EventRow(i));
    ASSERT_TRUE(builder.Append("events", std::move(rows)).ok());
    ASSERT_TRUE(builder.SaveSnapshot(snap_path).ok());
  }
  db->set_compaction_threshold(0);  // manual compaction only
  ASSERT_TRUE(db->LoadSnapshot(snap_path).ok());
  int64_t next = 600;
  for (size_t b = 0; b < extra_batches; ++b) {
    std::vector<TPDatabase::AppendRow> rows;
    for (size_t i = 0; i < batch_rows; ++i) rows.push_back(EventRow(next++));
    ASSERT_TRUE(db->Append("events", std::move(rows)).ok());
  }
}

TEST(CompactTest, CompactionFoldsDeltasAndPreservesEveryResult) {
  const std::string snap_path = TempPath("compact_fold.tpdb");
  TPDatabase db;
  BuildColdDatabase(&db, snap_path, /*extra_batches=*/5, /*batch_rows=*/40);
  db.set_compaction_segment_rows(256);  // force several base segments

  TPDatabase::DatabaseStats before = db.Stats();
  ASSERT_EQ(before.relations.size(), 1u);
  EXPECT_TRUE(before.relations[0].cold);
  EXPECT_EQ(before.relations[0].delta_segments, 5u);
  EXPECT_EQ(before.relations[0].rows, 800u);

  const std::vector<std::string> queries = {
      "SELECT * FROM events",
      "SELECT * FROM events WHERE key < 20",
      "SELECT * FROM events WHERE loc = 'ZAK' WITH PROB >= 0.5",
  };
  std::vector<std::vector<CanonicalTuple>> baseline;
  for (const std::string& q : queries) baseline.push_back(RunQuery(&db, q));

  ASSERT_TRUE(db.Compact("events").ok());

  TPDatabase::DatabaseStats after = db.Stats();
  EXPECT_EQ(after.relations[0].rows, 800u);
  EXPECT_TRUE(after.relations[0].cold);
  EXPECT_EQ(after.relations[0].delta_segments, 0u);
  EXPECT_GE(after.relations[0].base_segments, 3u);  // 800 rows / 256
  EXPECT_EQ(after.compactions, 1u);

  for (size_t q = 0; q < queries.size(); ++q)
    EXPECT_TRUE(SameTuples(baseline[q], RunQuery(&db, queries[q])))
        << queries[q];

  // A second compaction with no deltas is a clean no-op.
  ASSERT_TRUE(db.Compact("events").ok());
  EXPECT_TRUE(SameTuples(baseline[0], RunQuery(&db, queries[0])));
  std::remove(snap_path.c_str());
}

TEST(CompactTest, QueriesRunningDuringCompactionSeeIdenticalResults) {
  const std::string snap_path = TempPath("compact_concurrent.tpdb");
  TPDatabase db;
  BuildColdDatabase(&db, snap_path, /*extra_batches=*/8, /*batch_rows=*/50);
  db.set_compaction_segment_rows(256);

  const std::vector<std::string> queries = {
      "SELECT * FROM events",
      "SELECT * FROM events WHERE key < 25",
      "SELECT * FROM events WITH PROB >= 0.6",
  };
  std::vector<std::vector<CanonicalTuple>> baseline;
  for (const std::string& q : queries) baseline.push_back(RunQuery(&db, q));

  // Readers hammer the relation while compactions run; every result must
  // equal the baseline element-wise (probabilities bit-exact).
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> rounds{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        const size_t q = static_cast<size_t>(rounds.fetch_add(1)) %
                         queries.size();
        const std::vector<CanonicalTuple> got = RunQuery(&db, queries[q]);
        if (!SameTuples(baseline[q], got)) ++mismatches;
      }
    });
  }
  // Alternate compactions with fresh appends so each compaction has
  // deltas to fold. Appends extend the baseline, so re-query it after.
  int64_t next = 600 + 8 * 50;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(db.Compact("events").ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(rounds.load(), 0);

  // Appends after the folds keep working and show up.
  std::vector<TPDatabase::AppendRow> rows;
  for (size_t i = 0; i < 10; ++i) rows.push_back(EventRow(next++));
  ASSERT_TRUE(db.Append("events", std::move(rows)).ok());
  EXPECT_EQ(RunQuery(&db, "SELECT * FROM events").size(), 1010u);
  std::remove(snap_path.c_str());
}

TEST(CompactTest, BackgroundCompactionTriggersAtTheDeltaThreshold) {
  const std::string snap_path = TempPath("compact_auto.tpdb");
  TPDatabase db;
  BuildColdDatabase(&db, snap_path, /*extra_batches=*/0, /*batch_rows=*/0);
  db.set_compaction_threshold(3);

  int64_t next = 600;
  for (int b = 0; b < 3; ++b) {
    std::vector<TPDatabase::AppendRow> rows;
    for (size_t i = 0; i < 20; ++i) rows.push_back(EventRow(next++));
    ASSERT_TRUE(db.Append("events", std::move(rows)).ok());
  }
  // The third delta crosses the threshold; the background task runs on
  // the shared pool. Poll briefly for it to land.
  for (int spin = 0; spin < 500 && db.Stats().compactions == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TPDatabase::DatabaseStats stats = db.Stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(stats.relations[0].delta_segments, 0u);
  EXPECT_EQ(stats.relations[0].rows, 660u);
  EXPECT_EQ(RunQuery(&db, "SELECT * FROM events").size(), 660u);
  std::remove(snap_path.c_str());
}

TEST(CompactTest, CompactionRepacksIntoFewerBytesWithExactBounds) {
  const std::string snap_path = TempPath("compact_bytes.tpdb");
  TPDatabase db;
  BuildColdDatabase(&db, snap_path, /*extra_batches=*/6, /*batch_rows=*/64);
  TPDatabase::DatabaseStats before = db.Stats();
  ASSERT_TRUE(db.Compact("events").ok());
  TPDatabase::DatabaseStats after = db.Stats();
  // Folding six 64-row deltas into full base segments cannot grow the
  // encoded footprint, and the packed share keeps the ratio above 1.
  EXPECT_LE(after.relations[0].encoded_bytes,
            before.relations[0].encoded_bytes);
  EXPECT_GT(after.CompressionRatio(), 1.0);
  std::remove(snap_path.c_str());
}

TEST(CompactTest, CompactingAMissingOrHotRelationIsHarmless) {
  TPDatabase db;
  EXPECT_FALSE(db.Compact("nope").ok());
  // A relation without cold storage (never snapshot-loaded) is a no-op.
  ASSERT_TRUE(db.CreateRelation("hot", EventSchema()).ok());
  ASSERT_TRUE(db.Append("hot", {EventRow(0)}).ok());
  EXPECT_TRUE(db.Compact("hot").ok());
  EXPECT_EQ(RunQuery(&db, "SELECT * FROM hot").size(), 1u);
}

}  // namespace
}  // namespace tpdb
