// Per-codec compression tests: every method round-trips random and
// adversarial value blocks exactly, the chooser picks the smallest
// encoding, min/max block bounds are exact, and any malformed payload
// surfaces as a Status — never a crash, never an out-of-bounds read.
#include "storage/compress/compression.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"

namespace tpdb::storage {
namespace {

/// Round-trips `values` through one specific method and checks equality.
void ExpectMethodRoundTrip(CompressionMethod method,
                           const std::vector<int64_t>& values) {
  const CompressionRoutines* routines = GetCompressionRoutines(method);
  ASSERT_NE(routines, nullptr);
  ByteWriter w;
  routines->compress(values, &w);
  const std::string payload = std::move(w).TakeBuffer();
  EXPECT_EQ(payload.size(), routines->estimate(values))
      << routines->name << ": estimate disagrees with the actual payload";
  std::vector<int64_t> back(values.size(), 0);
  const Status st = routines->decompress(
      {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
      values.size(), back.data());
  ASSERT_TRUE(st.ok()) << routines->name << ": " << st.ToString();
  EXPECT_EQ(back, values) << routines->name;
}

/// Round-trips `values` through the full block path (header + chosen
/// method) and checks values and exact bounds.
void ExpectBlockRoundTrip(const std::vector<int64_t>& values) {
  ByteWriter w;
  CompressInt64Block(values, &w);
  const std::string bytes = std::move(w).TakeBuffer();
  ByteReader r({reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()});
  CompressedBlock block;
  ASSERT_TRUE(ParseInt64Block(&r, &block).ok());
  std::vector<int64_t> back;
  ASSERT_TRUE(DecompressInt64Block(block, values.size(), &back).ok());
  EXPECT_EQ(back, values);
  if (!values.empty()) {
    int64_t min = values[0], max = values[0];
    for (const int64_t v : values) {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    EXPECT_EQ(block.min, min);
    EXPECT_EQ(block.max, max);
  }
}

std::vector<std::vector<int64_t>> AdversarialBlocks() {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  std::vector<std::vector<int64_t>> blocks;
  blocks.push_back({});                      // empty
  blocks.push_back({0});                     // singleton
  blocks.push_back({kMin});                  // extreme singleton
  blocks.push_back(std::vector<int64_t>(10'000, 7));  // one huge run (RLE)
  blocks.push_back({kMin, kMax});            // full-range span (FoR width 64)
  blocks.push_back({kMax, kMax, kMin, kMin, kMax});  // runs of extremes
  // Sorted narrow range with one far outlier — FoR's worst enemy.
  std::vector<int64_t> outlier;
  for (int64_t i = 0; i < 1000; ++i) outlier.push_back(1'000'000 + i);
  outlier.push_back(kMax - 1);
  blocks.push_back(std::move(outlier));
  // Alternating values: RLE's worst case (every run has length 1).
  std::vector<int64_t> alternating;
  for (int64_t i = 0; i < 999; ++i) alternating.push_back(i % 2);
  blocks.push_back(std::move(alternating));
  // Strictly increasing timestamps, the common _ts shape.
  std::vector<int64_t> increasing;
  for (int64_t i = 0; i < 4096; ++i) increasing.push_back(i * 3);
  blocks.push_back(std::move(increasing));
  // Negative-heavy values (sign handling of the packed offsets).
  std::vector<int64_t> negatives;
  for (int64_t i = 0; i < 500; ++i) negatives.push_back(-1'000'000 + i * 7);
  blocks.push_back(std::move(negatives));
  return blocks;
}

TEST(CompressionTest, EveryMethodRoundTripsAdversarialBlocks) {
  for (const std::vector<int64_t>& block : AdversarialBlocks())
    for (const CompressionMethod method :
         {CompressionMethod::kRaw, CompressionMethod::kRle,
          CompressionMethod::kFor})
      ExpectMethodRoundTrip(method, block);
}

TEST(CompressionTest, EveryMethodRoundTripsRandomBlocks) {
  Random rng(271828);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = static_cast<size_t>(rng.Uniform(0, 2000));
    // Vary the value range so trials hit narrow, wide and run-heavy data.
    const int64_t range = int64_t{1} << rng.Uniform(0, 62);
    std::vector<int64_t> values;
    values.reserve(n);
    int64_t v = rng.Uniform(-range, range);
    for (size_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(0.4)) v = rng.Uniform(-range, range);  // else: run
      values.push_back(v);
    }
    for (const CompressionMethod method :
         {CompressionMethod::kRaw, CompressionMethod::kRle,
          CompressionMethod::kFor})
      ExpectMethodRoundTrip(method, values);
    ExpectBlockRoundTrip(values);
  }
}

TEST(CompressionTest, ChooserPicksTheSmallestEncoding) {
  for (const std::vector<int64_t>& block : AdversarialBlocks()) {
    const CompressionMethod chosen = ChooseCompression(block);
    const size_t chosen_size =
        GetCompressionRoutines(chosen)->estimate(block);
    for (const CompressionMethod other :
         {CompressionMethod::kRaw, CompressionMethod::kRle,
          CompressionMethod::kFor})
      EXPECT_LE(chosen_size, GetCompressionRoutines(other)->estimate(block))
          << GetCompressionRoutines(chosen)->name << " lost to "
          << GetCompressionRoutines(other)->name;
  }
}

TEST(CompressionTest, RunsCompressWithRleAndNarrowRangesWithFor) {
  // Long runs over a wide value range: FoR needs full-width offsets, RLE
  // collapses each run to one pair. (A constant block goes to FoR — its
  // zero-width offsets are even smaller than one RLE pair.)
  std::vector<int64_t> runs;
  for (int r = 0; r < 8; ++r)
    runs.insert(runs.end(), 1000,
                (r % 2 == 0 ? 1 : -1) * (int64_t{1} << 60) + r);
  EXPECT_EQ(ChooseCompression(runs), CompressionMethod::kRle);
  std::vector<int64_t> dense;
  for (int64_t i = 0; i < 4096; ++i) dense.push_back(i);
  EXPECT_EQ(ChooseCompression(dense), CompressionMethod::kFor);
  const size_t raw = GetCompressionRoutines(CompressionMethod::kRaw)
                         ->estimate(dense);
  const size_t packed = GetCompressionRoutines(ChooseCompression(dense))
                            ->estimate(dense);
  EXPECT_LT(packed * 2, raw);  // at least 2x on the dense-key shape
}

TEST(CompressionTest, UnknownMethodIdIsRejected) {
  EXPECT_FALSE(LookupCompressionMethod(3).ok());
  EXPECT_FALSE(LookupCompressionMethod(0xFF).ok());
  for (const uint8_t id : {0, 1, 2})
    EXPECT_TRUE(LookupCompressionMethod(id).ok());
}

TEST(CompressionTest, EveryTruncationOfABlockIsRejectedNotCrashed) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 257; ++i) values.push_back(i % 5 == 0 ? 7 : i);
  ByteWriter w;
  CompressInt64Block(values, &w);
  const std::string bytes = std::move(w).TakeBuffer();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r(
        {reinterpret_cast<const uint8_t*>(bytes.data()), cut});
    CompressedBlock block;
    if (!ParseInt64Block(&r, &block).ok()) continue;
    std::vector<int64_t> out;
    EXPECT_FALSE(DecompressInt64Block(block, values.size(), &out).ok())
        << "truncation at " << cut << " decoded silently";
  }
}

TEST(CompressionTest, EveryByteCorruptionSurfacesAsStatusOrWrongValues) {
  // Corruption inside the payload cannot always be detected (raw bytes
  // are self-consistent), but it must never crash or read out of bounds;
  // header corruption (bad method id, absurd lengths) must error.
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 300; ++i) values.push_back(i / 3);
  ByteWriter w;
  CompressInt64Block(values, &w);
  const std::string bytes = std::move(w).TakeBuffer();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const uint8_t flip : {0x01, 0x80}) {
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ flip);
      ByteReader r({reinterpret_cast<const uint8_t*>(corrupt.data()),
                    corrupt.size()});
      CompressedBlock block;
      if (!ParseInt64Block(&r, &block).ok()) continue;
      std::vector<int64_t> out;
      (void)DecompressInt64Block(block, values.size(), &out).ok();
    }
  }
}

}  // namespace
}  // namespace tpdb::storage
