// WAL durability tests: an acknowledged append survives losing the
// in-memory database (the kill -9 scenario — the WAL is fsynced before
// Append returns), replay reproduces rows, probabilities and variable
// names exactly, snapshots truncate the log atomically, and any torn or
// corrupted tail stops replay at the last valid record — never a crash.
#include "storage/wal/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/database.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Schema BookingSchema() {
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  schema.AddColumn({"loc", DatumType::kString});
  return schema;
}

/// Arms a WAL, creates a relation and appends `n` rows through the
/// durable path (every row acknowledged == on disk).
void PopulateThroughWal(TPDatabase* db, const std::string& wal_path,
                        size_t n) {
  ASSERT_TRUE(db->EnableWal(wal_path).ok());
  ASSERT_TRUE(db->CreateRelation("bookings", BookingSchema()).ok());
  std::vector<TPDatabase::AppendRow> rows;
  for (size_t i = 0; i < n; ++i) {
    TPDatabase::AppendRow row;
    row.fact = {Datum(static_cast<int64_t>(i)),
                Datum(i % 3 == 0 ? "GVA" : "ZAK")};
    row.interval = Interval(static_cast<int64_t>(i * 2),
                            static_cast<int64_t>(i * 2 + 3));
    row.prob = 0.25 + 0.5 * static_cast<double>(i % 3) / 2.0;
    if (i % 2 == 0) row.var_name = "b" + std::to_string(i);  // else auto
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db->Append("bookings", std::move(rows)).ok());
}

/// Element-wise parity of two databases' "bookings" relation: facts,
/// intervals, exact probabilities and the registered variable names.
void ExpectBookingsParity(TPDatabase* expected, TPDatabase* actual) {
  StatusOr<TPRelation*> e = expected->Get("bookings");
  StatusOr<TPRelation*> a = actual->Get("bookings");
  ASSERT_TRUE(e.ok() && a.ok());
  ASSERT_EQ((*e)->size(), (*a)->size());
  for (size_t i = 0; i < (*e)->size(); ++i) {
    const TPTuple& et = (*e)->tuple(i);
    const TPTuple& at = (*a)->tuple(i);
    EXPECT_EQ(CompareRows(et.fact, at.fact), 0) << "row " << i;
    EXPECT_EQ(et.interval, at.interval) << "row " << i;
    EXPECT_EQ((*e)->Probability(i), (*a)->Probability(i)) << "row " << i;
    EXPECT_EQ(expected->manager()->VariableName(
                  expected->manager()->VarOf(et.lineage)),
              actual->manager()->VariableName(
                  actual->manager()->VarOf(at.lineage)))
        << "row " << i;
  }
}

TEST(WalTest, AcknowledgedAppendsSurviveLosingTheDatabase) {
  const std::string wal_path = TempPath("survive.wal");
  auto original = std::make_unique<TPDatabase>();
  PopulateThroughWal(original.get(), wal_path, 20);

  // Simulate kill -9: no snapshot, no orderly shutdown — a fresh process
  // has only the WAL file.
  TPDatabase recovered;
  ASSERT_TRUE(recovered.EnableWal(wal_path).ok());
  ExpectBookingsParity(original.get(), &recovered);
}

TEST(WalTest, ReplayReproducesAutoAssignedVariableNames) {
  const std::string wal_path = TempPath("autonames.wal");
  TPDatabase original;
  PopulateThroughWal(&original, wal_path, 9);  // odd rows are auto-named

  TPDatabase recovered;
  ASSERT_TRUE(recovered.EnableWal(wal_path).ok());
  // Auto names must match exactly, so a second recovery (or appends that
  // follow) keeps registering the same ids in the same order.
  ExpectBookingsParity(&original, &recovered);
  StatusOr<uint64_t> found = [&]() -> StatusOr<uint64_t> {
    StatusOr<VarId> var = recovered.manager()->FindVariable("b0");
    if (!var.ok()) return var.status();
    return uint64_t{1};
  }();
  EXPECT_TRUE(found.ok());
}

TEST(WalTest, SnapshotTruncatesTheLogAndReplayDoesNotDuplicate) {
  const std::string wal_path = TempPath("truncate.wal");
  const std::string snap_path = TempPath("truncate.tpdb");
  TPDatabase original;
  PopulateThroughWal(&original, wal_path, 10);
  const size_t bytes_before = original.wal()->bytes();
  EXPECT_GT(bytes_before, 0u);
  ASSERT_TRUE(original.SaveSnapshot(snap_path).ok());
  // The snapshot subsumes every logged record; the log is reset.
  EXPECT_EQ(original.wal()->bytes(), 0u);

  // More appends after the snapshot land in the (now shorter) log.
  ASSERT_TRUE(original
                  .Append("bookings", {{{Datum(int64_t{100}), Datum("BRN")},
                                        Interval(50, 60),
                                        0.5,
                                        "late"}})
                  .ok());
  EXPECT_GT(original.wal()->bytes(), 0u);
  EXPECT_LT(original.wal()->bytes(), bytes_before);

  // Recovery = snapshot + WAL tail; nothing replays twice.
  TPDatabase recovered;
  ASSERT_TRUE(recovered.LoadSnapshot(snap_path).ok());
  ASSERT_TRUE(recovered.EnableWal(wal_path).ok());
  ExpectBookingsParity(&original, &recovered);
  std::remove(snap_path.c_str());
}

TEST(WalTest, EveryPrefixTruncationReplaysTheValidRecordsOnly) {
  const std::string wal_path = TempPath("prefix.wal");
  {
    TPDatabase db;
    ASSERT_TRUE(db.EnableWal(wal_path).ok());
    ASSERT_TRUE(db.CreateRelation("bookings", BookingSchema()).ok());
    for (int64_t i = 0; i < 6; ++i)
      ASSERT_TRUE(db.Append("bookings",
                            {{{Datum(i), Datum("GVA")},
                              Interval(i * 10, i * 10 + 5),
                              0.5,
                              ""}})
                      .ok());
  }
  const std::string bytes = ReadFile(wal_path);
  ASSERT_GT(bytes.size(), 0u);
  const std::string cut_path = TempPath("prefix_cut.wal");

  size_t last_count = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFile(cut_path, bytes.substr(0, cut));
    StatusOr<storage::WalReadResult> read = storage::ReadWal(cut_path);
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": "
                           << read.status().ToString();
    // Monotone: a longer prefix never yields fewer records, and every
    // record survives intact (a partial record is torn tail, dropped).
    EXPECT_GE(read->records.size(), last_count) << "cut at " << cut;
    EXPECT_LE(read->valid_bytes, cut);
    last_count = read->records.size();

    // Replaying the truncated log must always work — it is a valid log.
    TPDatabase db;
    ASSERT_TRUE(db.EnableWal(cut_path).ok()) << "cut at " << cut;
    if (!read->records.empty()) {
      StatusOr<TPRelation*> rel = db.Get("bookings");
      ASSERT_TRUE(rel.ok());
      EXPECT_EQ((*rel)->size(), read->records.size() - 1);
    }
  }
  EXPECT_EQ(last_count, 7u);  // create + 6 appends
}

TEST(WalTest, EveryBitFlipStopsReplayAtTheLastValidRecordNeverCrashes) {
  const std::string wal_path = TempPath("bitflip.wal");
  {
    TPDatabase db;
    ASSERT_TRUE(db.EnableWal(wal_path).ok());
    ASSERT_TRUE(db.CreateRelation("bookings", BookingSchema()).ok());
    for (int64_t i = 0; i < 4; ++i)
      ASSERT_TRUE(db.Append("bookings",
                            {{{Datum(i), Datum("ZAK")},
                              Interval(i, i + 1),
                              0.75,
                              ""}})
                      .ok());
  }
  const std::string bytes = ReadFile(wal_path);
  const std::string flip_path = TempPath("bitflip_cut.wal");
  StatusOr<storage::WalReadResult> clean = storage::ReadWal(wal_path);
  ASSERT_TRUE(clean.ok());
  const size_t total = clean->records.size();

  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const uint8_t flip : {0x01, 0x80}) {
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ flip);
      WriteFile(flip_path, corrupt);
      StatusOr<storage::WalReadResult> read = storage::ReadWal(flip_path);
      ASSERT_TRUE(read.ok()) << "flip at " << pos;
      // The surviving records are a prefix of the original sequence: the
      // CRC catches the flipped record and replay stops there.
      EXPECT_LE(read->records.size(), total);
      for (size_t i = 0; i < read->records.size(); ++i)
        EXPECT_EQ(read->records[i].sequence, clean->records[i].sequence)
            << "flip at " << pos;

      TPDatabase db;
      EXPECT_TRUE(db.EnableWal(flip_path).ok()) << "flip at " << pos;
    }
  }
}

TEST(WalTest, OpenTruncatesTheTornTailAndKeepsAppending) {
  const std::string wal_path = TempPath("torn.wal");
  {
    TPDatabase db;
    ASSERT_TRUE(db.EnableWal(wal_path).ok());
    ASSERT_TRUE(db.CreateRelation("bookings", BookingSchema()).ok());
    ASSERT_TRUE(db.Append("bookings", {{{Datum(int64_t{1}), Datum("GVA")},
                                        Interval(0, 5),
                                        1.0,
                                        ""}})
                    .ok());
  }
  // Tear the last record in half, as an interrupted write would.
  std::string bytes = ReadFile(wal_path);
  WriteFile(wal_path, bytes.substr(0, bytes.size() - 7));

  // Recovery truncates the tail and the log accepts new records cleanly.
  TPDatabase db;
  ASSERT_TRUE(db.EnableWal(wal_path).ok());
  ASSERT_TRUE(db.Append("bookings", {{{Datum(int64_t{2}), Datum("BRN")},
                                      Interval(10, 15),
                                      0.5,
                                      ""}})
                  .ok());
  StatusOr<storage::WalReadResult> read = storage::ReadWal(wal_path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);  // create + the new append
  // Sequences stay strictly monotone across the truncation.
  EXPECT_LT(read->records[0].sequence, read->records[1].sequence);
}

TEST(WalTest, WalPathThatIsADirectoryIsAStatusNotACrash) {
  TPDatabase db;
  const Status status = db.EnableWal(::testing::TempDir());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("not a regular file"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(db.wal_enabled());
  EXPECT_FALSE(storage::ReadWal(::testing::TempDir()).ok());
}

TEST(WalTest, DoubleEnableAndWalWriterAccountingAreSane) {
  const std::string wal_path = TempPath("double.wal");
  TPDatabase db;
  ASSERT_TRUE(db.EnableWal(wal_path).ok());
  EXPECT_FALSE(db.EnableWal(wal_path).ok());  // already armed
  EXPECT_TRUE(db.wal_enabled());
  ASSERT_TRUE(db.CreateRelation("bookings", BookingSchema()).ok());
  EXPECT_EQ(db.wal()->records(), 1u);
  const uint64_t seq = db.wal()->last_sequence();
  ASSERT_TRUE(db.Append("bookings", {{{Datum(int64_t{1}), Datum("GVA")},
                                      Interval(0, 1),
                                      1.0,
                                      ""}})
                  .ok());
  EXPECT_EQ(db.wal()->records(), 2u);
  EXPECT_GT(db.wal()->last_sequence(), seq);
}

}  // namespace
}  // namespace tpdb
