// Physical plan IR: pass-by-pass golden trees (constant folding, predicate
// & probability pushdown, projection pruning, cost-based mode selection)
// and element-wise execution parity of the optimized PhysicalPlan against
// the unoptimized baseline across vectorize {auto, on, off} × parallelism
// {1, 4} × warm/cold inputs × seeds — values, intervals, and exact
// probabilities must match in emit order under every configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/passes/passes.h"
#include "api/physical_plan.h"
#include "api/planner.h"
#include "common/random.h"
#include "exec/session.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Position of `needle` in `text`; -1 when absent.
ptrdiff_t Find(const std::string& text, const std::string& needle) {
  const size_t at = text.find(needle);
  return at == std::string::npos ? -1 : static_cast<ptrdiff_t>(at);
}

class PhysicalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<TPRelation*> rel = db_.CreateRelation(
        "t", Schema({{"key", DatumType::kInt64},
                     {"score", DatumType::kDouble},
                     {"city", DatumType::kString}}));
    ASSERT_TRUE(rel.ok());
    Random rng(7);
    const std::vector<std::string> cities = {"ZAK", "GVA", "BRN"};
    for (int64_t i = 0; i < 1500; ++i) {
      Row fact{Datum(i % 101),
               i % 9 == 0 ? Datum::Null()
                          : Datum(static_cast<double>(i % 40) / 2.0),
               Datum(cities[static_cast<size_t>(i) % cities.size()])};
      ASSERT_TRUE((*rel)
                      ->AppendBase(std::move(fact), Interval(i, i + 3),
                                   0.2 + 0.6 * rng.NextDouble())
                      .ok());
    }
  }

  StatusOr<PhysicalPlan> Build(const std::string& query) {
    StatusOr<LogicalPlan> plan = db_.Plan(query);
    if (!plan.ok()) return plan.status();
    return BuildPhysicalPlan(*plan, &db_);
  }

  TPDatabase db_;
};

// -- Pass-by-pass golden trees ---------------------------------------------

TEST_F(PhysicalPlanTest, ConstantFoldingRemovesAlwaysTrueFilters) {
  StatusOr<PhysicalPlan> plan = Build("SELECT * FROM t WHERE 1 = 1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(FoldConstantsPass(&*plan).ok());
  const std::string tree = plan->ToString();
  EXPECT_EQ(Find(tree, "Filter["), -1) << tree;
  EXPECT_NE(Find(tree, "Scan(t)"), -1) << tree;
}

TEST_F(PhysicalPlanTest, ConstantFoldingEvaluatesLiteralSubtrees) {
  // (1 = 2 OR key >= 10) AND 3 < 4  →  key >= 10
  StatusOr<PhysicalPlan> plan = Build(
      "SELECT * FROM t WHERE (1 = 2 OR key >= 10) AND 3 < 4");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(FoldConstantsPass(&*plan).ok());
  const std::string tree = plan->ToString();
  EXPECT_NE(Find(tree, "Filter[(key >= 10)]"), -1) << tree;
  EXPECT_EQ(Find(tree, "OR"), -1) << tree;
  EXPECT_EQ(Find(tree, "AND"), -1) << tree;
}

TEST_F(PhysicalPlanTest, ConstantFoldingKeepsDropAllFilters) {
  StatusOr<PhysicalPlan> plan = Build("SELECT * FROM t WHERE 1 = 2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(FoldConstantsPass(&*plan).ok());
  const std::string tree = plan->ToString();
  EXPECT_NE(Find(tree, "Filter[0]"), -1) << tree;  // folded to literal false
}

TEST_F(PhysicalPlanTest, FoldAstExprUsesThreeValuedLogic) {
  // NULL must NOT fold to false (they differ under NOT).
  const AstExprPtr null_and =
      FoldAstExpr(AstAnd(AstLiteral(Datum::Null()), AstColumn("key")));
  ASSERT_NE(null_and, nullptr);
  EXPECT_EQ(null_and->kind, AstExprKind::kAnd);
  // false AND x = false even for non-literal x (exact in 3VL).
  const AstExprPtr false_and = FoldAstExpr(
      AstAnd(AstLiteral(Datum(static_cast<int64_t>(0))), AstColumn("key")));
  ASSERT_EQ(false_and->kind, AstExprKind::kLiteral);
  EXPECT_EQ(false_and->literal.AsInt64(), 0);
  // NOT NULL = NULL.
  const AstExprPtr not_null = FoldAstExpr(AstNot(AstLiteral(Datum::Null())));
  ASSERT_EQ(not_null->kind, AstExprKind::kLiteral);
  EXPECT_TRUE(not_null->literal.is_null());
  // int64 vs double comparisons promote (1 = 1.0 is true).
  const AstExprPtr promoted = FoldAstExpr(AstCompare(
      CompareOp::kEq, AstLiteral(Datum(static_cast<int64_t>(1))),
      AstLiteral(Datum(1.0))));
  ASSERT_EQ(promoted->kind, AstExprKind::kLiteral);
  EXPECT_EQ(promoted->literal.AsInt64(), 1);
}

TEST_F(PhysicalPlanTest, PushdownSinksFiltersBelowSortAndProject) {
  // Hand-build: Filter above Sort above Project — the filter must sink to
  // the bottom, rewritten through the projection's alias.
  StatusOr<LogicalPlan> logical =
      QueryBuilder("t").Select({"key"}, {"k"}).OrderBy("k").Build();
  ASSERT_TRUE(logical.ok());
  logical->root = LogicalNode::Filter(
      std::move(logical->root),
      AstCompare(CompareOp::kGe, AstColumn("k"),
                 AstLiteral(Datum(static_cast<int64_t>(10)))));
  StatusOr<PhysicalPlan> plan = BuildPhysicalPlan(*logical, &db_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(PushdownPass(&*plan).ok());
  const std::string tree = plan->ToString();
  // Bottom-up the filter now sits under both, renamed back to `key`.
  const ptrdiff_t filter = Find(tree, "Filter[(key >= 10)]");
  const ptrdiff_t sort = Find(tree, "Sort[");
  const ptrdiff_t project = Find(tree, "Project[");
  ASSERT_NE(filter, -1) << tree;
  ASSERT_NE(sort, -1) << tree;
  ASSERT_NE(project, -1) << tree;
  // ToString prints top-down: deeper nodes appear later.
  EXPECT_GT(filter, sort) << tree;
  EXPECT_GT(filter, project) << tree;
}

TEST_F(PhysicalPlanTest, PushdownOrdersPredicateFiltersBeforeProbability) {
  StatusOr<PhysicalPlan> plan =
      Build("SELECT * FROM t WHERE key >= 50 WITH PROB >= 0.5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Parser order already has the filter below; flip them to prove the
  // pass restores cheap-first.
  PhysicalNode* prob = plan->root.get();
  ASSERT_TRUE(prob->op == PhysOp::kFilter && prob->is_prob);
  ASSERT_TRUE(PushdownPass(&*plan).ok());
  const std::string tree = plan->ToString();
  const ptrdiff_t predicate = Find(tree, "Filter[(key >= 50)]");
  const ptrdiff_t threshold = Find(tree, "ProbThreshold[");
  ASSERT_NE(predicate, -1) << tree;
  ASSERT_NE(threshold, -1) << tree;
  EXPECT_GT(predicate, threshold) << tree;  // filter deeper than threshold
}

TEST_F(PhysicalPlanTest, PushdownNeverCrossesLimit) {
  StatusOr<LogicalPlan> logical = QueryBuilder("t").Limit(10).Build();
  ASSERT_TRUE(logical.ok());
  logical->root = LogicalNode::Filter(
      std::move(logical->root),
      AstCompare(CompareOp::kGe, AstColumn("key"),
                 AstLiteral(Datum(static_cast<int64_t>(10)))));
  StatusOr<PhysicalPlan> plan = BuildPhysicalPlan(*logical, &db_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(PushdownPass(&*plan).ok());
  const std::string tree = plan->ToString();
  const ptrdiff_t filter = Find(tree, "Filter[");
  const ptrdiff_t limit = Find(tree, "Limit[");
  ASSERT_NE(filter, -1) << tree;
  ASSERT_NE(limit, -1) << tree;
  EXPECT_LT(filter, limit) << tree;  // filter stays ABOVE the limit
}

TEST_F(PhysicalPlanTest, ProjectionPruningCollapsesAndDropsIdentity) {
  // Project(Project(x)) collapses into one.
  StatusOr<LogicalPlan> logical = QueryBuilder("t").Select({"key", "score"}).Build();
  ASSERT_TRUE(logical.ok());
  logical->root = LogicalNode::Project(std::move(logical->root), {"key"});
  StatusOr<PhysicalPlan> plan = BuildPhysicalPlan(*logical, &db_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(PruneProjectionsPass(&*plan).ok());
  std::string tree = plan->ToString();
  EXPECT_EQ(plan->root->op, PhysOp::kProject);
  EXPECT_EQ(plan->root->children[0]->op, PhysOp::kScan) << tree;

  // An identity projection disappears entirely.
  StatusOr<LogicalPlan> identity =
      QueryBuilder("t").Select({"key", "score", "city"}).Build();
  ASSERT_TRUE(identity.ok());
  StatusOr<PhysicalPlan> plan2 = BuildPhysicalPlan(*identity, &db_);
  ASSERT_TRUE(plan2.ok());
  ASSERT_TRUE(PruneProjectionsPass(&*plan2).ok());
  EXPECT_EQ(plan2->root->op, PhysOp::kScan) << plan2->ToString();
}

// -- Mode selection --------------------------------------------------------

class PhysicalPlanColdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("physical_plan_cold.tpdb");
    TPDatabase source;
    StatusOr<TPRelation*> rel = source.CreateRelation(
        "events", Schema({{"key", DatumType::kInt64},
                          {"val", DatumType::kDouble}}));
    ASSERT_TRUE(rel.ok());
    Random rng(13);
    for (int64_t i = 0; i < 2560; ++i)
      ASSERT_TRUE((*rel)
                      ->AppendBase({Datum(i % 97),
                                    Datum(static_cast<double>(i) / 4.0)},
                                   Interval(i, i + 2),
                                   0.2 + 0.6 * rng.NextDouble())
                      .ok());
    storage::SnapshotOptions options;
    options.segment_rows = 512;  // 5 segments
    ASSERT_TRUE(source.SaveSnapshot(path_, options).ok());
    ASSERT_TRUE(cold_.LoadSnapshot(path_).ok());
    ASSERT_NE((*cold_.Get("events"))->cold_storage(), nullptr);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  TPDatabase cold_;
};

TEST_F(PhysicalPlanColdTest, CostModelPicksBatchOnColdScansWithoutHint) {
  // The acceptance sweep: no explicit vectorize hint anywhere — the
  // zone-map-costed mode selection must route every cold scan query onto
  // the batch path by itself.
  PlannerOptions options;  // vectorize unset = cost-based
  ASSERT_FALSE(options.vectorize.has_value());
  Planner planner(&cold_, options);
  for (const std::string& query : std::vector<std::string>{
           "SELECT * FROM events WHERE key >= 10",
           "SELECT * FROM events WHERE val < 300.0",
           "SELECT * FROM events WHERE _ts >= 512",
           "SELECT key FROM events WHERE key >= 3 WITH PROB >= 0.4",
       }) {
    SCOPED_TRACE(query);
    StatusOr<LogicalPlan> logical = cold_.Plan(query);
    ASSERT_TRUE(logical.ok());
    StatusOr<PhysicalPlan> plan = planner.Lower(*logical);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const std::string tree = plan->ToString();
    EXPECT_NE(Find(tree, "BatchScan(events)"), -1) << tree;
    EXPECT_NE(Find(tree, "{batch"), -1) << tree;
  }
}

TEST_F(PhysicalPlanColdTest, VectorizeOffPinsTheRowPath) {
  PlannerOptions options;
  options.vectorize = false;
  Planner planner(&cold_, options);
  StatusOr<LogicalPlan> logical =
      cold_.Plan("SELECT * FROM events WHERE key >= 10");
  ASSERT_TRUE(logical.ok());
  StatusOr<PhysicalPlan> plan = planner.Lower(*logical);
  ASSERT_TRUE(plan.ok());
  const std::string tree = plan->ToString();
  EXPECT_EQ(Find(tree, "BatchScan"), -1) << tree;
  EXPECT_EQ(Find(tree, "{batch"), -1) << tree;
}

TEST_F(PhysicalPlanColdTest, ZoneMapEstimatesDriveTheScanCardinality) {
  // _ts >= 2048 prunes 4 of 5 segments: the scan estimate must reflect
  // the surviving segment, not the whole relation.
  Planner planner(&cold_, {});
  StatusOr<LogicalPlan> logical =
      cold_.Plan("SELECT * FROM events WHERE _ts >= 2048");
  ASSERT_TRUE(logical.ok());
  StatusOr<PhysicalPlan> plan = planner.Lower(*logical);
  ASSERT_TRUE(plan.ok());
  const PhysicalNode* scan = plan->root.get();
  while (!scan->children.empty()) scan = scan->children[0].get();
  EXPECT_EQ(scan->est.rows, 512.0) << plan->ToString();
  EXPECT_NE(Find(plan->ToString(), "pushdown=[_ts in"), -1)
      << plan->ToString();
}

TEST_F(PhysicalPlanColdTest, ParallelPlansInsertExchange) {
  PlannerOptions options;
  options.parallelism = 4;
  options.min_parallel_rows = 64;
  Planner planner(&cold_, options);
  StatusOr<LogicalPlan> logical =
      cold_.Plan("SELECT * FROM events WHERE key >= 10");
  ASSERT_TRUE(logical.ok());
  StatusOr<PhysicalPlan> plan = planner.Lower(*logical);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(Find(plan->ToString(), "Exchange[4 workers]"), -1)
      << plan->ToString();

  // Serial sessions never get an exchange.
  PlannerOptions serial;
  serial.parallelism = 1;
  Planner serial_planner(&cold_, serial);
  StatusOr<PhysicalPlan> serial_plan = serial_planner.Lower(*logical);
  ASSERT_TRUE(serial_plan.ok());
  EXPECT_EQ(Find(serial_plan->ToString(), "Exchange["), -1)
      << serial_plan->ToString();
}

TEST_F(PhysicalPlanColdTest, ExplainReportsPruningOnTheParallelMorselRoute) {
  // Satellite: StorageStats must aggregate across morsels — the parallel
  // batch route has to report the same pruned-segment counts the serial
  // path does.
  SessionOptions options;
  options.parallelism = 4;
  options.min_parallel_rows = 64;
  options.vectorize = true;
  StatusOr<std::string> parallel =
      Session(&cold_, options).Explain("SELECT * FROM events WHERE _ts >= 2048");
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_NE(Find(*parallel, "Exchange[4 workers]"), -1) << *parallel;
  EXPECT_NE(Find(*parallel, "segments scanned: 1"), -1) << *parallel;
  EXPECT_NE(Find(*parallel, "segments skipped: 4"), -1) << *parallel;
  EXPECT_NE(Find(*parallel, "(cold)"), -1) << *parallel;
  EXPECT_NE(Find(*parallel, "vectorized:"), -1) << *parallel;

  SessionOptions serial = options;
  serial.parallelism = 1;
  StatusOr<std::string> baseline =
      Session(&cold_, serial).Explain("SELECT * FROM events WHERE _ts >= 2048");
  ASSERT_TRUE(baseline.ok());
  EXPECT_NE(Find(*baseline, "segments scanned: 1"), -1) << *baseline;
  EXPECT_NE(Find(*baseline, "segments skipped: 4"), -1) << *baseline;
}

TEST_F(PhysicalPlanColdTest, ExplainRendersEstimatesNextToActuals) {
  StatusOr<std::string> text =
      Session(&cold_, {}).Explain("SELECT * FROM events WHERE key >= 50");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(Find(*text, "Physical plan (est | actual):"), -1) << *text;
  EXPECT_NE(Find(*text, "est "), -1) << *text;
  EXPECT_NE(Find(*text, "(actual "), -1) << *text;
  EXPECT_NE(Find(*text, "cost "), -1) << *text;
}

// -- Execution parity ------------------------------------------------------

/// Element-wise equality: facts, intervals, exact probabilities, order.
void ExpectSameRelation(const TPRelation& a, const TPRelation& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(a.fact_schema() == b.fact_schema())
      << a.fact_schema().ToString() << " vs " << b.fact_schema().ToString();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(CompareRows(a.tuple(i).fact, b.tuple(i).fact), 0)
        << "fact mismatch at tuple " << i;
    EXPECT_EQ(a.tuple(i).interval, b.tuple(i).interval)
        << "interval mismatch at tuple " << i;
    EXPECT_EQ(a.Probability(i), b.Probability(i))
        << "probability mismatch at tuple " << i;
  }
}

std::vector<std::string> ParityQueries(const std::string& rel) {
  return {
      "SELECT * FROM " + rel + " WHERE key >= 40",
      "SELECT * FROM " + rel + " WHERE 1 = 1 AND key < 70",
      "SELECT * FROM " + rel + " WHERE 1 = 2",
      "SELECT key FROM " + rel + " WHERE key >= 10 ORDER BY key LIMIT 25",
      "SELECT key AS k, score AS s FROM " + rel + " WHERE score >= 5.0",
      "SELECT * FROM " + rel + " WHERE key > 5 LIMIT 37 OFFSET 11",
      "SELECT * FROM " + rel + " WITH PROB >= 0.5",
      "SELECT * FROM " + rel + " WHERE key >= 10 LIMIT 50 WITH PROB > 0.4",
      "SELECT city, COUNT(*) AS n, MIN(score) FROM " + rel +
          " WHERE key < 80 GROUP BY city",
      "SELECT key, COUNT(*) AS n FROM " + rel +
          " GROUP BY key ORDER BY n DESC LIMIT 10",
  };
}

/// Runs the queries under every configuration and compares against the
/// unoptimized serial row baseline.
void SweepParity(TPDatabase* db, const std::string& rel) {
  SessionOptions baseline;
  baseline.optimize = false;
  baseline.vectorize = false;
  baseline.parallelism = 1;
  for (const std::string& query : ParityQueries(rel)) {
    SCOPED_TRACE(query);
    StatusOr<TPRelation> expected = Session(db, baseline).Query(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (const bool optimize : {false, true}) {
      for (const int vectorize : {-1, 0, 1}) {  // -1 = auto
        for (const int parallelism : {1, 4}) {
          SCOPED_TRACE("optimize=" + std::to_string(optimize) +
                       " vectorize=" + std::to_string(vectorize) +
                       " parallelism=" + std::to_string(parallelism));
          SessionOptions options;
          options.optimize = optimize;
          if (vectorize >= 0) options.vectorize = vectorize != 0;
          options.parallelism = parallelism;
          options.min_parallel_rows = 64;
          options.morsel_size = 256;
          StatusOr<TPRelation> got = Session(db, options).Query(query);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ExpectSameRelation(*expected, *got);
        }
      }
    }
  }
}

TEST(PhysicalPlanParityTest, WarmAcrossModesAndSeeds) {
  for (const uint64_t seed : {3u, 17u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TPDatabase db;
    StatusOr<TPRelation*> rel = db.CreateRelation(
        "m", Schema({{"key", DatumType::kInt64},
                     {"score", DatumType::kDouble},
                     {"city", DatumType::kString}}));
    ASSERT_TRUE(rel.ok());
    Random rng(seed);
    const std::vector<std::string> cities = {"ZAK", "GVA", "BRN", "LSN"};
    for (int64_t i = 0; i < 1500; ++i) {
      Row fact{Datum(i % 97),
               i % 7 == 0 ? Datum::Null()
                          : Datum(static_cast<double>(i % 50) / 2.0),
               i % 11 == 0
                   ? Datum::Null()
                   : Datum(cities[static_cast<size_t>(i) % cities.size()])};
      ASSERT_TRUE((*rel)
                      ->AppendBase(std::move(fact), Interval(i * 3, i * 3 + 4),
                                   0.2 + 0.6 * rng.NextDouble())
                      .ok());
    }
    SweepParity(&db, "m");
  }
}

TEST(PhysicalPlanParityTest, ColdSnapshotAcrossModes) {
  const std::string path = TempPath("physical_plan_parity_cold.tpdb");
  TPDatabase source;
  StatusOr<TPRelation*> rel = source.CreateRelation(
      "m", Schema({{"key", DatumType::kInt64},
                   {"score", DatumType::kDouble},
                   {"city", DatumType::kString}}));
  ASSERT_TRUE(rel.ok());
  Random rng(23);
  const std::vector<std::string> cities = {"ZAK", "GVA", "BRN"};
  for (int64_t i = 0; i < 1537; ++i) {  // 4 segments with a 1-row tail
    Row fact{Datum(i % 89),
             i % 5 == 0 ? Datum::Null()
                        : Datum(static_cast<double>(i % 60) / 3.0),
             Datum(cities[static_cast<size_t>(i) % cities.size()])};
    ASSERT_TRUE((*rel)
                    ->AppendBase(std::move(fact), Interval(i, i + 2),
                                 0.2 + 0.6 * rng.NextDouble())
                    .ok());
  }
  storage::SnapshotOptions snapshot_options;
  snapshot_options.segment_rows = 512;
  ASSERT_TRUE(source.SaveSnapshot(path, snapshot_options).ok());

  TPDatabase cold;
  ASSERT_TRUE(cold.LoadSnapshot(path).ok());
  ASSERT_NE((*cold.Get("m"))->cold_storage(), nullptr);
  SweepParity(&cold, "m");
  std::remove(path.c_str());
}

TEST(PhysicalPlanParityTest, JoinsAndSetOpsRouteThroughTheSameTree) {
  TPDatabase db;
  StatusOr<TPRelation*> r =
      db.CreateRelation("r", Schema({{"key", DatumType::kInt64},
                                     {"a", DatumType::kInt64}}));
  StatusOr<TPRelation*> s =
      db.CreateRelation("s", Schema({{"key", DatumType::kInt64},
                                     {"b", DatumType::kInt64}}));
  ASSERT_TRUE(r.ok() && s.ok());
  Random rng(5);
  for (int64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE((*r)->AppendBase({Datum(i % 23), Datum(i)},
                                 Interval(i, i + 4),
                                 0.3 + 0.5 * rng.NextDouble())
                    .ok());
    ASSERT_TRUE((*s)->AppendBase({Datum(i % 19), Datum(i)},
                                 Interval(i + 1, i + 5),
                                 0.3 + 0.5 * rng.NextDouble())
                    .ok());
  }
  SessionOptions baseline;
  baseline.optimize = false;
  baseline.vectorize = false;
  baseline.parallelism = 1;
  // (query, order_sensitive): parallel set operations emit in the
  // deterministic hash-partition order rather than the serial emit order
  // (exec/parallel.h), so those compare as multisets.
  for (const auto& [query, ordered] :
       std::vector<std::pair<std::string, bool>>{
           {"SELECT * FROM r LEFT JOIN s ON key WHERE key >= 3 LIMIT 50",
            true},
           {"SELECT * FROM r ANTI JOIN s ON key WITH PROB >= 0.4", true},
           {"SELECT * FROM r INNER JOIN s ON key USING TA", true},
           {"r UNION r", false},
           {"r EXCEPT r", false},
       }) {
    SCOPED_TRACE(query);
    StatusOr<TPRelation> expected = Session(&db, baseline).Query(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (const int parallelism : {1, 4}) {
      SessionOptions options;
      options.parallelism = parallelism;
      options.min_parallel_rows = 64;
      StatusOr<TPRelation> got = Session(&db, options).Query(query);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (ordered || parallelism == 1) {
        ExpectSameRelation(*expected, *got);
      } else {
        ASSERT_EQ(expected->size(), got->size());
        const auto describe = [](const TPRelation& rel, size_t i) {
          std::string out;
          for (const Datum& d : rel.tuple(i).fact) out += d.ToString() + "|";
          out += std::to_string(rel.tuple(i).interval.start) + "," +
                 std::to_string(rel.tuple(i).interval.end) + " p=" +
                 std::to_string(rel.Probability(i));
          return out;
        };
        std::vector<std::string> a, b;
        for (size_t i = 0; i < expected->size(); ++i) {
          a.push_back(describe(*expected, i));
          b.push_back(describe(*got, i));
        }
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b);
      }
    }
  }
}

}  // namespace
}  // namespace tpdb
