#include "api/parser.h"

#include <gtest/gtest.h>

#include "api/logical_plan.h"

namespace tpdb {
namespace {

// -- Malformed input: every case must return a Status, never crash --------

TEST(ParserErrorsTest, RejectsMalformedQueries) {
  const char* kBad[] = {
      "",
      "   ",
      "SELECT",
      "SELECT *",
      "SELECT * FROM",
      "SELECT FROM wants",
      "SELECT * FROM wants JOIN hotels",          // missing ON
      "SELECT * FROM wants JOIN hotels ON",       // dangling ON
      "SELECT * FROM wants JOIN hotels ON ,",     // empty condition list
      "SELECT * FROM wants SIDEWAYS JOIN hotels ON Loc",  // bad join kind
      "SELECT * FROM wants WHERE",
      "SELECT * FROM wants WHERE Loc",            // no comparison
      "SELECT * FROM wants WHERE Loc = ",
      "SELECT * FROM wants WHERE (Loc = 'ZAK'",   // unbalanced paren
      "SELECT * FROM wants WHERE Loc = 'ZAK",     // unterminated string
      "SELECT * FROM wants GROUP Loc",            // GROUP without BY
      "SELECT * FROM wants ORDER Name",           // ORDER without BY
      "SELECT * FROM wants ORDER BY",
      "SELECT * FROM wants LIMIT",
      "SELECT * FROM wants LIMIT abc",
      "SELECT * FROM wants LIMIT 2.5",
      "SELECT * FROM wants LIMIT 999999999999999999999",  // overflow
      "SELECT * FROM wants WITH PROB >= 0.7.9",           // malformed number
      "SELECT * FROM wants WITH PROB 0.5",        // missing >= / >
      "SELECT * FROM wants WITH PROB >=",
      "SELECT SUM(*) FROM wants",                 // * only valid for COUNT
      "SELECT COUNT( FROM wants",
      "SELECT * FROM wants UNION",
      "SELECT * FROM wants EXTRA tokens here",
      "SELECT * FROM wants @ hotels",             // bad character
      // Legacy forms.
      "wants",
      "wants FROB hotels",
      "wants SIDEWAYS JOIN hotels ON Loc",
      "wants LEFT JOIN hotels",
      "wants LEFT JOIN hotels ON",
      "wants LEFT JOIN hotels ON Loc EXTRA",
      "wants LEFT JOIN hotels ON Loc USING",      // USING without TA
  };
  for (const char* text : kBad) {
    StatusOr<SelectStatement> stmt = ParseQuery(text);
    EXPECT_FALSE(stmt.ok()) << "should not parse: '" << text << "'";
  }
}

TEST(ParserErrorsTest, RejectsMalformedPredicates) {
  const char* kBad[] = {"", "AND", "Loc =", "= 3", "Loc = 'ZAK' trailing",
                        "(a = 1", "a = 1 AND", "NOT"};
  for (const char* text : kBad) {
    EXPECT_FALSE(ParsePredicate(text).ok())
        << "should not parse predicate: '" << text << "'";
  }
}

// -- Structure of accepted queries ----------------------------------------

TEST(ParserTest, ParsesFullSelect) {
  StatusOr<SelectStatement> stmt = ParseQuery(
      "SELECT Name, Hotel AS H FROM wants "
      "LEFT OUTER JOIN hotels ON Loc = Loc USING TA "
      "WHERE Loc = 'ZAK' AND _ts >= 4 "
      "ORDER BY Name DESC, Hotel "
      "LIMIT 5 OFFSET 2 WITH PROB > 0.25");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->core.from, "wants");
  ASSERT_EQ(stmt->core.items.size(), 2u);
  EXPECT_EQ(stmt->core.items[0].column, "Name");
  EXPECT_EQ(stmt->core.items[1].column, "Hotel");
  EXPECT_EQ(stmt->core.items[1].alias, "H");
  ASSERT_EQ(stmt->core.joins.size(), 1u);
  EXPECT_EQ(stmt->core.joins[0].kind, TPJoinKind::kLeftOuter);
  EXPECT_EQ(stmt->core.joins[0].relation, "hotels");
  EXPECT_TRUE(stmt->core.joins[0].using_ta);
  ASSERT_EQ(stmt->core.joins[0].on.size(), 1u);
  EXPECT_EQ(stmt->core.joins[0].on[0].first, "Loc");
  ASSERT_NE(stmt->core.where, nullptr);
  EXPECT_EQ(stmt->core.where->kind, AstExprKind::kAnd);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 5);
  EXPECT_EQ(stmt->offset, 2);
  ASSERT_TRUE(stmt->min_prob.has_value());
  EXPECT_DOUBLE_EQ(*stmt->min_prob, 0.25);
  EXPECT_TRUE(stmt->min_prob_strict);
}

TEST(ParserTest, ParsesAggregatesAndGroupBy) {
  StatusOr<SelectStatement> stmt = ParseQuery(
      "SELECT Station, COUNT(*) AS n, SUM(Temp), MIN(Temp), MAX(Temp) "
      "FROM readings GROUP BY Station");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->core.items.size(), 5u);
  EXPECT_FALSE(stmt->core.items[0].is_aggregate);
  EXPECT_TRUE(stmt->core.items[1].is_aggregate);
  EXPECT_EQ(stmt->core.items[1].fn, AggFn::kCount);
  EXPECT_EQ(stmt->core.items[1].column, "*");
  EXPECT_EQ(stmt->core.items[1].alias, "n");
  EXPECT_EQ(stmt->core.items[2].fn, AggFn::kSum);
  EXPECT_EQ(stmt->core.items[3].fn, AggFn::kMin);
  EXPECT_EQ(stmt->core.items[4].fn, AggFn::kMax);
  EXPECT_EQ(stmt->core.group_by, (std::vector<std::string>{"Station"}));
}

TEST(ParserTest, ParsesSetOperations) {
  StatusOr<SelectStatement> stmt = ParseQuery(
      "SELECT * FROM x UNION SELECT * FROM y WHERE v > 3 EXCEPT z");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->set_ops.size(), 2u);
  EXPECT_EQ(stmt->set_ops[0].first, SetOpKind::kUnion);
  EXPECT_EQ(stmt->set_ops[0].second.from, "y");
  ASSERT_NE(stmt->set_ops[0].second.where, nullptr);
  EXPECT_EQ(stmt->set_ops[1].first, SetOpKind::kExcept);
  EXPECT_EQ(stmt->set_ops[1].second.from, "z");
}

TEST(ParserTest, ParsesLegacyForms) {
  StatusOr<SelectStatement> join =
      ParseQuery("r ANTI JOIN s ON key=id, Loc USING TA");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_EQ(join->core.from, "r");
  ASSERT_EQ(join->core.joins.size(), 1u);
  EXPECT_EQ(join->core.joins[0].kind, TPJoinKind::kAnti);
  ASSERT_EQ(join->core.joins[0].on.size(), 2u);
  EXPECT_EQ(join->core.joins[0].on[0],
            (std::pair<std::string, std::string>{"key", "id"}));
  EXPECT_EQ(join->core.joins[0].on[1],
            (std::pair<std::string, std::string>{"Loc", "Loc"}));
  EXPECT_TRUE(join->core.joins[0].using_ta);

  StatusOr<SelectStatement> uni = ParseQuery("x INTERSECT y");
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->core.from, "x");
  ASSERT_EQ(uni->set_ops.size(), 1u);
  EXPECT_EQ(uni->set_ops[0].first, SetOpKind::kIntersect);
}

TEST(ParserTest, PredicateStructure) {
  StatusOr<AstExprPtr> pred = ParsePredicate(
      "(Loc = 'ZAK' OR Loc <> 'WEN') AND NOT Temp <= -0.5 AND Hotel IS "
      "NULL");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_EQ((*pred)->kind, AstExprKind::kAnd);
  EXPECT_EQ((*pred)->ToString(),
            "((((Loc = 'ZAK') OR (Loc <> 'WEN')) AND (NOT (Temp <= -0.5))) "
            "AND (Hotel IS NULL))");
}

// -- QueryBuilder ≡ parsed text: identical logical plans ------------------

void ExpectSamePlan(const std::string& text, const QueryBuilder& builder) {
  StatusOr<SelectStatement> stmt = ParseQuery(text);
  ASSERT_TRUE(stmt.ok()) << text << ": " << stmt.status().ToString();
  StatusOr<LogicalPlan> from_text = BuildLogicalPlan(*stmt);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  StatusOr<LogicalPlan> from_builder = builder.Build();
  ASSERT_TRUE(from_builder.ok()) << from_builder.status().ToString();
  EXPECT_EQ(from_text->ToString(), from_builder->ToString()) << text;
}

TEST(RoundTripTest, SelectStar) {
  ExpectSamePlan("SELECT * FROM wants", QueryBuilder("wants"));
}

TEST(RoundTripTest, FullQuery) {
  ExpectSamePlan(
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY Name DESC LIMIT 5 OFFSET 1 "
      "WITH PROB >= 0.25",
      QueryBuilder("wants")
          .Join(TPJoinKind::kLeftOuter, "hotels", "Loc")
          .Where("Loc = 'ZAK'")
          .Select({"Name", "Hotel"})
          .OrderBy("Name", /*ascending=*/false)
          .Limit(5, 1)
          .WithMinProb(0.25));
}

TEST(RoundTripTest, JoinWithExplicitPairsAndTa) {
  ExpectSamePlan(
      "SELECT * FROM r ANTI JOIN s ON key=id USING TA",
      QueryBuilder("r").Join(TPJoinKind::kAnti, "s", {{"key", "id"}},
                             /*using_ta=*/true));
}

TEST(RoundTripTest, LegacyEqualsSelectForm) {
  // The legacy one-liner and the explicit SELECT produce the same plan.
  StatusOr<SelectStatement> legacy =
      ParseQuery("wants LEFT JOIN hotels ON Loc");
  StatusOr<SelectStatement> select =
      ParseQuery("SELECT * FROM wants LEFT JOIN hotels ON Loc");
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(BuildLogicalPlan(*legacy)->ToString(),
            BuildLogicalPlan(*select)->ToString());
}

TEST(RoundTripTest, Aggregates) {
  ExpectSamePlan(
      "SELECT Station, COUNT(*) AS n, SUM(Temp) FROM readings "
      "GROUP BY Station",
      QueryBuilder("readings")
          .Select({"Station"})
          .Aggregate(AggFn::kCount, "*", "n")
          .Aggregate(AggFn::kSum, "Temp")
          .GroupBy({"Station"}));
}

TEST(RoundTripTest, SetOps) {
  ExpectSamePlan("x UNION y", QueryBuilder("x").Union(QueryBuilder("y")));
  ExpectSamePlan(
      "SELECT * FROM x EXCEPT SELECT * FROM y WHERE v > 3",
      QueryBuilder("x").Except(QueryBuilder("y").Where("v > 3")));
}

TEST(ParserTest, ParsesProbApprox) {
  StatusOr<SelectStatement> stmt = ParseQuery(
      "SELECT * FROM wants WITH PROB APPROX(0.05, 0.01) >= 0.5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_DOUBLE_EQ(stmt->approx_eps, 0.05);
  EXPECT_DOUBLE_EQ(stmt->approx_delta, 0.01);
  ASSERT_TRUE(stmt->min_prob.has_value());
  EXPECT_DOUBLE_EQ(*stmt->min_prob, 0.5);
  EXPECT_FALSE(stmt->min_prob_strict);

  // Strict comparator composes with APPROX; plain PROB leaves eps at 0.
  StatusOr<SelectStatement> strict = ParseQuery(
      "SELECT * FROM wants WITH PROB APPROX(0.1, 0.2) > 0.25");
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_TRUE(strict->min_prob_strict);
  StatusOr<SelectStatement> plain =
      ParseQuery("SELECT * FROM wants WITH PROB >= 0.5");
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(plain->approx_eps, 0.0);
}

TEST(ParserErrorsTest, RejectsMalformedApprox) {
  const char* kBad[] = {
      "SELECT * FROM wants WITH PROB APPROX >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX( >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(0.05 >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(0.05,) >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(0.05, 0.01 >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(0.05, 0.01)",  // no threshold
      "SELECT * FROM wants WITH PROB APPROX(0, 0.01) >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(1.5, 0.01) >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(0.05, 0) >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(0.05, 1) >= 0.5",
      "SELECT * FROM wants WITH PROB APPROX(-0.05, 0.01) >= 0.5",
  };
  for (const char* text : kBad) {
    StatusOr<SelectStatement> stmt = ParseQuery(text);
    EXPECT_FALSE(stmt.ok()) << "should not parse: '" << text << "'";
  }
}

TEST(RoundTripTest, BuilderDefersErrors) {
  // An unparsable Where string surfaces at Build(), not as a crash.
  StatusOr<LogicalPlan> plan =
      QueryBuilder("wants").Where("Loc = ").Build();
  EXPECT_FALSE(plan.ok());
  // A set-op operand with modifiers is rejected.
  StatusOr<LogicalPlan> bad_setop =
      QueryBuilder("x").Union(QueryBuilder("y").Limit(3)).Build();
  EXPECT_FALSE(bad_setop.ok());
  // GROUP BY without aggregates is rejected at plan building.
  EXPECT_FALSE(QueryBuilder("x").GroupBy({"a"}).Build().ok());
}

}  // namespace
}  // namespace tpdb
