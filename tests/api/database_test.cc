#include "api/database.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

Schema LocSchema(const std::string& first) {
  Schema s;
  s.AddColumn({first, DatumType::kString});
  s.AddColumn({"Loc", DatumType::kString});
  return s;
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<TPRelation*> a = db_.CreateRelation("wants", LocSchema("Name"));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE((*a)->AppendBase({Datum("Ann"), Datum("ZAK")},
                                 Interval(2, 8), 0.7, "a1")
                    .ok());
    ASSERT_TRUE((*a)->AppendBase({Datum("Jim"), Datum("WEN")},
                                 Interval(7, 10), 0.8, "a2")
                    .ok());
    StatusOr<TPRelation*> b =
        db_.CreateRelation("hotels", LocSchema("Hotel"));
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*b)->AppendBase({Datum("hotel1"), Datum("ZAK")},
                                 Interval(4, 6), 0.7, "b3")
                    .ok());
    ASSERT_TRUE((*b)->AppendBase({Datum("hotel2"), Datum("ZAK")},
                                 Interval(5, 8), 0.6, "b2")
                    .ok());
  }

  TPDatabase db_;
};

TEST_F(DatabaseTest, CatalogBasics) {
  EXPECT_EQ(db_.RelationNames(),
            (std::vector<std::string>{"hotels", "wants"}));
  EXPECT_TRUE(db_.Get("wants").ok());
  EXPECT_FALSE(db_.Get("nope").ok());
  EXPECT_FALSE(db_.CreateRelation("wants", LocSchema("X")).ok());
  EXPECT_TRUE(db_.Drop("hotels").ok());
  EXPECT_FALSE(db_.Drop("hotels").ok());
  EXPECT_EQ(db_.RelationNames(), (std::vector<std::string>{"wants"}));
}

TEST_F(DatabaseTest, RegisterRejectsForeignManager) {
  LineageManager other;
  TPRelation foreign("foreign", LocSchema("X"), &other);
  EXPECT_FALSE(db_.Register(std::move(foreign)).ok());
}

TEST_F(DatabaseTest, RegisterTakesOwnershipOfOwnResult) {
  StatusOr<TPRelation> q =
      db_.Join(TPJoinKind::kLeftOuter, "wants", "hotels",
               JoinCondition::Equals("Loc"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const size_t rows = q->size();
  ASSERT_TRUE(db_.Register(std::move(*q)).ok());
  StatusOr<TPRelation*> stored = db_.Get("wants_left-outer_hotels");
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ((*stored)->size(), rows);
  // The hyphenated default name is addressable from query text.
  StatusOr<TPRelation> queried =
      db_.Query("SELECT * FROM wants_left-outer_hotels");
  ASSERT_TRUE(queried.ok()) << queried.status().ToString();
  EXPECT_EQ(queried->size(), rows);
  // Registering under a taken name is a descriptive error.
  StatusOr<TPRelation> again =
      db_.Join(TPJoinKind::kLeftOuter, "wants", "hotels",
               JoinCondition::Equals("Loc"));
  ASSERT_TRUE(again.ok());
  Status dup = db_.Register(std::move(*again));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, JoinByName) {
  StatusOr<TPRelation> q =
      db_.Join(TPJoinKind::kLeftOuter, "wants", "hotels",
               JoinCondition::Equals("Loc"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->size(), 7u);  // Fig. 1b
  EXPECT_FALSE(db_.Join(TPJoinKind::kInner, "wants", "nope",
                        JoinCondition::Equals("Loc"))
                   .ok());
}

TEST_F(DatabaseTest, JoinCanRegisterResult) {
  StatusOr<TPRelation> q =
      db_.Join(TPJoinKind::kAnti, "wants", "hotels",
               JoinCondition::Equals("Loc"), {}, "no_room");
  ASSERT_TRUE(q.ok());
  StatusOr<TPRelation*> stored = db_.Get("no_room");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ((*stored)->size(), q->size());
}

TEST_F(DatabaseTest, QueryJoinKinds) {
  StatusOr<TPRelation> left = db_.Query("wants LEFT JOIN hotels ON Loc");
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  EXPECT_EQ(left->size(), 7u);

  StatusOr<TPRelation> anti = db_.Query("wants ANTI JOIN hotels ON Loc");
  ASSERT_TRUE(anti.ok());
  EXPECT_EQ(anti->size(), 5u);

  StatusOr<TPRelation> semi = db_.Query("wants SEMI JOIN hotels ON Loc");
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi->size(), 3u);

  StatusOr<TPRelation> inner = db_.Query("wants JOIN hotels ON Loc");
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->size(), 2u);
}

TEST_F(DatabaseTest, QueryWithExplicitColumnPair) {
  StatusOr<TPRelation> q = db_.Query("wants INNER JOIN hotels ON Loc=Loc");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->size(), 2u);
}

TEST_F(DatabaseTest, QueryUsingTaMatchesDefault) {
  StatusOr<TPRelation> nj = db_.Query("wants LEFT JOIN hotels ON Loc");
  StatusOr<TPRelation> ta = db_.Query("wants LEFT JOIN hotels ON Loc USING TA");
  ASSERT_TRUE(nj.ok());
  ASSERT_TRUE(ta.ok());
  EXPECT_EQ(nj->size(), ta->size());
}

TEST_F(DatabaseTest, QuerySetOperations) {
  // Build two union-compatible relations.
  StatusOr<TPRelation*> x = db_.CreateRelation("x", LocSchema("Name"));
  StatusOr<TPRelation*> y = db_.CreateRelation("y", LocSchema("Name"));
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  ASSERT_TRUE((*x)->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(0, 5),
                               0.5)
                  .ok());
  ASSERT_TRUE((*y)->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(3, 9),
                               0.5)
                  .ok());
  StatusOr<TPRelation> uni = db_.Query("x UNION y");
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  EXPECT_EQ(uni->size(), 3u);
  StatusOr<TPRelation> inter = db_.Query("x INTERSECT y");
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->size(), 1u);
  StatusOr<TPRelation> except = db_.Query("x EXCEPT y");
  ASSERT_TRUE(except.ok());
  EXPECT_EQ(except->size(), 2u);
}

TEST_F(DatabaseTest, QuerySelectFormThroughLayeredStack) {
  // The acceptance query: SELECT + WHERE + join + ORDER BY + LIMIT +
  // WITH PROB, parsed into a logical plan and run through the planner.
  StatusOr<TPRelation> q = db_.Query(
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY _ts LIMIT 10 WITH PROB >= 0.05");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_GT(q->size(), 0u);
  EXPECT_EQ(q->fact_schema().num_columns(), 2u);

  // The same text renders its lowered operator tree via Explain.
  StatusOr<std::string> explain = db_.Explain(
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY _ts LIMIT 10 WITH PROB >= 0.05");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("Join[left-outer, on Loc=Loc]"),
            std::string::npos);
  EXPECT_NE(explain->find("rows="), std::string::npos);
}

TEST_F(DatabaseTest, QueryErrors) {
  EXPECT_FALSE(db_.Query("").ok());
  EXPECT_FALSE(db_.Query("wants").ok());
  EXPECT_FALSE(db_.Query("wants FROB hotels").ok());
  EXPECT_FALSE(db_.Query("wants SIDEWAYS JOIN hotels ON Loc").ok());
  EXPECT_FALSE(db_.Query("wants LEFT JOIN hotels").ok());
  EXPECT_FALSE(db_.Query("wants LEFT JOIN hotels ON").ok());
  EXPECT_FALSE(db_.Query("wants LEFT JOIN hotels ON Loc EXTRA").ok());
  EXPECT_FALSE(db_.Query("wants LEFT JOIN missing ON Loc").ok());
  EXPECT_FALSE(db_.Query("wants LEFT JOIN hotels ON NoSuchColumn").ok());
}

}  // namespace
}  // namespace tpdb
