// End-to-end tests of the layered query API: text → parser → logical plan
// → planner → engine/tp execution, plus Explain and QueryBuilder entry
// points, over the paper's Fig. 1 booking scenario and a small numeric
// relation for aggregates.
#include <gtest/gtest.h>

#include "api/database.h"

namespace tpdb {
namespace {

Schema LocSchema(const std::string& first) {
  Schema s;
  s.AddColumn({first, DatumType::kString});
  s.AddColumn({"Loc", DatumType::kString});
  return s;
}

class QueryApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<TPRelation*> a = db_.CreateRelation("wants", LocSchema("Name"));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE((*a)->AppendBase({Datum("Ann"), Datum("ZAK")},
                                 Interval(2, 8), 0.7, "a1")
                    .ok());
    ASSERT_TRUE((*a)->AppendBase({Datum("Jim"), Datum("WEN")},
                                 Interval(7, 10), 0.8, "a2")
                    .ok());
    StatusOr<TPRelation*> b =
        db_.CreateRelation("hotels", LocSchema("Hotel"));
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*b)->AppendBase({Datum("hotel1"), Datum("ZAK")},
                                 Interval(4, 6), 0.7, "b3")
                    .ok());
    ASSERT_TRUE((*b)->AppendBase({Datum("hotel2"), Datum("ZAK")},
                                 Interval(5, 8), 0.6, "b2")
                    .ok());

    Schema readings;
    readings.AddColumn({"Station", DatumType::kString});
    readings.AddColumn({"Temp", DatumType::kInt64});
    StatusOr<TPRelation*> r = db_.CreateRelation("readings", readings);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->AppendBase({Datum("A"), Datum(int64_t{1})},
                                 Interval(0, 2), 0.5, "r1")
                    .ok());
    ASSERT_TRUE((*r)->AppendBase({Datum("A"), Datum(int64_t{2})},
                                 Interval(3, 6), 0.5, "r2")
                    .ok());
    ASSERT_TRUE((*r)->AppendBase({Datum("B"), Datum(int64_t{5})},
                                 Interval(1, 4), 0.9, "r3")
                    .ok());
  }

  TPDatabase db_;
};

TEST_F(QueryApiTest, SelectStar) {
  StatusOr<TPRelation> q = db_.Query("SELECT * FROM wants");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->fact_schema().num_columns(), 2u);
}

TEST_F(QueryApiTest, WhereOnFactAndTemporalColumns) {
  StatusOr<TPRelation> zak =
      db_.Query("SELECT * FROM wants WHERE Loc = 'ZAK'");
  ASSERT_TRUE(zak.ok()) << zak.status().ToString();
  ASSERT_EQ(zak->size(), 1u);
  EXPECT_EQ(zak->tuple(0).fact[0].AsString(), "Ann");

  // _ts/_te are addressable in predicates.
  StatusOr<TPRelation> late =
      db_.Query("SELECT * FROM wants WHERE _ts >= 7");
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  ASSERT_EQ(late->size(), 1u);
  EXPECT_EQ(late->tuple(0).fact[0].AsString(), "Jim");
}

TEST_F(QueryApiTest, ProjectionKeepsIntervalAndLineage) {
  StatusOr<TPRelation> q =
      db_.Query("SELECT Name AS Who FROM wants WHERE Loc = 'ZAK'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 1u);
  EXPECT_EQ(q->fact_schema().num_columns(), 1u);
  EXPECT_EQ(q->fact_schema().column(0).name, "Who");
  EXPECT_EQ(q->tuple(0).interval, Interval(2, 8));
  EXPECT_DOUBLE_EQ(q->Probability(0), 0.7);
}

TEST_F(QueryApiTest, OrderByAndLimit) {
  StatusOr<TPRelation> q =
      db_.Query("SELECT * FROM wants ORDER BY Name DESC");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 2u);
  EXPECT_EQ(q->tuple(0).fact[0].AsString(), "Jim");

  StatusOr<TPRelation> limited =
      db_.Query("SELECT * FROM wants ORDER BY Name LIMIT 1 OFFSET 1");
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->size(), 1u);
  EXPECT_EQ(limited->tuple(0).fact[0].AsString(), "Jim");
}

TEST_F(QueryApiTest, ProbThreshold) {
  StatusOr<TPRelation> q =
      db_.Query("SELECT * FROM wants WITH PROB >= 0.75");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 1u);
  EXPECT_EQ(q->tuple(0).fact[0].AsString(), "Jim");

  // >= keeps the boundary, > drops it.
  StatusOr<TPRelation> ge = db_.Query("SELECT * FROM wants WITH PROB >= 0.7");
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->size(), 2u);
  StatusOr<TPRelation> gt = db_.Query("SELECT * FROM wants WITH PROB > 0.7");
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->size(), 1u);
}

TEST_F(QueryApiTest, AcceptanceQuery) {
  // WHERE + join + projection + ORDER BY + LIMIT + WITH PROB in one query.
  const char* kQuery =
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY _ts LIMIT 4 WITH PROB >= 0.05";
  StatusOr<TPRelation> q = db_.Query(kQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Cross-check against the legacy surface plus manual postprocessing.
  StatusOr<TPRelation> join = db_.Query("wants LEFT JOIN hotels ON Loc");
  ASSERT_TRUE(join.ok());
  size_t expected = 0;
  for (size_t i = 0; i < join->size(); ++i) {
    if (join->tuple(i).fact[1].AsString() == "ZAK" &&
        join->Probability(i) >= 0.05)
      ++expected;
  }
  EXPECT_EQ(q->size(), std::min<size_t>(expected, 4));
  EXPECT_EQ(q->fact_schema().num_columns(), 2u);
  EXPECT_EQ(q->fact_schema().column(0).name, "Name");
  EXPECT_EQ(q->fact_schema().column(1).name, "Hotel");
  // ORDER BY _ts: intervals are emitted by ascending start.
  for (size_t i = 1; i < q->size(); ++i)
    EXPECT_LE(q->tuple(i - 1).interval.start, q->tuple(i).interval.start);
}

TEST_F(QueryApiTest, ExplainRendersLoweredTree) {
  StatusOr<std::string> text = db_.Explain(
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY Name LIMIT 3 WITH PROB >= 0.1");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Logical plan:"), std::string::npos);
  EXPECT_NE(text->find("Scan(wants)"), std::string::npos);
  EXPECT_NE(text->find("Scan(hotels)"), std::string::npos);
  EXPECT_NE(text->find("Join[left-outer, on Loc=Loc]"), std::string::npos);
  EXPECT_NE(text->find("Filter[(Loc = 'ZAK')]"), std::string::npos);
  EXPECT_NE(text->find("Sort[Name ASC]"), std::string::npos);
  EXPECT_NE(text->find("Limit[3]"), std::string::npos);
  EXPECT_NE(text->find("ProbThreshold[>= 0.1]"), std::string::npos);
  // The lowered pipeline reports per-node row counts (engine/explain).
  EXPECT_NE(text->find("Lowered pipeline"), std::string::npos);
  EXPECT_NE(text->find("rows="), std::string::npos);
}

TEST_F(QueryApiTest, AggregatesWithLineageDisjunction) {
  StatusOr<TPRelation> q = db_.Query(
      "SELECT Station, COUNT(*) AS n, SUM(Temp) AS total, MIN(Temp), "
      "MAX(Temp) FROM readings GROUP BY Station");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 2u);
  ASSERT_EQ(q->fact_schema().num_columns(), 5u);
  EXPECT_EQ(q->fact_schema().column(1).name, "n");
  EXPECT_EQ(q->fact_schema().column(2).name, "total");
  EXPECT_EQ(q->fact_schema().column(3).name, "min_Temp");

  // Groups are emitted in ascending key order: A then B.
  const TPTuple& a = q->tuple(0);
  EXPECT_EQ(a.fact[0].AsString(), "A");
  EXPECT_EQ(a.fact[1].AsInt64(), 2);
  EXPECT_EQ(a.fact[2].AsInt64(), 3);
  EXPECT_EQ(a.fact[3].AsInt64(), 1);
  EXPECT_EQ(a.fact[4].AsInt64(), 2);
  // The group's interval spans its tuples; its lineage is their
  // disjunction: Pr[r1 ∨ r2] = 1 - 0.5 * 0.5.
  EXPECT_EQ(a.interval, Interval(0, 6));
  EXPECT_DOUBLE_EQ(q->Probability(0), 0.75);

  const TPTuple& b = q->tuple(1);
  EXPECT_EQ(b.fact[0].AsString(), "B");
  EXPECT_EQ(b.fact[1].AsInt64(), 1);
  EXPECT_DOUBLE_EQ(q->Probability(1), 0.9);

  // Global aggregate (no GROUP BY).
  StatusOr<TPRelation> global =
      db_.Query("SELECT COUNT(*) AS n FROM readings");
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  ASSERT_EQ(global->size(), 1u);
  EXPECT_EQ(global->tuple(0).fact[0].AsInt64(), 3);

  // Select-list aliases rename group columns too.
  StatusOr<TPRelation> aliased = db_.Query(
      "SELECT Station AS s, COUNT(*) AS n FROM readings GROUP BY Station");
  ASSERT_TRUE(aliased.ok()) << aliased.status().ToString();
  EXPECT_EQ(aliased->fact_schema().column(0).name, "s");

  // An aggregate over an empty input is empty (a TP tuple needs a
  // validity interval, so there is no SQL-style COUNT=0 row).
  StatusOr<TPRelation> empty =
      db_.Query("SELECT COUNT(*) FROM readings WHERE Temp > 100");
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->size(), 0u);
}

TEST_F(QueryApiTest, SetOperationsInSelectForm) {
  StatusOr<TPRelation*> x = db_.CreateRelation("x", LocSchema("Name"));
  StatusOr<TPRelation*> y = db_.CreateRelation("y", LocSchema("Name"));
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  ASSERT_TRUE((*x)->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(0, 5),
                               0.5)
                  .ok());
  ASSERT_TRUE((*y)->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(3, 9),
                               0.5)
                  .ok());
  StatusOr<TPRelation> legacy = db_.Query("x UNION y");
  StatusOr<TPRelation> select =
      db_.Query("SELECT * FROM x UNION SELECT * FROM y");
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ(select->size(), legacy->size());
}

TEST_F(QueryApiTest, QueryBuilderMatchesText) {
  StatusOr<TPRelation> from_text = db_.Query(
      "SELECT Name FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY Name LIMIT 10");
  StatusOr<TPRelation> from_builder =
      db_.Execute(QueryBuilder("wants")
                      .Join(TPJoinKind::kLeftOuter, "hotels", "Loc")
                      .Where("Loc = 'ZAK'")
                      .Select({"Name"})
                      .OrderBy("Name")
                      .Limit(10));
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_builder.ok()) << from_builder.status().ToString();
  ASSERT_EQ(from_builder->size(), from_text->size());
  for (size_t i = 0; i < from_text->size(); ++i) {
    EXPECT_EQ(from_builder->tuple(i).fact, from_text->tuple(i).fact);
    EXPECT_EQ(from_builder->tuple(i).interval, from_text->tuple(i).interval);
  }
}

TEST_F(QueryApiTest, BuilderWithAstPredicate) {
  StatusOr<TPRelation> q = db_.Execute(
      QueryBuilder("wants").Where(AstCompare(
          CompareOp::kEq, AstColumn("Loc"), AstLiteral(Datum("WEN")))));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 1u);
  EXPECT_EQ(q->tuple(0).fact[0].AsString(), "Jim");
}

TEST_F(QueryApiTest, NumericPromotionInPredicates) {
  // Temp is int64; a double literal must still compare numerically.
  StatusOr<TPRelation> q =
      db_.Query("SELECT * FROM readings WHERE Temp > 1.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->size(), 2u);  // Temp 2 and 5
}

TEST_F(QueryApiTest, ExecutionErrors) {
  // Unknown relation / column errors surface as Status, not crashes.
  EXPECT_FALSE(db_.Query("SELECT * FROM nope").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM wants WHERE Bogus = 1").ok());
  EXPECT_FALSE(db_.Query("SELECT Bogus FROM wants").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM wants ORDER BY Bogus").ok());
  EXPECT_FALSE(
      db_.Query("SELECT * FROM wants JOIN hotels ON NoSuchColumn").ok());
  // Reserved columns cannot be projected away or duplicated.
  EXPECT_FALSE(db_.Query("SELECT _ts FROM wants").ok());
  // Plain selected columns must be grouped when aggregating.
  EXPECT_FALSE(
      db_.Query("SELECT Temp, COUNT(*) FROM readings GROUP BY Station")
          .ok());
  // SUM over a string column is rejected.
  EXPECT_FALSE(db_.Query("SELECT SUM(Station) FROM readings").ok());
}

TEST_F(QueryApiTest, PlanReturnsLogicalTreeWithoutExecuting) {
  StatusOr<LogicalPlan> plan =
      db_.Plan("SELECT * FROM nowhere WHERE x = 1");
  // Planning succeeds (names bind at execution time) ...
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->ToString().find("Scan(nowhere)"), std::string::npos);
  // ... and execution reports the unknown relation.
  EXPECT_FALSE(db_.Execute(*plan).ok());
}

}  // namespace
}  // namespace tpdb
