// The pruned `ORDER BY _prob DESC LIMIT k` path: element-wise parity with
// the unoptimized ProbSort baseline (values, intervals, probabilities, and
// order — ties included) on warm and cold inputs, correctness when the
// zone maps go stale after a probability update, routing of the shapes the
// pruned path must NOT take, and the `WITH PROB APPROX` contract
// end-to-end.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/random.h"
#include "exec/session.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

/// Element-wise equality: facts, intervals, exact probabilities, order.
void ExpectSameRelation(const TPRelation& a, const TPRelation& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(a.fact_schema() == b.fact_schema())
      << a.fact_schema().ToString() << " vs " << b.fact_schema().ToString();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(CompareRows(a.tuple(i).fact, b.tuple(i).fact), 0)
        << "fact mismatch at tuple " << i;
    EXPECT_EQ(a.tuple(i).interval, b.tuple(i).interval)
        << "interval mismatch at tuple " << i;
    EXPECT_EQ(a.Probability(i), b.Probability(i))
        << "probability mismatch at tuple " << i;
  }
}

SessionOptions Baseline() {
  SessionOptions options;
  options.optimize = false;  // top-k fusion never fires: generic ProbSort
  options.vectorize = false;
  options.parallelism = 1;
  return options;
}

/// Optimized-vs-baseline parity for one query.
void ExpectParity(TPDatabase* db, const std::string& query) {
  SCOPED_TRACE(query);
  StatusOr<TPRelation> expected = Session(db, Baseline()).Query(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  StatusOr<TPRelation> got = Session(db, {}).Query(query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameRelation(*expected, *got);
}

/// Warm relation `e`: continuous probabilities by default, or quantized to
/// 16 levels (`ties`) so the stable tie-break carries the ordering.
void FillWarm(TPDatabase* db, int64_t rows, bool ties) {
  StatusOr<TPRelation*> rel = db->CreateRelation(
      "e", Schema({{"key", DatumType::kInt64}, {"val", DatumType::kDouble}}));
  ASSERT_TRUE(rel.ok());
  Random rng(29);
  for (int64_t i = 0; i < rows; ++i) {
    const double prob = ties ? 0.1 + 0.05 * static_cast<double>(i % 16)
                             : 0.2 + 0.6 * rng.NextDouble();
    ASSERT_TRUE((*rel)
                    ->AppendBase({Datum(i % 53),
                                  Datum(static_cast<double>(i % 40) / 4.0)},
                                 Interval(i, i + 2), prob)
                    .ok());
  }
}

TEST(TopKProbTest, WarmTopKMatchesFullSort) {
  TPDatabase db;
  FillWarm(&db, 600, /*ties=*/false);
  for (const int k : {1, 7, 50, 1000}) {  // 1000 > table size
    ExpectParity(&db, "SELECT * FROM e ORDER BY _prob DESC LIMIT " +
                          std::to_string(k));
  }
  ExpectParity(&db,
               "SELECT key FROM e WHERE key >= 20 ORDER BY _prob DESC "
               "LIMIT 9");
}

TEST(TopKProbTest, WarmTiesResolveInStableOrder) {
  TPDatabase db;
  FillWarm(&db, 400, /*ties=*/true);
  // 16 probability levels over 400 rows: every kept prefix cuts through a
  // tie group, so parity here is parity of the stable tie-break.
  for (const int k : {3, 25, 99}) {
    ExpectParity(&db, "SELECT * FROM e ORDER BY _prob DESC LIMIT " +
                          std::to_string(k));
  }
}

class TopKProbColdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("topk_prob_cold.tpdb");
    TPDatabase source;
    StatusOr<TPRelation*> rel = source.CreateRelation(
        "events",
        Schema({{"key", DatumType::kInt64}, {"val", DatumType::kDouble}}));
    ASSERT_TRUE(rel.ok());
    Random rng(41);
    for (int64_t i = 0; i < 2560; ++i)
      ASSERT_TRUE(
          (*rel)
              ->AppendBase({Datum(i % 97), Datum(static_cast<double>(i) / 4.0)},
                           Interval(i, i + 2), 0.2 + 0.6 * rng.NextDouble())
              .ok());
    storage::SnapshotOptions options;
    options.segment_rows = 512;  // 5 segments, distinct max_prob per segment
    ASSERT_TRUE(source.SaveSnapshot(path_, options).ok());
    ASSERT_TRUE(cold_.LoadSnapshot(path_).ok());
    ASSERT_NE((*cold_.Get("events"))->cold_storage(), nullptr);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  TPDatabase cold_;
};

TEST_F(TopKProbColdTest, ColdTopKMatchesFullSort) {
  for (const int k : {1, 10, 100}) {
    ExpectParity(&cold_, "SELECT * FROM events ORDER BY _prob DESC LIMIT " +
                             std::to_string(k));
  }
  ExpectParity(&cold_,
               "SELECT key FROM events WHERE key < 60 ORDER BY _prob DESC "
               "LIMIT 40");
}

TEST_F(TopKProbColdTest, ExplainSurfacesTopKAndProbMethod) {
  StatusOr<std::string> text = Session(&cold_, {}).Explain(
      "SELECT * FROM events ORDER BY _prob DESC LIMIT 5");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_TRUE(Contains(*text, "(top-k)")) << *text;
  EXPECT_TRUE(Contains(*text, "top-k visited")) << *text;
  EXPECT_TRUE(Contains(*text, "prob=")) << *text;
}

TEST_F(TopKProbColdTest, StaleZoneMapsStayCorrectAfterProbabilityUpdate) {
  // Snapshot zone maps describe load-time probabilities. After an update
  // the epoch gate must stop the pruning (upper bound 1.0), not the
  // correctness: parity is re-checked against a baseline that sees the
  // same updated marginals.
  LineageManager* mgr = cold_.manager();
  for (VarId v = 0; v < 32; ++v)
    mgr->SetVariableProbability(v * 80, 0.99 - 0.01 * static_cast<double>(v));
  for (const int k : {5, 64}) {
    ExpectParity(&cold_, "SELECT * FROM events ORDER BY _prob DESC LIMIT " +
                             std::to_string(k));
  }
}

TEST_F(TopKProbColdTest, NonTopKShapesRouteThroughTheGenericSort) {
  // ASC, no LIMIT, and mixed keys must not take the pruned path — and must
  // still agree with the baseline through the generic ProbSort.
  ExpectParity(&cold_, "SELECT * FROM events ORDER BY _prob LIMIT 20");
  ExpectParity(&cold_,
               "SELECT * FROM events WHERE key >= 90 ORDER BY _prob DESC");
  ExpectParity(&cold_,
               "SELECT * FROM events ORDER BY key, _prob DESC LIMIT 15");
  StatusOr<std::string> text = Session(&cold_, {}).Explain(
      "SELECT * FROM events ORDER BY _prob LIMIT 20");
  ASSERT_TRUE(text.ok());
  EXPECT_FALSE(Contains(*text, "(top-k)")) << *text;
}

TEST(TopKProbTest, ApproxThresholdRunsEndToEnd) {
  TPDatabase db;
  FillWarm(&db, 500, /*ties=*/false);
  const StatusOr<TPRelation> exact =
      Session(&db, Baseline()).Query("SELECT * FROM e");
  ASSERT_TRUE(exact.ok());

  StatusOr<TPRelation> got = Session(&db, {}).Query(
      "SELECT * FROM e WITH PROB APPROX(0.1, 0.05) >= 0.5");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // The (eps, delta) contract with the fixed default seed: everything kept
  // sits above threshold − 2·eps, everything clearly above threshold +
  // 2·eps is kept. (Per-row seeds derive from the base seed and lineage
  // id, so this is deterministic.)
  size_t clearly_above = 0;
  for (size_t i = 0; i < exact->size(); ++i)
    if (exact->Probability(i) >= 0.5 + 0.2) ++clearly_above;
  size_t kept_clearly_above = 0;
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_GE(got->Probability(i), 0.5 - 0.2) << "tuple " << i;
    if (got->Probability(i) >= 0.5 + 0.2) ++kept_clearly_above;
  }
  EXPECT_EQ(kept_clearly_above, clearly_above);
  EXPECT_GT(got->size(), 0u);
  EXPECT_LT(got->size(), exact->size());

  // Explain labels the approximate filter with its contract and the mc rung.
  StatusOr<std::string> text = Session(&db, {}).Explain(
      "SELECT * FROM e WITH PROB APPROX(0.1, 0.05) >= 0.5");
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(Contains(*text, "prob=mc")) << *text;
}

TEST(TopKProbTest, ApproxCombinesWithTopK) {
  TPDatabase db;
  FillWarm(&db, 300, /*ties=*/false);
  // Approximate threshold below a top-k sort: both features engage in one
  // query; the result is deterministic under the fixed seed, so optimized
  // and baseline plans must agree element-wise.
  ExpectParity(&db,
               "SELECT * FROM e ORDER BY _prob DESC LIMIT 12 "
               "WITH PROB APPROX(0.1, 0.05) >= 0.4");
}

}  // namespace
}  // namespace tpdb
