#include "lineage/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "lineage/probability.h"

namespace tpdb {
namespace {

TEST(MonteCarlo, ConstantsAreExact) {
  LineageManager mgr;
  MonteCarloEngine mc(&mgr, 1);
  EXPECT_DOUBLE_EQ(mc.Estimate(mgr.True(), 100).probability, 1.0);
  EXPECT_DOUBLE_EQ(mc.Estimate(mgr.False(), 100).probability, 0.0);
}

TEST(MonteCarlo, SingleVariableConverges) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.3);
  MonteCarloEngine mc(&mgr, 7);
  const MonteCarloEstimate est = mc.Estimate(mgr.Var(a), 200000);
  EXPECT_NEAR(est.probability, 0.3, 0.01);
  EXPECT_GT(est.standard_error, 0.0);
  EXPECT_LT(est.standard_error, 0.01);
}

TEST(MonteCarlo, AgreesWithExactEngineOnEntangledFormula) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.5);
  const VarId b = mgr.RegisterVariable(0.4);
  const VarId c = mgr.RegisterVariable(0.8);
  // (a ∧ b) ∨ (a ∧ c) ∨ (b ∧ ¬c)
  const LineageRef lam = mgr.Or(
      mgr.Or(mgr.And(mgr.Var(a), mgr.Var(b)), mgr.And(mgr.Var(a), mgr.Var(c))),
      mgr.And(mgr.Var(b), mgr.Not(mgr.Var(c))));
  ProbabilityEngine exact(&mgr);
  MonteCarloEngine mc(&mgr, 99);
  const double truth = exact.Probability(lam);
  const MonteCarloEstimate est = mc.Estimate(lam, 400000);
  EXPECT_NEAR(est.probability, truth, 5 * est.standard_error + 1e-3);
}

TEST(MonteCarlo, EstimateToPrecisionReachesTarget) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.5);
  const VarId b = mgr.RegisterVariable(0.5);
  const LineageRef lam = mgr.Or(mgr.Var(a), mgr.Var(b));
  MonteCarloEngine mc(&mgr, 3);
  const MonteCarloEstimate est = mc.EstimateToPrecision(lam, 0.005);
  EXPECT_LE(est.standard_error, 0.005);
  EXPECT_NEAR(est.probability, 0.75, 0.03);
}

TEST(MonteCarlo, EstimateToPrecisionRespectsSampleCap) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.5);
  MonteCarloEngine mc(&mgr, 3);
  const MonteCarloEstimate est =
      mc.EstimateToPrecision(mgr.Var(a), 1e-9, /*max_samples=*/4096);
  EXPECT_LE(est.samples, 4096u);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.37);
  MonteCarloEngine mc1(&mgr, 42);
  MonteCarloEngine mc2(&mgr, 42);
  EXPECT_DOUBLE_EQ(mc1.Estimate(mgr.Var(a), 10000).probability,
                   mc2.Estimate(mgr.Var(a), 10000).probability);
}

}  // namespace
}  // namespace tpdb
