// Knowledge compilation and the evaluation ladder: compiled circuits must
// agree with the exact engine (and, where tractable, the possible-worlds
// oracle) on arbitrary formulas; the ladder must route each formula to the
// right rung; re-evaluation after a probability update must not recompile;
// and concurrent evaluators over one shared arena must be race-free (the
// TSAN job runs this suite).
#include "lineage/compile/compile.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "lineage/compile/circuit.h"
#include "lineage/compile/prob_eval.h"
#include "lineage/monte_carlo.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

// -- Circuit primitives ----------------------------------------------------

TEST(LineageCompileTest, CircuitEvaluatesPrimitives) {
  Circuit c;
  const uint32_t one = c.AddConst(1.0);
  const uint32_t v0 = c.AddVar(0);
  const uint32_t v1 = c.AddVar(1);
  const uint32_t n = c.AddNot(v0);
  const uint32_t a = c.AddAnd(n, v1);
  const uint32_t o = c.AddOr(a, v0);
  const uint32_t d = c.AddDecision(1, one, v0);

  const std::vector<double> probs = {0.25, 0.5};
  std::vector<double> values;
  c.Evaluate(probs, &values);
  EXPECT_DOUBLE_EQ(values[one], 1.0);
  EXPECT_DOUBLE_EQ(values[v0], 0.25);
  EXPECT_DOUBLE_EQ(values[n], 0.75);
  EXPECT_DOUBLE_EQ(values[a], 0.75 * 0.5);
  EXPECT_DOUBLE_EQ(values[o], 1.0 - (1.0 - 0.375) * 0.75);
  // decide x1 ? 1.0 : x0 = 0.5·1.0 + 0.5·0.25
  EXPECT_DOUBLE_EQ(values[d], 0.5 * 1.0 + 0.5 * 0.25);
}

TEST(LineageCompileTest, CircuitIncrementalEvaluationExtendsPrefix) {
  Circuit c;
  const uint32_t v0 = c.AddVar(0);
  const uint32_t v1 = c.AddVar(1);
  const uint32_t a = c.AddAnd(v0, v1);
  std::vector<double> values;
  c.Evaluate(std::vector<double>{0.5, 0.5}, &values);
  EXPECT_DOUBLE_EQ(values[a], 0.25);

  // Appending never changes earlier node values: re-evaluate from the old
  // size only and the prefix stays valid.
  const size_t from = c.size();
  const uint32_t o = c.AddOr(a, v0);
  c.Evaluate(std::vector<double>{0.5, 0.5}, &values, from);
  EXPECT_DOUBLE_EQ(values[a], 0.25);
  EXPECT_DOUBLE_EQ(values[o], 1.0 - 0.75 * 0.5);
}

// -- Random-formula agreement ---------------------------------------------

/// Random formula over `vars` with heavy reuse: leaves are drawn from the
/// same small variable pool (adversarial sharing) and operators are drawn
/// uniformly, so most ∧/∨ nodes entangle their operands.
LineageRef RandomFormula(LineageManager* mgr, Random* rng,
                         const std::vector<LineageRef>& vars, int ops) {
  std::vector<LineageRef> pool = vars;
  for (int i = 0; i < ops; ++i) {
    const LineageRef a = pool[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
    const LineageRef b = pool[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
    switch (rng->Uniform(0, 3)) {
      case 0: pool.push_back(mgr->And(a, b)); break;
      case 1: pool.push_back(mgr->Or(a, b)); break;
      case 2: pool.push_back(mgr->Not(a)); break;
      default: pool.push_back(mgr->AndNot(a, b)); break;
    }
  }
  return pool.back();
}

TEST(LineageCompileTest, CompiledMatchesExactAndBruteForce) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    LineageManager mgr;
    Random rng(seed);
    std::vector<LineageRef> vars;
    const int num_vars = static_cast<int>(rng.Uniform(2, 10));
    for (int v = 0; v < num_vars; ++v)
      vars.push_back(mgr.Var(mgr.RegisterVariable(rng.NextDouble())));
    const LineageRef lam =
        RandomFormula(&mgr, &rng, vars, static_cast<int>(rng.Uniform(4, 24)));

    // Evaluator first: compiled runs store exact values into the manager's
    // shared memo, so running the exact engine first would short-circuit the
    // ladder to a memo hit and test nothing. The epoch bump below drops the
    // stored value so the Shannon engine recomputes independently.
    ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
    const double evaluated = evaluator.Probability(lam);
    ProbabilityEngine engine(&mgr);
    const double brute = engine.BruteForceProbability(lam);
    mgr.SetVariableProbability(0, mgr.VariableProbability(0));
    const double exact = ProbabilityEngine(&mgr).Probability(lam);

    EXPECT_NEAR(exact, brute, 1e-9) << "seed " << seed;
    EXPECT_NEAR(evaluated, exact, 1e-9) << "seed " << seed;
    EXPECT_NEAR(evaluated, brute, 1e-9) << "seed " << seed;
  }
}

TEST(LineageCompileTest, CompiledMatchesExactOnLargeEntangledFamilies) {
  // Up to 24 variables: chains (v_i ∨ v_{i+1}) and long-range grids
  // (v_i ∨ v_{i+5}) — both defeat independent decomposition everywhere.
  // n > 2·stride everywhere, so the stride family always overlaps (v_stride
  // occurs in two clauses) and never collapses to the decomposable rung.
  for (const int n : {12, 16, 24}) {
    for (const int stride : {1, 5}) {
      LineageManager mgr;
      Random rng(static_cast<uint64_t>(n * 31 + stride));
      std::vector<LineageRef> vars;
      for (int v = 0; v < n; ++v)
        vars.push_back(
            mgr.Var(mgr.RegisterVariable(0.1 + 0.8 * rng.NextDouble())));
      LineageRef lam = mgr.True();
      for (int i = 0; i + stride < n; ++i)
        lam = mgr.And(lam, mgr.Or(vars[static_cast<size_t>(i)],
                                  vars[static_cast<size_t>(i + stride)]));

      ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
      const double evaluated = evaluator.Probability(lam);
      EXPECT_NE(evaluator.methods_used() & kProbMethodCompiled, 0);
      mgr.SetVariableProbability(0, mgr.VariableProbability(0));
      const double exact = ProbabilityEngine(&mgr).Probability(lam);
      EXPECT_NEAR(evaluated, exact, 1e-9)
          << "n=" << n << " stride=" << stride;
    }
  }
}

// -- Ladder routing --------------------------------------------------------

TEST(ProbEvalTest, DecomposableFormulasStayOnTheExactRung) {
  LineageManager mgr;
  const LineageRef a = mgr.Var(mgr.RegisterVariable(0.9));
  std::vector<LineageRef> vars;
  for (int i = 0; i < 8; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.3)));
  const LineageRef lam = mgr.AndNot(a, mgr.OrAll(vars));

  ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(evaluator.Probability(lam), engine.Probability(lam), 1e-12);
  EXPECT_EQ(evaluator.methods_used(), kProbMethodExact);
  EXPECT_EQ(evaluator.circuit_size(), 0u);
}

TEST(ProbEvalTest, ReEvaluationAfterProbabilityUpdateDoesNotRecompile) {
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int i = 0; i < 12; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  LineageRef lam = mgr.True();
  for (int i = 0; i + 1 < 12; ++i)
    lam = mgr.And(lam, mgr.Or(vars[static_cast<size_t>(i)],
                              vars[static_cast<size_t>(i + 1)]));

  ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
  evaluator.Probability(lam);
  const size_t compiled_nodes = evaluator.circuit_size();
  const uint64_t hits = evaluator.compile_stats().memo_hits;
  ASSERT_GT(compiled_nodes, 0u);

  mgr.SetVariableProbability(0, 0.25);
  const double updated = evaluator.Probability(lam);
  // Same circuit, new values: the update only re-ran the evaluation pass —
  // the root came out of the compiler memo and no node was appended.
  EXPECT_EQ(evaluator.circuit_size(), compiled_nodes);
  EXPECT_GT(evaluator.compile_stats().memo_hits, hits);
  // Drop the memoized compiled value (epoch bump, same marginal) so the
  // exact engine recomputes independently instead of hitting the memo.
  mgr.SetVariableProbability(0, mgr.VariableProbability(0));
  EXPECT_NEAR(updated, ProbabilityEngine(&mgr).Probability(lam), 1e-9);

  // And per-update agreement holds over a sweep of values.
  for (const double p : {0.1, 0.5, 0.9}) {
    mgr.SetVariableProbability(3, p);
    const double got = evaluator.Probability(lam);
    EXPECT_EQ(evaluator.circuit_size(), compiled_nodes);
    mgr.SetVariableProbability(3, p);  // invalidate before the exact check
    EXPECT_NEAR(got, ProbabilityEngine(&mgr).Probability(lam), 1e-9);
  }
}

TEST(ProbEvalTest, MemoReusesSubcircuitsAcrossTuples) {
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int i = 0; i < 10; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  LineageRef core = mgr.True();
  for (int i = 0; i + 1 < 10; ++i)
    core = mgr.And(core, mgr.Or(vars[static_cast<size_t>(i)],
                                vars[static_cast<size_t>(i + 1)]));

  ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
  // First tuple pays the compile; the core lands in the memo.
  const LineageRef t0 = mgr.Var(mgr.RegisterVariable(0.7));
  evaluator.Probability(mgr.And(t0, core));
  const size_t after_first = evaluator.circuit_size();
  const uint64_t hits_first = evaluator.compile_stats().memo_hits;
  // Later tuples sharing the core wire its existing circuit id.
  for (int i = 0; i < 16; ++i) {
    const LineageRef t = mgr.Var(mgr.RegisterVariable(0.3));
    const LineageRef lam = mgr.And(t, core);
    const double got = evaluator.Probability(lam);
    mgr.SetVariableProbability(0, mgr.VariableProbability(0));  // drop memo
    EXPECT_NEAR(got, ProbabilityEngine(&mgr).Probability(lam), 1e-9);
  }
  EXPECT_GT(evaluator.compile_stats().memo_hits, hits_first);
  // Each extra tuple adds O(1) nodes (its var + one conjunction), not a
  // re-compiled core.
  EXPECT_LT(evaluator.circuit_size() - after_first, 16 * 4);
}

TEST(ProbEvalTest, BudgetExhaustionFallsBackToSampling) {
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int i = 0; i < 14; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  LineageRef lam = mgr.True();
  for (int i = 0; i + 1 < 14; ++i)
    lam = mgr.And(lam, mgr.Or(vars[static_cast<size_t>(i)],
                              vars[static_cast<size_t>(i + 1)]));

  ProbEvalOptions opts;
  opts.max_circuit_nodes = 4;  // nothing real compiles under this
  ProbabilityEvaluator evaluator(&mgr, opts);
  const double sampled = evaluator.Probability(lam);
  EXPECT_NE(evaluator.methods_used() & kProbMethodMonteCarlo, 0);
  ProbabilityEngine engine(&mgr);
  // Deterministic seed; the fallback contract is (0.01, 0.05).
  EXPECT_NEAR(sampled, engine.Probability(lam), 0.05);
}

TEST(ProbEvalTest, ApproxContractSkipsExactRungs) {
  LineageManager mgr;
  const LineageRef a = mgr.Var(mgr.RegisterVariable(0.6));
  const LineageRef b = mgr.Var(mgr.RegisterVariable(0.5));
  const LineageRef lam = mgr.And(a, b);  // decomposable, yet sampled
  ProbEvalOptions opts;
  opts.approx_eps = 0.05;
  opts.approx_delta = 0.05;
  ProbabilityEvaluator evaluator(&mgr, opts);
  const double p = evaluator.Probability(lam);
  EXPECT_EQ(evaluator.methods_used(), kProbMethodMonteCarlo);
  EXPECT_NEAR(p, 0.3, 0.05);
}

TEST(ProbEvalTest, MethodLabels) {
  EXPECT_EQ(ProbMethodsLabel(0), "");
  EXPECT_EQ(ProbMethodsLabel(kProbMethodExact), "exact");
  EXPECT_EQ(ProbMethodsLabel(kProbMethodCompiled), "compiled");
  EXPECT_EQ(ProbMethodsLabel(kProbMethodMonteCarlo), "mc");
  EXPECT_EQ(ProbMethodsLabel(kProbMethodExact | kProbMethodMonteCarlo),
            "exact+mc");
  EXPECT_EQ(ProbMethodsLabel(kProbMethodExact | kProbMethodCompiled |
                             kProbMethodMonteCarlo),
            "exact+compiled+mc");
}

// -- Monte-Carlo confidence accounting ------------------------------------

TEST(ProbEvalTest, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
}

TEST(ProbEvalTest, HoeffdingSamplesTightenWithContract) {
  // n = ceil(ln(2/delta) / (2 eps^2)).
  EXPECT_EQ(HoeffdingSamples(0.1, 0.05),
            static_cast<uint64_t>(std::ceil(std::log(2.0 / 0.05) / 0.02)));
  EXPECT_GT(HoeffdingSamples(0.01, 0.05), HoeffdingSamples(0.1, 0.05));
  EXPECT_GT(HoeffdingSamples(0.1, 0.01), HoeffdingSamples(0.1, 0.05));
}

TEST(ProbEvalTest, DerivedSeedsAreStableAndDistinct) {
  EXPECT_EQ(DeriveSeed(42, 7), DeriveSeed(42, 7));
  EXPECT_NE(DeriveSeed(42, 7), DeriveSeed(42, 8));
  EXPECT_NE(DeriveSeed(42, 7), DeriveSeed(43, 7));
}

TEST(ProbEvalTest, ApproxEstimatesLandInsideTheConfidenceInterval) {
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int i = 0; i < 12; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  LineageRef lam = mgr.True();
  for (int i = 0; i + 1 < 12; ++i)
    lam = mgr.And(lam, mgr.Or(vars[static_cast<size_t>(i)],
                              vars[static_cast<size_t>(i + 1)]));
  ProbabilityEngine engine(&mgr);
  const double exact = engine.Probability(lam);

  const double eps = 0.05, delta = 0.05;
  const double z = NormalQuantile(1.0 - delta / 2.0);
  const int seeds = 40;
  int hits = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    MonteCarloEngine mc(&mgr,
                        DeriveSeed(static_cast<uint64_t>(seed) + 1, lam.id));
    const MonteCarloEstimate est = mc.EstimateToPrecision(
        lam, eps / z, HoeffdingSamples(eps, delta));
    if (std::abs(est.probability - exact) <= eps) ++hits;
  }
  // The contract allows delta = 5% misses; 90% over 40 seeds leaves slack
  // for unlucky draws without masking a broken estimator.
  EXPECT_GE(hits, static_cast<int>(seeds * 0.9));
}

// -- Concurrency (exercised under TSAN) -----------------------------------

TEST(LineageCompileConcurrencyTest, ParallelEvaluatorsShareOneArena) {
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int i = 0; i < 16; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  // A mix of decomposable and entangled formulas, shared by all workers.
  std::vector<LineageRef> formulas;
  for (int f = 0; f < 8; ++f) {
    LineageRef lam = mgr.Or(vars[static_cast<size_t>(f)],
                            vars[static_cast<size_t>(f + 1)]);
    for (int i = f; i + 1 < f + 6; ++i)
      lam = mgr.And(lam, mgr.Or(vars[static_cast<size_t>(i % 16)],
                                vars[static_cast<size_t>((i + 1) % 16)]));
    formulas.push_back(lam);
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
      for (int round = 0; round < 50; ++round) {
        const LineageRef lam =
            formulas[static_cast<size_t>((w + round) % 8)];
        const double p = evaluator.Probability(lam);
        if (!(p >= 0.0 && p <= 1.0)) failed = true;
      }
    });
  }
  // A writer racing the evaluators: epoch bumps must invalidate memos
  // without tearing any read.
  workers.emplace_back([&] {
    for (int i = 0; i < 100; ++i)
      mgr.SetVariableProbability(static_cast<VarId>(i % 16),
                                 0.25 + 0.5 * ((i % 3) / 2.0));
  });
  for (std::thread& t : workers) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(LineageCompileConcurrencyTest, ConcurrentConstructionAndEvaluation) {
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int i = 0; i < 32; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) + 1);
      ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
      for (int round = 0; round < 40; ++round) {
        // Interleave building new shared formulas with evaluating them:
        // Intern takes the arena lock, evaluation is a lock-free reader.
        const LineageRef a = vars[static_cast<size_t>(
            rng.Uniform(0, 31))];
        const LineageRef b = vars[static_cast<size_t>(
            rng.Uniform(0, 31))];
        const LineageRef lam = mgr.And(mgr.Or(a, b), mgr.Not(b));
        const double p = evaluator.Probability(lam);
        if (!(p >= 0.0 && p <= 1.0)) failed = true;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace tpdb
