#include "lineage/probability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace tpdb {
namespace {

TEST(Probability, Constants) {
  LineageManager mgr;
  ProbabilityEngine engine(&mgr);
  EXPECT_DOUBLE_EQ(engine.Probability(mgr.True()), 1.0);
  EXPECT_DOUBLE_EQ(engine.Probability(mgr.False()), 0.0);
}

TEST(Probability, SingleVariableAndNegation) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.7);
  ProbabilityEngine engine(&mgr);
  EXPECT_DOUBLE_EQ(engine.Probability(mgr.Var(a)), 0.7);
  EXPECT_DOUBLE_EQ(engine.Probability(mgr.Not(mgr.Var(a))), 0.3);
}

TEST(Probability, IndependentConjunctionIsProduct) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.7);
  const VarId b = mgr.RegisterVariable(0.6);
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(engine.Probability(mgr.And(mgr.Var(a), mgr.Var(b))), 0.42,
              1e-12);
  EXPECT_EQ(engine.shannon_expansions(), 0u);  // fast path
}

TEST(Probability, IndependentDisjunctionIsInclusionExclusion) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.7);
  const VarId b = mgr.RegisterVariable(0.6);
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(engine.Probability(mgr.Or(mgr.Var(a), mgr.Var(b))),
              1.0 - 0.3 * 0.4, 1e-12);
  EXPECT_EQ(engine.shannon_expansions(), 0u);
}

TEST(Probability, PaperFig1bValues) {
  // The negated lineages of the example: P(a1 ∧ ¬b3) = 0.7·0.3 = 0.21;
  // P(a1 ∧ ¬(b3 ∨ b2)) = 0.7·0.3·0.4 = 0.084; P(a1 ∧ ¬b2) = 0.28.
  LineageManager mgr;
  const VarId a1 = mgr.RegisterVariable(0.7, "a1");
  const VarId b2 = mgr.RegisterVariable(0.6, "b2");
  const VarId b3 = mgr.RegisterVariable(0.7, "b3");
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(engine.Probability(mgr.AndNot(mgr.Var(a1), mgr.Var(b3))), 0.21,
              1e-12);
  EXPECT_NEAR(engine.Probability(mgr.AndNot(
                  mgr.Var(a1), mgr.Or(mgr.Var(b3), mgr.Var(b2)))),
              0.084, 1e-12);
  EXPECT_NEAR(engine.Probability(mgr.AndNot(mgr.Var(a1), mgr.Var(b2))), 0.28,
              1e-12);
  EXPECT_EQ(engine.shannon_expansions(), 0u);  // all decomposable
}

TEST(Probability, DependentFormulaNeedsShannon) {
  // (a ∧ b) ∨ (a ∧ c): P = P(a) · P(b ∨ c) = 0.5 · (1 - 0.6·0.2) = 0.44.
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.5);
  const VarId b = mgr.RegisterVariable(0.4);
  const VarId c = mgr.RegisterVariable(0.8);
  ProbabilityEngine engine(&mgr);
  const LineageRef lam = mgr.Or(mgr.And(mgr.Var(a), mgr.Var(b)),
                                mgr.And(mgr.Var(a), mgr.Var(c)));
  EXPECT_NEAR(engine.Probability(lam), 0.44, 1e-12);
  EXPECT_GT(engine.shannon_expansions(), 0u);
}

TEST(Probability, XorViaShannon) {
  // (a ∧ ¬b) ∨ (¬a ∧ b): P = pa(1-pb) + (1-pa)pb.
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.3);
  const VarId b = mgr.RegisterVariable(0.9);
  ProbabilityEngine engine(&mgr);
  const LineageRef lam =
      mgr.Or(mgr.And(mgr.Var(a), mgr.Not(mgr.Var(b))),
             mgr.And(mgr.Not(mgr.Var(a)), mgr.Var(b)));
  EXPECT_NEAR(engine.Probability(lam), 0.3 * 0.1 + 0.7 * 0.9, 1e-12);
}

TEST(Probability, ContradictionAndTautology) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.42);
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(
      engine.Probability(mgr.And(mgr.Var(a), mgr.Not(mgr.Var(a)))), 0.0,
      1e-12);
  EXPECT_NEAR(engine.Probability(mgr.Or(mgr.Var(a), mgr.Not(mgr.Var(a)))),
              1.0, 1e-12);
}

TEST(Probability, CacheInvalidatedOnProbabilityChange) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.5);
  const VarId b = mgr.RegisterVariable(0.5);
  const LineageRef lam = mgr.And(mgr.Var(a), mgr.Var(b));
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(engine.Probability(lam), 0.25, 1e-12);
  mgr.SetVariableProbability(a, 1.0);
  EXPECT_NEAR(engine.Probability(lam), 0.5, 1e-12);
}

TEST(Probability, ZeroAndOneProbabilities) {
  LineageManager mgr;
  const VarId never = mgr.RegisterVariable(0.0);
  const VarId always = mgr.RegisterVariable(1.0);
  ProbabilityEngine engine(&mgr);
  EXPECT_DOUBLE_EQ(engine.Probability(mgr.Var(never)), 0.0);
  EXPECT_DOUBLE_EQ(
      engine.Probability(mgr.Or(mgr.Var(never), mgr.Var(always))), 1.0);
}

// Random-formula sweep: the decomposition/Shannon engine must agree with
// possible-worlds enumeration on arbitrary formulas.
class RandomFormulaTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  LineageRef RandomFormula(LineageManager* mgr, Random* rng,
                           const std::vector<VarId>& vars, int depth) {
    if (depth == 0 || rng->Bernoulli(0.3)) {
      const VarId v =
          vars[static_cast<size_t>(rng->Uniform(0, vars.size() - 1))];
      return rng->Bernoulli(0.3) ? mgr->Not(mgr->Var(v)) : mgr->Var(v);
    }
    const LineageRef l = RandomFormula(mgr, rng, vars, depth - 1);
    const LineageRef r = RandomFormula(mgr, rng, vars, depth - 1);
    switch (rng->Uniform(0, 2)) {
      case 0:
        return mgr->And(l, r);
      case 1:
        return mgr->Or(l, r);
      default:
        return mgr->Not(mgr->And(l, r));
    }
  }
};

TEST_P(RandomFormulaTest, ExactEngineMatchesPossibleWorlds) {
  LineageManager mgr;
  Random rng(GetParam() * 7919);
  std::vector<VarId> vars;
  const int n = 3 + static_cast<int>(rng.Uniform(0, 7));
  for (int i = 0; i < n; ++i)
    vars.push_back(mgr.RegisterVariable(rng.UniformDouble(0.05, 0.95)));
  ProbabilityEngine engine(&mgr);
  for (int trial = 0; trial < 20; ++trial) {
    const LineageRef lam = RandomFormula(&mgr, &rng, vars, 4);
    EXPECT_NEAR(engine.Probability(lam), engine.BruteForceProbability(lam),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormulaTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(Probability, DeepIndependentChainIsLinear) {
  // 60 independent variables AND-ed together: must not trigger Shannon.
  LineageManager mgr;
  LineageRef lam = mgr.True();
  double expected = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double p = 0.9 + 0.001 * i;
    const VarId v = mgr.RegisterVariable(p);
    lam = mgr.And(lam, mgr.Var(v));
    expected *= p;
  }
  ProbabilityEngine engine(&mgr);
  EXPECT_NEAR(engine.Probability(lam), expected, 1e-12);
  EXPECT_EQ(engine.shannon_expansions(), 0u);
}

}  // namespace
}  // namespace tpdb
