#include "lineage/lineage.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

class LineageTest : public ::testing::Test {
 protected:
  LineageManager mgr_;
  VarId a_ = mgr_.RegisterVariable(0.7, "a");
  VarId b_ = mgr_.RegisterVariable(0.6, "b");
  VarId c_ = mgr_.RegisterVariable(0.9, "c");
};

TEST_F(LineageTest, VariableRegistry) {
  EXPECT_EQ(mgr_.num_variables(), 3u);
  EXPECT_DOUBLE_EQ(mgr_.VariableProbability(a_), 0.7);
  EXPECT_EQ(mgr_.VariableName(b_), "b");
  ASSERT_TRUE(mgr_.FindVariable("c").ok());
  EXPECT_EQ(*mgr_.FindVariable("c"), c_);
  EXPECT_FALSE(mgr_.FindVariable("nope").ok());
}

TEST_F(LineageTest, AutoNamedVariables) {
  LineageManager m;
  const VarId v = m.RegisterVariable(0.5);
  EXPECT_EQ(m.VariableName(v), "x0");
}

TEST_F(LineageTest, HashConsingGivesEqualIds) {
  const LineageRef x = mgr_.And(mgr_.Var(a_), mgr_.Var(b_));
  const LineageRef y = mgr_.And(mgr_.Var(b_), mgr_.Var(a_));  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(mgr_.Var(a_), mgr_.Var(a_));
}

TEST_F(LineageTest, ConstantSimplification) {
  const LineageRef va = mgr_.Var(a_);
  EXPECT_EQ(mgr_.And(va, mgr_.True()), va);
  EXPECT_EQ(mgr_.And(va, mgr_.False()), mgr_.False());
  EXPECT_EQ(mgr_.Or(va, mgr_.False()), va);
  EXPECT_EQ(mgr_.Or(va, mgr_.True()), mgr_.True());
}

TEST_F(LineageTest, Idempotence) {
  const LineageRef va = mgr_.Var(a_);
  EXPECT_EQ(mgr_.And(va, va), va);
  EXPECT_EQ(mgr_.Or(va, va), va);
}

TEST_F(LineageTest, DoubleNegation) {
  const LineageRef va = mgr_.Var(a_);
  EXPECT_EQ(mgr_.Not(mgr_.Not(va)), va);
  EXPECT_EQ(mgr_.Not(mgr_.True()), mgr_.False());
  EXPECT_EQ(mgr_.Not(mgr_.False()), mgr_.True());
}

TEST_F(LineageTest, OrAllIsOrderInsensitive) {
  const std::vector<LineageRef> fwd = {mgr_.Var(a_), mgr_.Var(b_),
                                       mgr_.Var(c_)};
  const std::vector<LineageRef> rev = {mgr_.Var(c_), mgr_.Var(b_),
                                       mgr_.Var(a_)};
  EXPECT_EQ(mgr_.OrAll(fwd), mgr_.OrAll(rev));
  const std::vector<LineageRef> dup = {mgr_.Var(a_), mgr_.Var(a_)};
  EXPECT_EQ(mgr_.OrAll(dup), mgr_.Var(a_));
}

TEST_F(LineageTest, EmptyAggregatesAreIdentities) {
  EXPECT_EQ(mgr_.OrAll({}), mgr_.False());
  EXPECT_EQ(mgr_.AndAll({}), mgr_.True());
}

TEST_F(LineageTest, AndNotBuildsNegation) {
  const LineageRef lam =
      mgr_.AndNot(mgr_.Var(a_), mgr_.Or(mgr_.Var(b_), mgr_.Var(c_)));
  EXPECT_EQ(mgr_.KindOf(lam), LineageKind::kAnd);
  // a ∧ ¬(b ∨ c) evaluates correctly.
  std::vector<bool> world(3, false);
  world[a_] = true;
  EXPECT_TRUE(mgr_.Evaluate(lam, world));
  world[b_] = true;
  EXPECT_FALSE(mgr_.Evaluate(lam, world));
}

TEST_F(LineageTest, VariablesAreSortedDistinct) {
  const LineageRef lam = mgr_.And(
      mgr_.Or(mgr_.Var(c_), mgr_.Var(a_)), mgr_.Not(mgr_.Var(b_)));
  EXPECT_EQ(mgr_.Variables(lam), (std::vector<VarId>{a_, b_, c_}));
  EXPECT_TRUE(mgr_.Variables(mgr_.True()).empty());
}

TEST_F(LineageTest, EvaluateAllKinds) {
  std::vector<bool> world = {true, false, true};  // a, b, c
  EXPECT_TRUE(mgr_.Evaluate(mgr_.True(), world));
  EXPECT_FALSE(mgr_.Evaluate(mgr_.False(), world));
  EXPECT_TRUE(mgr_.Evaluate(mgr_.Var(a_), world));
  EXPECT_FALSE(mgr_.Evaluate(mgr_.Var(b_), world));
  EXPECT_TRUE(mgr_.Evaluate(mgr_.Not(mgr_.Var(b_)), world));
  EXPECT_TRUE(
      mgr_.Evaluate(mgr_.And(mgr_.Var(a_), mgr_.Var(c_)), world));
  EXPECT_TRUE(mgr_.Evaluate(mgr_.Or(mgr_.Var(b_), mgr_.Var(c_)), world));
  EXPECT_FALSE(
      mgr_.Evaluate(mgr_.And(mgr_.Var(a_), mgr_.Var(b_)), world));
}

TEST_F(LineageTest, RestrictSubstitutesAndSimplifies) {
  const LineageRef lam = mgr_.And(mgr_.Var(a_), mgr_.Var(b_));
  EXPECT_EQ(mgr_.Restrict(lam, a_, true), mgr_.Var(b_));
  EXPECT_EQ(mgr_.Restrict(lam, a_, false), mgr_.False());
  EXPECT_EQ(mgr_.Restrict(lam, c_, true), lam);  // c not present
}

TEST_F(LineageTest, RestrictSharedSubformula) {
  // (a ∨ b) ∧ (a ∨ c): restricting a=true collapses to True.
  const LineageRef lam = mgr_.And(mgr_.Or(mgr_.Var(a_), mgr_.Var(b_)),
                                  mgr_.Or(mgr_.Var(a_), mgr_.Var(c_)));
  EXPECT_EQ(mgr_.Restrict(lam, a_, true), mgr_.True());
  EXPECT_EQ(mgr_.Restrict(lam, a_, false),
            mgr_.And(mgr_.Var(b_), mgr_.Var(c_)));
}

TEST_F(LineageTest, EquivalentDetectsDeMorgan) {
  const LineageRef lhs = mgr_.Not(mgr_.Or(mgr_.Var(a_), mgr_.Var(b_)));
  const LineageRef rhs =
      mgr_.And(mgr_.Not(mgr_.Var(a_)), mgr_.Not(mgr_.Var(b_)));
  EXPECT_NE(lhs, rhs);  // syntactically different
  EXPECT_TRUE(mgr_.Equivalent(lhs, rhs));
  EXPECT_FALSE(mgr_.Equivalent(lhs, mgr_.Var(a_)));
}

TEST_F(LineageTest, EquivalentAbsorption) {
  // a ∨ (a ∧ b) ≡ a.
  const LineageRef lhs =
      mgr_.Or(mgr_.Var(a_), mgr_.And(mgr_.Var(a_), mgr_.Var(b_)));
  EXPECT_TRUE(mgr_.Equivalent(lhs, mgr_.Var(a_)));
}

TEST_F(LineageTest, NodeCountGrowsOnlyForNewStructure) {
  const size_t before = mgr_.num_nodes();
  const LineageRef x = mgr_.And(mgr_.Var(a_), mgr_.Var(b_));
  const size_t mid = mgr_.num_nodes();
  const LineageRef y = mgr_.And(mgr_.Var(b_), mgr_.Var(a_));
  EXPECT_EQ(x, y);
  EXPECT_EQ(mgr_.num_nodes(), mid);
  EXPECT_GT(mid, before);
}

TEST_F(LineageTest, SetVariableProbabilityInvalidatesNothingStructural) {
  const LineageRef lam = mgr_.Var(a_);
  mgr_.SetVariableProbability(a_, 0.25);
  EXPECT_DOUBLE_EQ(mgr_.VariableProbability(a_), 0.25);
  EXPECT_EQ(mgr_.Var(a_), lam);  // same node
}

TEST_F(LineageTest, InspectionAccessors) {
  const LineageRef lam = mgr_.And(mgr_.Var(a_), mgr_.Var(b_));
  EXPECT_EQ(mgr_.KindOf(lam), LineageKind::kAnd);
  // Children are canonically ordered by node id (argument evaluation order
  // is unspecified), so inspect them as a set.
  const VarId left = mgr_.VarOf(mgr_.Left(lam));
  const VarId right = mgr_.VarOf(mgr_.Right(lam));
  EXPECT_TRUE((left == a_ && right == b_) || (left == b_ && right == a_));
  const LineageRef neg = mgr_.Not(lam);
  EXPECT_EQ(mgr_.KindOf(neg), LineageKind::kNot);
  EXPECT_EQ(mgr_.Left(neg), lam);
}

}  // namespace
}  // namespace tpdb
