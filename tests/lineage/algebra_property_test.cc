// Algebraic laws of the lineage manager and the probability engine,
// checked over randomized formulas: the laws TP join correctness leans on
// (order-insensitivity of λs disjunctions, negation semantics, Shannon
// identity, restriction coherence).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

class AlgebraTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    rng_.Seed(GetParam() * 48271);
    const int n = 4 + static_cast<int>(rng_.Uniform(0, 4));
    for (int i = 0; i < n; ++i)
      vars_.push_back(mgr_.RegisterVariable(rng_.UniformDouble(0.05, 0.95)));
  }

  LineageRef RandomFormula(int depth) {
    if (depth == 0 || rng_.Bernoulli(0.35)) {
      const LineageRef v =
          mgr_.Var(vars_[rng_.Uniform(0, vars_.size() - 1)]);
      return rng_.Bernoulli(0.25) ? mgr_.Not(v) : v;
    }
    const LineageRef a = RandomFormula(depth - 1);
    const LineageRef b = RandomFormula(depth - 1);
    return rng_.Bernoulli(0.5) ? mgr_.And(a, b) : mgr_.Or(a, b);
  }

  LineageManager mgr_;
  Random rng_{1};
  std::vector<VarId> vars_;
};

TEST_P(AlgebraTest, CommutativityIsStructural) {
  for (int trial = 0; trial < 20; ++trial) {
    const LineageRef a = RandomFormula(3);
    const LineageRef b = RandomFormula(3);
    EXPECT_EQ(mgr_.And(a, b), mgr_.And(b, a));
    EXPECT_EQ(mgr_.Or(a, b), mgr_.Or(b, a));
  }
}

TEST_P(AlgebraTest, AssociativityIsSemantic) {
  for (int trial = 0; trial < 10; ++trial) {
    const LineageRef a = RandomFormula(2);
    const LineageRef b = RandomFormula(2);
    const LineageRef c = RandomFormula(2);
    EXPECT_TRUE(mgr_.Equivalent(mgr_.And(mgr_.And(a, b), c),
                                mgr_.And(a, mgr_.And(b, c))));
    EXPECT_TRUE(mgr_.Equivalent(mgr_.Or(mgr_.Or(a, b), c),
                                mgr_.Or(a, mgr_.Or(b, c))));
  }
}

TEST_P(AlgebraTest, DeMorganAndDistribution) {
  for (int trial = 0; trial < 10; ++trial) {
    const LineageRef a = RandomFormula(2);
    const LineageRef b = RandomFormula(2);
    const LineageRef c = RandomFormula(2);
    EXPECT_TRUE(mgr_.Equivalent(mgr_.Not(mgr_.And(a, b)),
                                mgr_.Or(mgr_.Not(a), mgr_.Not(b))));
    EXPECT_TRUE(mgr_.Equivalent(mgr_.And(a, mgr_.Or(b, c)),
                                mgr_.Or(mgr_.And(a, b), mgr_.And(a, c))));
  }
}

TEST_P(AlgebraTest, OrAllIsPermutationInvariant) {
  std::vector<LineageRef> operands;
  for (int i = 0; i < 6; ++i) operands.push_back(RandomFormula(2));
  const LineageRef reference = mgr_.OrAll(operands);
  for (int trial = 0; trial < 10; ++trial) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (size_t i = operands.size() - 1; i > 0; --i)
      std::swap(operands[i],
                operands[static_cast<size_t>(rng_.Uniform(0, i))]);
    EXPECT_EQ(mgr_.OrAll(operands), reference);
  }
}

TEST_P(AlgebraTest, ProbabilityOfNegationComplements) {
  ProbabilityEngine prob(&mgr_);
  for (int trial = 0; trial < 15; ++trial) {
    const LineageRef f = RandomFormula(3);
    EXPECT_NEAR(prob.Probability(mgr_.Not(f)), 1.0 - prob.Probability(f),
                1e-12);
  }
}

TEST_P(AlgebraTest, ShannonIdentityHoldsNumerically) {
  ProbabilityEngine prob(&mgr_);
  for (int trial = 0; trial < 15; ++trial) {
    const LineageRef f = RandomFormula(3);
    const std::vector<VarId> fvars = mgr_.Variables(f);
    if (fvars.empty()) continue;
    const VarId v = fvars[rng_.Uniform(0, fvars.size() - 1)];
    const double pv = mgr_.VariableProbability(v);
    const double whole = prob.Probability(f);
    const double hi = prob.Probability(mgr_.Restrict(f, v, true));
    const double lo = prob.Probability(mgr_.Restrict(f, v, false));
    EXPECT_NEAR(whole, pv * hi + (1.0 - pv) * lo, 1e-9);
  }
}

TEST_P(AlgebraTest, RestrictionRemovesTheVariable) {
  for (int trial = 0; trial < 15; ++trial) {
    const LineageRef f = RandomFormula(3);
    const std::vector<VarId> fvars = mgr_.Variables(f);
    if (fvars.empty()) continue;
    const VarId v = fvars[rng_.Uniform(0, fvars.size() - 1)];
    for (const bool value : {false, true}) {
      const LineageRef g = mgr_.Restrict(f, v, value);
      const std::vector<VarId>& gvars = mgr_.Variables(g);
      EXPECT_FALSE(std::binary_search(gvars.begin(), gvars.end(), v));
    }
  }
}

TEST_P(AlgebraTest, UnionBoundHolds) {
  // P(a ∨ b) <= P(a) + P(b) and >= max(P(a), P(b)).
  ProbabilityEngine prob(&mgr_);
  for (int trial = 0; trial < 15; ++trial) {
    const LineageRef a = RandomFormula(2);
    const LineageRef b = RandomFormula(2);
    const double pa = prob.Probability(a);
    const double pb = prob.Probability(b);
    const double por = prob.Probability(mgr_.Or(a, b));
    EXPECT_LE(por, pa + pb + 1e-12);
    EXPECT_GE(por, std::max(pa, pb) - 1e-12);
    const double pand = prob.Probability(mgr_.And(a, b));
    EXPECT_NEAR(pa + pb, por + pand, 1e-9);  // inclusion-exclusion
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace tpdb
