#include "lineage/print.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tpdb {
namespace {

class PrintTest : public ::testing::Test {
 protected:
  LineageManager mgr_;
  VarId a1_ = mgr_.RegisterVariable(0.7, "a1");
  VarId b2_ = mgr_.RegisterVariable(0.6, "b2");
  VarId b3_ = mgr_.RegisterVariable(0.7, "b3");
};

TEST_F(PrintTest, Atoms) {
  EXPECT_EQ(LineageToString(mgr_, mgr_.Var(a1_)), "a1");
  EXPECT_EQ(LineageToString(mgr_, mgr_.True()), "true");
  EXPECT_EQ(LineageToString(mgr_, mgr_.False()), "false");
  EXPECT_EQ(LineageToString(mgr_, LineageRef::Null()), "-");
}

TEST_F(PrintTest, PaperNotation) {
  // The Fig. 1b lineage a1 ∧ ¬(b3 ∨ b2): canonical child order may place
  // b2 before b3, but the connectives and parenthesisation match.
  const LineageRef lam =
      mgr_.AndNot(mgr_.Var(a1_), mgr_.Or(mgr_.Var(b3_), mgr_.Var(b2_)));
  EXPECT_EQ(LineageToString(mgr_, lam), "a1 ∧ ¬(b2 ∨ b3)");
}

TEST_F(PrintTest, MinimalParentheses) {
  // AND nested in OR needs no parentheses; OR nested in AND does. Child
  // order is canonical (by node id), so test structure, not exact order.
  const LineageRef and_in_or = mgr_.Or(
      mgr_.And(mgr_.Var(a1_), mgr_.Var(b2_)), mgr_.Var(b3_));
  EXPECT_EQ(LineageToString(mgr_, and_in_or).find('('), std::string::npos);
  const LineageRef or_in_and = mgr_.And(
      mgr_.Or(mgr_.Var(a1_), mgr_.Var(b2_)), mgr_.Var(b3_));
  EXPECT_NE(LineageToString(mgr_, or_in_and).find('('), std::string::npos);
  // Both strings parse back to the original formula.
  EXPECT_EQ(*ParseLineage(&mgr_, LineageToString(mgr_, and_in_or)),
            and_in_or);
  EXPECT_EQ(*ParseLineage(&mgr_, LineageToString(mgr_, or_in_and)),
            or_in_and);
}

TEST_F(PrintTest, ParseAtoms) {
  ASSERT_TRUE(ParseLineage(&mgr_, "a1").ok());
  EXPECT_EQ(*ParseLineage(&mgr_, "a1"), mgr_.Var(a1_));
  EXPECT_EQ(*ParseLineage(&mgr_, "true"), mgr_.True());
  EXPECT_EQ(*ParseLineage(&mgr_, "false"), mgr_.False());
}

TEST_F(PrintTest, ParseUnicodeAndAsciiConnectives) {
  const LineageRef expected =
      mgr_.AndNot(mgr_.Var(a1_), mgr_.Or(mgr_.Var(b3_), mgr_.Var(b2_)));
  StatusOr<LineageRef> unicode = ParseLineage(&mgr_, "a1 ∧ ¬(b3 ∨ b2)");
  StatusOr<LineageRef> ascii = ParseLineage(&mgr_, "a1 & !(b3 | b2)");
  ASSERT_TRUE(unicode.ok()) << unicode.status().ToString();
  ASSERT_TRUE(ascii.ok()) << ascii.status().ToString();
  EXPECT_EQ(*unicode, expected);
  EXPECT_EQ(*ascii, expected);
}

TEST_F(PrintTest, ParsePrecedenceAndBindsTighter) {
  // a1 | b2 & b3 == a1 | (b2 & b3)
  StatusOr<LineageRef> lam = ParseLineage(&mgr_, "a1 | b2 & b3");
  ASSERT_TRUE(lam.ok());
  EXPECT_EQ(*lam, mgr_.Or(mgr_.Var(a1_),
                          mgr_.And(mgr_.Var(b2_), mgr_.Var(b3_))));
}

TEST_F(PrintTest, ParseErrors) {
  EXPECT_FALSE(ParseLineage(&mgr_, "").ok());
  EXPECT_FALSE(ParseLineage(&mgr_, "a1 &").ok());
  EXPECT_FALSE(ParseLineage(&mgr_, "(a1").ok());
  EXPECT_FALSE(ParseLineage(&mgr_, "a1 b2").ok());
  EXPECT_FALSE(ParseLineage(&mgr_, "unknown_var").ok());
}

TEST_F(PrintTest, RoundTripRandomFormulas) {
  Random rng(17);
  std::vector<VarId> vars = {a1_, b2_, b3_};
  for (int trial = 0; trial < 50; ++trial) {
    // Build a random formula, print it, parse it back: must be identical
    // (printing is canonical and parsing re-canonicalizes).
    LineageRef lam = mgr_.Var(vars[rng.Uniform(0, 2)]);
    for (int step = 0; step < 6; ++step) {
      const LineageRef v = mgr_.Var(vars[rng.Uniform(0, 2)]);
      switch (rng.Uniform(0, 2)) {
        case 0:
          lam = mgr_.And(lam, v);
          break;
        case 1:
          lam = mgr_.Or(lam, mgr_.Not(v));
          break;
        default:
          lam = mgr_.Not(lam);
          break;
      }
    }
    const std::string text = LineageToString(mgr_, lam);
    StatusOr<LineageRef> parsed = ParseLineage(&mgr_, text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    // Parsing re-associates chains (left-assoc), so require logical
    // equivalence rather than node identity.
    EXPECT_TRUE(mgr_.Equivalent(*parsed, lam)) << text;
  }
}

}  // namespace
}  // namespace tpdb
