// Shared test fixtures: the paper's running example (Fig. 1) and a
// randomized TP relation generator tuned for property tests (short
// timelines so the per-time-point oracle stays fast).
#ifndef TPDB_TESTS_REFERENCE_FIXTURES_H_
#define TPDB_TESTS_REFERENCE_FIXTURES_H_

#include <memory>

#include "common/random.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb::testing {

/// The booking-website example of Fig. 1: relations a (wantsToVisit) and
/// b (hotelAvailability) with θ: a.Loc = b.Loc. Variables are named a1, a2,
/// b1, b2, b3 exactly as in the paper.
struct Fig1Example {
  LineageManager manager;
  std::unique_ptr<TPRelation> a;
  std::unique_ptr<TPRelation> b;
  JoinCondition theta;
};

std::unique_ptr<Fig1Example> MakeFig1Example();

/// Parameters for random TP relations used in property tests.
struct RandomRelationOptions {
  int64_t num_tuples = 12;
  int64_t num_keys = 3;        // distinct join values
  TimePoint horizon = 30;      // timeline [0, horizon)
  int64_t max_duration = 8;    // interval length in [1, max_duration]
};

/// Generates a valid (duplicate-free-in-time) random TP relation with fact
/// schema (key:int64, tag:int64). Joins use "key"; the "tag" discriminator
/// lets several concurrently valid tuples share a join key while remaining
/// distinct facts — which is what exercises negating windows.
std::unique_ptr<TPRelation> MakeRandomRelation(
    LineageManager* manager, std::string name,
    const RandomRelationOptions& options, Random* rng);

}  // namespace tpdb::testing

#endif  // TPDB_TESTS_REFERENCE_FIXTURES_H_
