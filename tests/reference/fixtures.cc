#include "tests/reference/fixtures.h"

#include <algorithm>

namespace tpdb::testing {

std::unique_ptr<Fig1Example> MakeFig1Example() {
  auto fx = std::make_unique<Fig1Example>();

  Schema a_schema;
  a_schema.AddColumn({"Name", DatumType::kString});
  a_schema.AddColumn({"Loc", DatumType::kString});
  fx->a = std::make_unique<TPRelation>("a", a_schema, &fx->manager);

  Schema b_schema;
  b_schema.AddColumn({"Hotel", DatumType::kString});
  b_schema.AddColumn({"Loc", DatumType::kString});
  fx->b = std::make_unique<TPRelation>("b", b_schema, &fx->manager);

  auto must = [](const Status& st) {
    TPDB_CHECK(st.ok()) << st.ToString();
  };
  must(fx->a->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8), 0.7,
                         "a1"));
  must(fx->a->AppendBase({Datum("Jim"), Datum("WEN")}, Interval(7, 10), 0.8,
                         "a2"));
  must(fx->b->AppendBase({Datum("hotel3"), Datum("SOR")}, Interval(1, 4), 0.9,
                         "b1"));
  must(fx->b->AppendBase({Datum("hotel2"), Datum("ZAK")}, Interval(5, 8), 0.6,
                         "b2"));
  must(fx->b->AppendBase({Datum("hotel1"), Datum("ZAK")}, Interval(4, 6), 0.7,
                         "b3"));

  fx->theta = JoinCondition::Equals("Loc");
  return fx;
}

std::unique_ptr<TPRelation> MakeRandomRelation(
    LineageManager* manager, std::string name,
    const RandomRelationOptions& options, Random* rng) {
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  schema.AddColumn({"tag", DatumType::kInt64});
  auto rel = std::make_unique<TPRelation>(std::move(name), schema, manager);

  // One chain per (key, tag) fact keeps same-fact intervals disjoint; tags
  // cycle so tuples with equal keys can be concurrently valid.
  int64_t emitted = 0;
  int64_t tag = 0;
  while (emitted < options.num_tuples) {
    const int64_t key = rng->Uniform(0, options.num_keys - 1);
    ++tag;
    TimePoint t = rng->Uniform(0, options.horizon - 1);
    const int64_t chain = 1 + rng->Uniform(0, 2);
    for (int64_t c = 0; c < chain && emitted < options.num_tuples; ++c) {
      const int64_t dur = rng->Uniform(1, options.max_duration);
      const double prob = rng->UniformDouble(0.1, 0.95);
      const Status st = rel->AppendBase({Datum(key), Datum(tag)},
                                        Interval(t, t + dur), prob);
      TPDB_CHECK(st.ok()) << st.ToString();
      t += dur + rng->Uniform(0, 3);
      ++emitted;
    }
  }
  return rel;
}

}  // namespace tpdb::testing
