// Brute-force reference implementations ("oracles") used by the property
// tests. These evaluate the paper's definitions literally — per time point,
// per possible world — with no algorithmic cleverness, so agreement with
// the optimized operators is strong evidence of correctness.
#ifndef TPDB_TESTS_REFERENCE_REFERENCE_H_
#define TPDB_TESTS_REFERENCE_REFERENCE_H_

#include <vector>

#include "tp/operators.h"
#include "tp/overlap_join.h"
#include "tp/plans.h"
#include "tp/tp_relation.h"
#include "tp/window.h"

namespace tpdb::testing {

/// Evaluates Definition 1 (Table I) directly: for every r tuple, walks its
/// interval time point by time point, computing the set of valid θ-matching
/// s tuples at each point and splitting the interval into maximal runs of
/// constant match set. Runs with an empty set become unmatched windows,
/// non-empty runs negating windows; overlapping windows are enumerated per
/// pair. `stage` selects the classes the optimized pipeline would produce:
/// kOverlap = WO + full-interval unmatched, kWuo = WO ∪ WU, kWuon = all.
std::vector<TPWindow> ReferenceWindows(const TPRelation& r,
                                       const TPRelation& s,
                                       const JoinCondition& theta,
                                       WindowStage stage);

/// One tuple of a join result restricted to a time point.
struct SnapshotTuple {
  Row fact;
  double prob = 0.0;
};

/// Snapshot semantics oracle: the TP join result at time point `t`,
/// computed from the snapshots of r and s at t with exact probabilities.
/// This is the defining property of sequenced temporal-probabilistic
/// semantics: the interval-based operator output, restricted to any t,
/// must equal this.
std::vector<SnapshotTuple> ReferenceJoinSnapshot(TPJoinKind kind,
                                                 const TPRelation& r,
                                                 const TPRelation& s,
                                                 const JoinCondition& theta,
                                                 TimePoint t);

/// Restricts an operator result to time point `t`: all tuples whose
/// interval contains t, with their exact probabilities.
std::vector<SnapshotTuple> SnapshotOf(const TPRelation& result, TimePoint t);

/// Canonical sort + approximate equality of snapshots (probability
/// tolerance 1e-9). Returns a human-readable diff on mismatch ("" = equal).
std::string CompareSnapshots(std::vector<SnapshotTuple> expected,
                             std::vector<SnapshotTuple> actual);

}  // namespace tpdb::testing

#endif  // TPDB_TESTS_REFERENCE_REFERENCE_H_
