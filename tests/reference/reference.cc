#include "tests/reference/reference.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lineage/probability.h"

namespace tpdb::testing {

namespace {

/// Indices of s tuples valid at `t` that θ-match `r_fact`.
std::vector<size_t> MatchSetAt(const TPRelation& s, const ThetaMatcher& theta,
                               const Row& r_fact, TimePoint t) {
  std::vector<size_t> out;
  for (size_t j = 0; j < s.size(); ++j) {
    if (!s.tuple(j).interval.Contains(t)) continue;
    if (!theta.Matches(r_fact, s.tuple(j).fact)) continue;
    out.push_back(j);
  }
  return out;
}

}  // namespace

std::vector<TPWindow> ReferenceWindows(const TPRelation& r,
                                       const TPRelation& s,
                                       const JoinCondition& theta,
                                       WindowStage stage) {
  StatusOr<ThetaMatcher> matcher =
      ThetaMatcher::Make(theta, r.fact_schema(), s.fact_schema());
  TPDB_CHECK(matcher.ok()) << matcher.status().ToString();
  LineageManager* manager = r.manager();

  std::vector<TPWindow> windows;
  for (size_t i = 0; i < r.size(); ++i) {
    const TPTuple& rt = r.tuple(i);

    // Overlapping windows: one per θ-matching overlapping pair.
    bool any_match = false;
    for (size_t j = 0; j < s.size(); ++j) {
      const TPTuple& st = s.tuple(j);
      if (!rt.interval.Overlaps(st.interval)) continue;
      if (!matcher->Matches(rt.fact, st.fact)) continue;
      any_match = true;
      TPWindow w;
      w.cls = WindowClass::kOverlapping;
      w.rid = static_cast<int64_t>(i);
      w.fact_r = rt.fact;
      w.fact_s = st.fact;
      w.window = rt.interval.Intersect(st.interval);
      w.r_interval = rt.interval;
      w.lin_r = rt.lineage;
      w.lin_s = st.lineage;
      windows.push_back(std::move(w));
    }

    // Time-point sweep for unmatched / negating runs.
    TimePoint run_start = rt.interval.start;
    std::vector<size_t> run_set =
        MatchSetAt(s, *matcher, rt.fact, rt.interval.start);
    auto emit_run = [&](TimePoint end) {
      const bool empty = run_set.empty();
      // Stage filters: kOverlap keeps only full-interval unmatched windows;
      // kWuo adds partial unmatched; kWuon adds negating.
      if (empty) {
        const bool full = run_start == rt.interval.start && end ==
                          rt.interval.end && !any_match;
        if (stage == WindowStage::kOverlap && !full) return;
      } else {
        if (stage != WindowStage::kWuon) return;
      }
      TPWindow w;
      w.cls = empty ? WindowClass::kUnmatched : WindowClass::kNegating;
      w.rid = static_cast<int64_t>(i);
      w.fact_r = rt.fact;
      w.window = Interval(run_start, end);
      w.r_interval = rt.interval;
      w.lin_r = rt.lineage;
      if (!empty) {
        std::vector<LineageRef> lineages;
        for (const size_t j : run_set) lineages.push_back(s.tuple(j).lineage);
        w.lin_s = manager->OrAll(lineages);
      }
      windows.push_back(std::move(w));
    };
    for (TimePoint t = rt.interval.start + 1; t < rt.interval.end; ++t) {
      std::vector<size_t> here = MatchSetAt(s, *matcher, rt.fact, t);
      if (here != run_set) {
        emit_run(t);
        run_start = t;
        run_set = std::move(here);
      }
    }
    emit_run(rt.interval.end);
  }
  SortWindows(&windows);
  return windows;
}

std::vector<SnapshotTuple> ReferenceJoinSnapshot(TPJoinKind kind,
                                                 const TPRelation& r,
                                                 const TPRelation& s,
                                                 const JoinCondition& theta,
                                                 TimePoint t) {
  StatusOr<ThetaMatcher> matcher =
      ThetaMatcher::Make(theta, r.fact_schema(), s.fact_schema());
  TPDB_CHECK(matcher.ok()) << matcher.status().ToString();
  LineageManager* manager = r.manager();
  ProbabilityEngine prob(manager);
  const size_t n_rf = r.fact_schema().num_columns();
  const size_t n_sf = s.fact_schema().num_columns();

  std::vector<SnapshotTuple> out;

  const bool want_pairs =
      kind != TPJoinKind::kAnti && kind != TPJoinKind::kSemi;
  const bool want_r_side = kind == TPJoinKind::kAnti ||
                           kind == TPJoinKind::kLeftOuter ||
                           kind == TPJoinKind::kFullOuter;
  const bool want_semi = kind == TPJoinKind::kSemi;
  const bool want_s_side = kind == TPJoinKind::kRightOuter ||
                           kind == TPJoinKind::kFullOuter;

  if (want_pairs || want_r_side || want_semi) {
    for (size_t i = 0; i < r.size(); ++i) {
      const TPTuple& rt = r.tuple(i);
      if (!rt.interval.Contains(t)) continue;
      std::vector<size_t> matches = MatchSetAt(s, *matcher, rt.fact, t);
      if (want_semi && !matches.empty()) {
        // Semi join: r true and at least one matching s tuple true.
        std::vector<LineageRef> lineages;
        for (const size_t j : matches) lineages.push_back(s.tuple(j).lineage);
        SnapshotTuple tup;
        tup.fact = rt.fact;
        tup.prob = prob.Probability(
            manager->And(rt.lineage, manager->OrAll(lineages)));
        out.push_back(std::move(tup));
      }
      if (want_pairs) {
        for (const size_t j : matches) {
          SnapshotTuple tup;
          tup.fact = ConcatRows(rt.fact, s.tuple(j).fact);
          tup.prob =
              prob.Probability(manager->And(rt.lineage, s.tuple(j).lineage));
          out.push_back(std::move(tup));
        }
      }
      if (want_r_side) {
        // "matches none of the tuples of the negative relation": r true and
        // every matching s tuple false.
        std::vector<LineageRef> lineages;
        for (const size_t j : matches) lineages.push_back(s.tuple(j).lineage);
        const LineageRef lam =
            manager->AndNot(rt.lineage, manager->OrAll(lineages));
        SnapshotTuple tup;
        tup.fact = kind == TPJoinKind::kAnti
                       ? rt.fact
                       : ConcatRows(rt.fact, NullRow(n_sf));
        tup.prob = prob.Probability(lam);
        out.push_back(std::move(tup));
      }
    }
  }

  if (want_s_side) {
    for (size_t j = 0; j < s.size(); ++j) {
      const TPTuple& st = s.tuple(j);
      if (!st.interval.Contains(t)) continue;
      std::vector<LineageRef> lineages;
      for (size_t i = 0; i < r.size(); ++i) {
        if (!r.tuple(i).interval.Contains(t)) continue;
        if (!matcher->Matches(r.tuple(i).fact, st.fact)) continue;
        lineages.push_back(r.tuple(i).lineage);
      }
      const LineageRef lam =
          manager->AndNot(st.lineage, manager->OrAll(lineages));
      SnapshotTuple tup;
      tup.fact = ConcatRows(NullRow(n_rf), st.fact);
      tup.prob = prob.Probability(lam);
      out.push_back(std::move(tup));
    }
  }

  return out;
}

std::vector<SnapshotTuple> SnapshotOf(const TPRelation& result, TimePoint t) {
  std::vector<SnapshotTuple> out;
  for (size_t i = 0; i < result.size(); ++i) {
    if (!result.tuple(i).interval.Contains(t)) continue;
    out.push_back(SnapshotTuple{result.tuple(i).fact, result.Probability(i)});
  }
  return out;
}

std::string CompareSnapshots(std::vector<SnapshotTuple> expected,
                             std::vector<SnapshotTuple> actual) {
  auto less = [](const SnapshotTuple& a, const SnapshotTuple& b) {
    const int c = CompareRows(a.fact, b.fact);
    if (c != 0) return c < 0;
    return a.prob < b.prob;
  };
  std::sort(expected.begin(), expected.end(), less);
  std::sort(actual.begin(), actual.end(), less);
  std::ostringstream diff;
  if (expected.size() != actual.size()) {
    diff << "size mismatch: expected " << expected.size() << ", got "
         << actual.size() << "\n";
  }
  const size_t n = std::min(expected.size(), actual.size());
  for (size_t i = 0; i < n; ++i) {
    const bool fact_ok =
        CompareRows(expected[i].fact, actual[i].fact) == 0;
    const bool prob_ok = std::fabs(expected[i].prob - actual[i].prob) < 1e-9;
    if (!fact_ok || !prob_ok) {
      diff << "row " << i << ": expected (" << RowToString(expected[i].fact)
           << ", p=" << expected[i].prob << "), got ("
           << RowToString(actual[i].fact) << ", p=" << actual[i].prob
           << ")\n";
    }
  }
  for (size_t i = n; i < expected.size(); ++i)
    diff << "missing: (" << RowToString(expected[i].fact)
         << ", p=" << expected[i].prob << ")\n";
  for (size_t i = n; i < actual.size(); ++i)
    diff << "unexpected: (" << RowToString(actual[i].fact)
         << ", p=" << actual[i].prob << ")\n";
  return diff.str();
}

}  // namespace tpdb::testing
