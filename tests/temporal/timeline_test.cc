#include "temporal/timeline.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tpdb {
namespace {

TEST(Gaps, NoCoverYieldsWholeDomain) {
  const std::vector<Interval> gaps = Gaps(Interval(2, 8), {});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], Interval(2, 8));
}

TEST(Gaps, FullCoverYieldsNothing) {
  EXPECT_TRUE(Gaps(Interval(2, 8), {Interval(0, 10)}).empty());
  EXPECT_TRUE(Gaps(Interval(2, 8), {Interval(2, 5), Interval(5, 8)}).empty());
}

TEST(Gaps, Fig2Example) {
  // a1 = [2,8) covered by b3 [4,6) and b2 [5,8): the unmatched gap is [2,4).
  const std::vector<Interval> gaps =
      Gaps(Interval(2, 8), {Interval(4, 6), Interval(5, 8)});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], Interval(2, 4));
}

TEST(Gaps, MiddleAndTrailingGaps) {
  const std::vector<Interval> gaps =
      Gaps(Interval(0, 20), {Interval(2, 5), Interval(8, 11)});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], Interval(0, 2));
  EXPECT_EQ(gaps[1], Interval(5, 8));
  EXPECT_EQ(gaps[2], Interval(11, 20));
}

TEST(Gaps, UnsortedOverlappingInput) {
  const std::vector<Interval> gaps =
      Gaps(Interval(0, 10), {Interval(6, 9), Interval(1, 4), Interval(3, 7)});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], Interval(0, 1));
  EXPECT_EQ(gaps[1], Interval(9, 10));
}

TEST(Gaps, EmptyDomain) {
  EXPECT_TRUE(Gaps(Interval(), {Interval(1, 5)}).empty());
}

TEST(CoveredRuns, ComplementOfGaps) {
  const Interval domain(0, 20);
  const std::vector<Interval> cover = {Interval(2, 5), Interval(4, 9),
                                       Interval(15, 30)};
  const std::vector<Interval> runs = CoveredRuns(domain, cover);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], Interval(2, 9));
  EXPECT_EQ(runs[1], Interval(15, 20));
}

TEST(Covers, DetectsFullAndPartialCoverage) {
  EXPECT_TRUE(Covers(Interval(2, 8), {Interval(2, 6), Interval(6, 8)}));
  EXPECT_FALSE(Covers(Interval(2, 8), {Interval(2, 6), Interval(7, 8)}));
}

TEST(Coalesce, MergesTouchingAndOverlapping) {
  const std::vector<Interval> out =
      Coalesce({Interval(5, 8), Interval(1, 3), Interval(3, 5)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval(1, 8));
}

TEST(Coalesce, KeepsDisjointApart) {
  const std::vector<Interval> out =
      Coalesce({Interval(1, 3), Interval(4, 6)});
  ASSERT_EQ(out.size(), 2u);
}

TEST(Coalesce, DropsEmptyIntervals) {
  const std::vector<Interval> out =
      Coalesce({Interval(3, 3), Interval(1, 2), Interval()});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval(1, 2));
}

TEST(PairwiseDisjoint, Basics) {
  EXPECT_TRUE(PairwiseDisjoint({}));
  EXPECT_TRUE(PairwiseDisjoint({Interval(1, 3), Interval(3, 5)}));
  EXPECT_FALSE(PairwiseDisjoint({Interval(1, 4), Interval(3, 5)}));
}

TEST(EventPoints, SortedDistinctClipped) {
  const std::vector<Interval> ivs = {Interval(4, 6), Interval(5, 8),
                                     Interval(1, 4)};
  EXPECT_EQ(EventPoints(ivs), (std::vector<TimePoint>{1, 4, 5, 6, 8}));
  const Interval clip(2, 7);
  EXPECT_EQ(EventPoints(ivs, &clip), (std::vector<TimePoint>{2, 4, 5, 6, 7}));
}

TEST(EndpointQueue, PopsInEndOrder) {
  EndpointQueue<int> q;
  q.Push(8, 1);
  q.Push(6, 2);
  q.Push(6, 3);
  q.Push(10, 4);
  EXPECT_EQ(q.MinEnd(), 6);
  q.Pop();
  EXPECT_EQ(q.MinEnd(), 6);
  q.Pop();
  EXPECT_EQ(q.MinEnd(), 8);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(EndpointQueue, ClearEmpties) {
  EndpointQueue<int> q;
  q.Push(5, 1);
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// Property: Gaps ∪ CoveredRuns tile the domain exactly, for random input.
TEST(TimelineProperty, GapsAndRunsTileTheDomain) {
  Random rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const Interval domain(0, 40);
    std::vector<Interval> cover;
    const int n = static_cast<int>(rng.Uniform(0, 8));
    for (int i = 0; i < n; ++i) {
      const TimePoint a = rng.Uniform(-5, 45);
      cover.emplace_back(a, a + rng.Uniform(1, 12));
    }
    std::vector<Interval> pieces = Gaps(domain, cover);
    const std::vector<Interval> runs = CoveredRuns(domain, cover);
    pieces.insert(pieces.end(), runs.begin(), runs.end());
    EXPECT_TRUE(PairwiseDisjoint(pieces));
    EXPECT_TRUE(Covers(domain, pieces));
    int64_t total = 0;
    for (const Interval& piece : pieces) total += piece.duration();
    EXPECT_EQ(total, domain.duration());
  }
}

}  // namespace
}  // namespace tpdb
