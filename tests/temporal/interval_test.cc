#include "temporal/interval.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

TEST(Interval, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.duration(), 0);
}

TEST(Interval, DurationOfHalfOpenInterval) {
  EXPECT_EQ(Interval(7, 10).duration(), 3);  // days 7, 8, 9 — the paper's a2
  EXPECT_EQ(Interval(2, 8).duration(), 6);
  EXPECT_EQ(Interval(5, 5).duration(), 0);
  EXPECT_EQ(Interval(5, 3).duration(), 0);
}

TEST(Interval, ContainsTimePoint) {
  const Interval iv(2, 8);
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(8));  // half-open
  EXPECT_FALSE(iv.Contains(1));
}

TEST(Interval, ContainsInterval) {
  const Interval iv(2, 8);
  EXPECT_TRUE(iv.Contains(Interval(2, 8)));
  EXPECT_TRUE(iv.Contains(Interval(3, 5)));
  EXPECT_FALSE(iv.Contains(Interval(1, 5)));
  EXPECT_FALSE(iv.Contains(Interval(5, 9)));
  EXPECT_FALSE(iv.Contains(Interval()));  // empty contains nothing
}

struct OverlapCase {
  Interval a;
  Interval b;
  bool overlaps;
  Interval intersection;
};

class IntervalOverlapTest : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(IntervalOverlapTest, OverlapAndIntersection) {
  const OverlapCase& c = GetParam();
  EXPECT_EQ(c.a.Overlaps(c.b), c.overlaps);
  EXPECT_EQ(c.b.Overlaps(c.a), c.overlaps);  // symmetric
  EXPECT_EQ(c.a.Intersect(c.b), c.intersection);
  EXPECT_EQ(c.b.Intersect(c.a), c.intersection);
}

INSTANTIATE_TEST_SUITE_P(
    AllenRelations, IntervalOverlapTest,
    ::testing::Values(
        // before / after
        OverlapCase{{1, 3}, {5, 8}, false, {}},
        // meets (half-open: no shared chronon)
        OverlapCase{{1, 5}, {5, 8}, false, {}},
        // overlaps
        OverlapCase{{1, 6}, {4, 9}, true, {4, 6}},
        // starts
        OverlapCase{{2, 5}, {2, 9}, true, {2, 5}},
        // during
        OverlapCase{{3, 5}, {1, 9}, true, {3, 5}},
        // finishes
        OverlapCase{{6, 9}, {1, 9}, true, {6, 9}},
        // equals
        OverlapCase{{2, 8}, {2, 8}, true, {2, 8}},
        // single-chronon overlap
        OverlapCase{{4, 6}, {5, 8}, true, {5, 6}}));

TEST(Interval, MeetsRelation) {
  EXPECT_TRUE(Interval(1, 5).Meets(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 5).Meets(Interval(6, 9)));
  EXPECT_FALSE(Interval(1, 5).Meets(Interval(4, 9)));
}

TEST(Interval, SpanCoversBoth) {
  EXPECT_EQ(Interval(1, 4).Span(Interval(6, 9)), Interval(1, 9));
  EXPECT_EQ(Interval(1, 4).Span(Interval()), Interval(1, 4));
  EXPECT_EQ(Interval().Span(Interval(1, 4)), Interval(1, 4));
}

TEST(Interval, EmptyIntervalsCompareEqual) {
  EXPECT_EQ(Interval(3, 3), Interval(9, 2));
  EXPECT_EQ(Interval(), Interval(5, 5));
}

TEST(Interval, LexicographicOrder) {
  EXPECT_LT(Interval(1, 9), Interval(2, 3));
  EXPECT_LT(Interval(1, 3), Interval(1, 9));
}

TEST(Interval, ToStringRendering) {
  EXPECT_EQ(Interval(7, 10).ToString(), "[7,10)");
  EXPECT_EQ(Interval().ToString(), "[)");
}

TEST(Interval, IntersectionOfDisjointIsEmpty) {
  EXPECT_TRUE(Interval(1, 3).Intersect(Interval(3, 6)).empty());
  EXPECT_TRUE(Interval(1, 3).Intersect(Interval(8, 9)).empty());
}

TEST(Interval, NegativeTimePoints) {
  const Interval iv(-10, -2);
  EXPECT_EQ(iv.duration(), 8);
  EXPECT_TRUE(iv.Contains(-10));
  EXPECT_FALSE(iv.Contains(-2));
  EXPECT_EQ(iv.Intersect(Interval(-5, 5)), Interval(-5, -2));
}

}  // namespace
}  // namespace tpdb
