// Tracing invariants: spans nest, the chrome://tracing JSON is sound, and
// — the load-bearing property — a traced query's plan-node spans mirror
// the Explain "Physical plan (est | actual)" tree node-for-node: same
// node count, same pre-order, same actual row counts, because both views
// read the same NodeStats of the same run.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"
#include "obs/metrics.h"
#include "obs/slow_query.h"

namespace tpdb::obs {
namespace {

/// The "actual N rows" sequence of a physical-plan rendering, in line
/// (pre-)order — the reference the plan spans must match element-wise.
std::vector<uint64_t> ActualRowsInPlanText(const std::string& plan) {
  std::vector<uint64_t> rows;
  size_t pos = 0;
  while ((pos = plan.find("(actual ", pos)) != std::string::npos) {
    pos += 8;
    rows.push_back(std::strtoull(plan.c_str() + pos, nullptr, 10));
  }
  return rows;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(123);
    UniformWorkloadOptions options;
    options.num_tuples = 400;
    options.num_facts = 60;
    options.history_length = 1500;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db_.manager(), name, options, &rng);
      ASSERT_TRUE(rel.ok()) << rel.status().ToString();
      ASSERT_TRUE(db_.Register(std::move(*rel)).ok());
    }
  }

  TPDatabase db_;
};

TEST(TraceContextTest, SpansNestAndParentsResolve) {
  TraceContext trace(7);
  EXPECT_EQ(trace.trace_id(), 7u);
  const uint64_t outer = trace.StartSpan("outer");
  const uint64_t inner = trace.StartSpan("inner");
  trace.EndSpan(inner);
  const uint64_t sibling = trace.StartSpan("sibling");
  trace.EndSpan(sibling);
  trace.EndSpan(outer);
  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[outer - 1].parent, 0u);
  EXPECT_EQ(trace.spans()[inner - 1].parent, outer);
  EXPECT_EQ(trace.spans()[sibling - 1].parent, outer);
  EXPECT_TRUE(trace.PlanSpans().empty());
}

TEST(TraceContextTest, ChromeJsonEscapesAndEmbedsPlan) {
  TraceContext trace(42);
  TraceSpan span;
  span.name = "scan \"r\"";
  span.detail = "line\nbreak";
  span.rows = 5;
  span.plan_node = true;
  trace.AddSpan(span);
  const std::string json = trace.ToChromeJson("Physical plan\n  Scan r");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":5"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos);
  // Raw quotes and newlines must never survive into the JSON text.
  EXPECT_NE(json.find("scan \\\"r\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos) << json;
  EXPECT_NE(json.find("\"physical_plan\":\"Physical plan\\n  Scan r\""),
            std::string::npos)
      << json;
}

TEST_F(TraceTest, PlanSpansMatchExplainTreeNodeForNode) {
  Session session(&db_);
  const std::vector<std::string> queries = {
      "SELECT * FROM r WHERE key < 40",
      "SELECT * FROM r INNER JOIN s ON key WHERE key < 60 ORDER BY key",
      "r UNION s",
  };
  for (const std::string& sql : queries) {
    StatusOr<Session::TraceResult> traced = session.Trace(sql, 9);
    ASSERT_TRUE(traced.ok()) << sql << ": " << traced.status().ToString();
    const std::vector<uint64_t> expected =
        ActualRowsInPlanText(traced->physical_plan);
    ASSERT_FALSE(expected.empty()) << traced->physical_plan;
    const std::vector<const TraceSpan*> plan_spans = traced->trace.PlanSpans();
    ASSERT_EQ(plan_spans.size(), expected.size())
        << sql << "\n" << traced->physical_plan;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(plan_spans[i]->rows, expected[i]) << sql << " node " << i;
      // Each plan span's detail is the node's Label(), which the Explain
      // rendering prints verbatim on the matching line.
      EXPECT_NE(traced->physical_plan.find(plan_spans[i]->detail),
                std::string::npos)
          << plan_spans[i]->detail;
    }
    // The phase skeleton is present and the plan spans hang under execute.
    const std::vector<TraceSpan>& spans = traced->trace.spans();
    ASSERT_GE(spans.size(), 4u);
    EXPECT_EQ(spans[0].name, "query");
    EXPECT_EQ(spans[1].name, "parse");
    uint64_t execute_id = 0;
    for (const TraceSpan& span : spans)
      if (span.name == "execute") execute_id = span.id;
    ASSERT_NE(execute_id, 0u);
    EXPECT_EQ(plan_spans.front()->parent, execute_id);
  }
}

TEST_F(TraceTest, TraceRowsMatchUntracedQuery) {
  Session session(&db_);
  const std::string sql = "SELECT * FROM r WHERE key < 25";
  StatusOr<TPRelation> plain = session.Query(sql);
  ASSERT_TRUE(plain.ok());
  StatusOr<Session::TraceResult> traced = session.Trace(sql);
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(traced->rows, plain->size());
  const std::string tree = traced->trace.ToTreeString();
  EXPECT_NE(tree.find("query"), std::string::npos) << tree;
  EXPECT_NE(tree.find("ms"), std::string::npos);
}

TEST_F(TraceTest, SlowQueryLogCountsWhenThresholdCrossed) {
  Counter* slow = MetricsRegistry::Default().counter(
      "tpdb_engine_slow_queries_total", "engine", "");
  const uint64_t before = slow->Value();
  SlowQueryLog::SetThresholdMs(0.0);  // every finished query is "slow"
  Session session(&db_);
  ASSERT_TRUE(session.Query("SELECT * FROM r WHERE key < 10").ok());
  SlowQueryLog::SetThresholdMs(-1.0);  // back to disabled
  if (kMetricsCompiledIn)
    EXPECT_GT(slow->Value(), before);
  else
    EXPECT_EQ(slow->Value(), before);
  // Disabled again: no further counting.
  const uint64_t after = slow->Value();
  ASSERT_TRUE(session.Query("SELECT * FROM r WHERE key < 10").ok());
  EXPECT_EQ(slow->Value(), after);
}

}  // namespace
}  // namespace tpdb::obs
