// Metrics core invariants: the log-bucketed histogram's quantiles must
// track an exact sorted reference within the bucket-width bound (12.5%
// relative beyond the exact range), shard merges must lose nothing,
// and the registry must stay consistent under concurrent hammering and
// concurrent renders (the TSAN job runs this suite).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace tpdb::obs {
namespace {

/// Exact quantile of a sorted sample, matching HistogramData::Quantile's
/// convention (index q * (n - 1), interpolated).
double ExactQuantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double target = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(target);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = target - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

TEST(MetricsTest, BucketBoundsContainTheirValues) {
  const std::vector<uint64_t> probes = {
      0,  1,  7,   8,    9,    15,   16,     17,        1000,
      4096, 4097, 65535, 1u << 20, (1u << 20) + 12345, ~uint64_t{0} >> 1};
  for (const uint64_t v : probes) {
    const uint32_t idx = HistBucket(v);
    ASSERT_LT(idx, kHistNumBuckets) << v;
    EXPECT_LE(HistBucketLower(idx), v) << v;
    EXPECT_GT(HistBucketUpper(idx), v) << v;
  }
  // Bucket width is at most 12.5% of the lower bound beyond the exact
  // range — the quantile error bound rests on exactly this.
  for (uint32_t idx = kHistSubBuckets; idx < kHistNumBuckets - 1; ++idx) {
    const uint64_t lower = HistBucketLower(idx);
    const uint64_t upper = HistBucketUpper(idx);
    EXPECT_LE(upper - lower, lower / kHistSubBuckets) << "bucket " << idx;
  }
}

TEST(MetricsTest, SmallValueQuantilesAreExact) {
  HistogramData h;
  for (uint64_t v = 0; v <= 7; ++v)
    for (int i = 0; i < 10; ++i) h.Record(v);
  // Values 0..7 land in width-1 buckets, so any quantile interpolates
  // between exact integers.
  std::vector<uint64_t> sorted;
  for (uint64_t v = 0; v <= 7; ++v)
    for (int i = 0; i < 10; ++i) sorted.push_back(v);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
    EXPECT_NEAR(h.Quantile(q), ExactQuantile(sorted, q), 1.0) << "q=" << q;
}

TEST(MetricsTest, QuantilesTrackSortedReferenceWithinBucketBound) {
  Random rng(4242);
  HistogramData h;
  std::vector<uint64_t> values;
  values.reserve(20000);
  // A heavy-tailed latency-like distribution spanning several octaves.
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(
        1 + rng.Uniform(0, 99) * rng.Uniform(0, 99) * rng.Uniform(1, 50));
    values.push_back(v);
    h.Record(v);
  }
  EXPECT_EQ(h.count, values.size());
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double est = h.Quantile(q);
    // One bucket of slack: 12.5% of the value plus the width-1 exact range.
    EXPECT_NEAR(est, exact, exact * 0.13 + 1.0) << "q=" << q;
  }
  EXPECT_NEAR(h.Mean(),
              static_cast<double>(h.sum) / static_cast<double>(h.count),
              1e-9);
  EXPECT_GE(h.MaxEstimate(), values.back());
}

TEST(MetricsTest, MergeEqualsCombinedRecording) {
  Random rng(7);
  HistogramData parts[4];
  HistogramData combined;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = static_cast<uint64_t>(rng.Uniform(0, 999'999));
    parts[i % 4].Record(v);
    combined.Record(v);
  }
  HistogramData merged;
  for (const HistogramData& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count, combined.count);
  EXPECT_EQ(merged.sum, combined.sum);
  EXPECT_EQ(merged.buckets, combined.buckets);
  for (const double q : {0.25, 0.5, 0.75, 0.99})
    EXPECT_EQ(merged.Quantile(q), combined.Quantile(q));
}

TEST(MetricsTest, CounterShardsSumExactlyUnderConcurrency) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  for (std::thread& t : threads) t.join();
  if (kMetricsCompiledIn)
    EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  else
    EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, GaugeSetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  if (kMetricsCompiledIn)
    EXPECT_EQ(g.Value(), 12);
  else
    EXPECT_EQ(g.Value(), 0);
}

TEST(MetricsTest, HistogramSnapshotLosesNothingUnderConcurrency) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i)
        h.Record(static_cast<uint64_t>(t) * 1000 + i % 997);
    });
  for (std::thread& t : threads) t.join();
  const HistogramData snap = h.Snapshot();
  if (kMetricsCompiledIn)
    EXPECT_EQ(snap.count, kThreads * kPerThread);
  else
    EXPECT_EQ(snap.count, 0u);
}

TEST(MetricsTest, RegistryReturnsSameMetricForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.counter("test_counter_total", "test", "help a");
  Counter* b = registry.counter("test_counter_total", "test", "ignored");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.gauge("test_gauge", "test", "");
  Gauge* g2 = registry.gauge("test_gauge", "test", "");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.histogram("test_us", "test", "");
  Histogram* h2 = registry.histogram("test_us", "test", "");
  EXPECT_EQ(h1, h2);
  const std::vector<MetricsRegistry::MetricInfo> list = registry.List();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].name, "test_counter_total");
  EXPECT_STREQ(list[0].kind, "counter");
}

TEST(MetricsTest, PrometheusRenderingShape) {
  MetricsRegistry registry;
  registry.counter("demo_ops_total", "demo", "Operations.")->Add(41);
  registry.counter("demo_ops_total", "demo", "")->Add(1);
  registry.gauge("demo_depth", "demo", "Depth.")->Set(-3);
  Histogram* h = registry.histogram("demo_us", "demo", "Latency.");
  h->Record(5);
  h->Record(100);
  const std::string text = registry.RenderPrometheus();
  if (!kMetricsCompiledIn) {
    EXPECT_NE(text.find("demo_ops_total 0"), std::string::npos) << text;
    return;
  }
  EXPECT_NE(text.find("# HELP demo_ops_total Operations."), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE demo_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_ops_total 42"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_depth -3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE demo_us histogram"), std::string::npos);
  EXPECT_NE(text.find("demo_us_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_us_sum 105"), std::string::npos) << text;
  EXPECT_NE(text.find("demo_us_count 2"), std::string::npos) << text;
}

TEST(MetricsTest, JsonRenderingShape) {
  MetricsRegistry registry;
  registry.counter("j_ops_total", "demo", "ops")->Add(7);
  Histogram* h = registry.histogram("j_us", "demo", "");
  for (uint64_t i = 0; i < 100; ++i) h->Record(i);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (kMetricsCompiledIn) {
    EXPECT_NE(json.find("\"j_ops_total\":7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
  }
}

TEST(MetricsTest, JsonEscaping) {
  std::string out;
  AppendJsonEscaped("with \"quotes\", back\\slash and\nnewline\tctrl", &out);
  EXPECT_EQ(out,
            "\"with \\\"quotes\\\", back\\\\slash and\\nnewline\\tctrl\"");
}

TEST(MetricsTest, ConcurrentHammerAndRender) {
  // Writers on all three metric kinds racing a reader that renders both
  // expositions — the shape TSAN must find clean.
  MetricsRegistry registry;
  Counter* c = registry.counter("race_total", "test", "");
  Gauge* g = registry.gauge("race_depth", "test", "");
  Histogram* h = registry.histogram("race_us", "test", "");
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      for (int i = 0; i < 20'000; ++i) {
        c->Add();
        g->Add(1);
        h->Record(static_cast<uint64_t>(i));
        g->Sub(1);
      }
    });
  for (int r = 0; r < 20; ++r) {
    const std::string prom = registry.RenderPrometheus();
    const std::string json = registry.RenderJson();
    EXPECT_FALSE(prom.empty());
    EXPECT_FALSE(json.empty());
  }
  for (std::thread& t : writers) t.join();
  if (kMetricsCompiledIn) EXPECT_EQ(c->Value(), 80'000u);
}

}  // namespace
}  // namespace tpdb::obs
