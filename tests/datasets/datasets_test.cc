// Tests of the workload generators: determinism, validity (the TP
// duplicate-free invariant), and the dataset characteristics the paper's
// evaluation depends on (distinct-value counts, match rates).
#include <gtest/gtest.h>

#include <set>

#include "datasets/generator.h"
#include "datasets/meteo.h"
#include "datasets/webkit.h"

namespace tpdb {
namespace {

TEST(ChainGenerator, ProducesDisjointChain) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &mgr);
  Random rng(1);
  ChainOptions chain;
  chain.start_lo = 0;
  chain.start_hi = 100;
  chain.gap_probability = 0.5;
  ASSERT_TRUE(AppendChain(&rel, {Datum(static_cast<int64_t>(7))}, 20, chain,
                          &rng)
                  .ok());
  EXPECT_EQ(rel.size(), 20u);
  EXPECT_TRUE(rel.Validate().ok());
  // Chain is temporally increasing.
  for (size_t i = 1; i < rel.size(); ++i)
    EXPECT_GE(rel.tuple(i).interval.start, rel.tuple(i - 1).interval.end);
}

TEST(UniformWorkload, SizeValidityDeterminism) {
  LineageManager mgr1;
  Random rng1(99);
  UniformWorkloadOptions opts;
  opts.num_tuples = 500;
  opts.num_facts = 40;
  StatusOr<TPRelation> a = MakeUniformWorkload(&mgr1, "u", opts, &rng1);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 500u);
  EXPECT_TRUE(a->Validate().ok());

  LineageManager mgr2;
  Random rng2(99);
  StatusOr<TPRelation> b = MakeUniformWorkload(&mgr2, "u", opts, &rng2);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(CompareRows(a->tuple(i).fact, b->tuple(i).fact), 0);
    EXPECT_EQ(a->tuple(i).interval, b->tuple(i).interval);
  }
}

TEST(UniformWorkload, SkewConcentratesFacts) {
  LineageManager mgr;
  Random rng(5);
  UniformWorkloadOptions opts;
  opts.num_tuples = 2000;
  opts.num_facts = 100;
  opts.fact_skew = 1.3;
  StatusOr<TPRelation> rel = MakeUniformWorkload(&mgr, "z", opts, &rng);
  ASSERT_TRUE(rel.ok());
  int64_t low_keys = 0;
  for (const TPTuple& t : rel->tuples())
    if (t.fact[0].AsInt64() < 10) ++low_keys;
  EXPECT_GT(low_keys, 1000);
}

TEST(WebkitDataset, ShapeMatchesDesignContract) {
  LineageManager mgr;
  WebkitOptions opts;
  opts.num_tuples = 2000;
  StatusOr<WebkitDataset> ds = MakeWebkitDataset(&mgr, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->r.size(), 2000u);
  EXPECT_EQ(ds->s.size(), 2000u);
  EXPECT_TRUE(ds->r.Validate().ok());
  EXPECT_TRUE(ds->s.Validate().ok());

  // Many distinct join values: within a factor of the target N/versions.
  std::set<int64_t> files;
  for (const TPTuple& t : ds->r.tuples()) files.insert(t.fact[0].AsInt64());
  EXPECT_GT(files.size(), 150u);  // >> Meteo's ~50 metrics

  // Version chains are adjacent: consecutive same-file intervals meet.
  for (size_t i = 1; i < ds->r.size(); ++i) {
    if (CompareRows(ds->r.tuple(i).fact, ds->r.tuple(i - 1).fact) != 0)
      continue;
    EXPECT_EQ(ds->r.tuple(i - 1).interval.end, ds->r.tuple(i).interval.start);
  }
}

TEST(WebkitDataset, Deterministic) {
  LineageManager m1;
  LineageManager m2;
  WebkitOptions opts;
  opts.num_tuples = 300;
  StatusOr<WebkitDataset> a = MakeWebkitDataset(&m1, opts);
  StatusOr<WebkitDataset> b = MakeWebkitDataset(&m2, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->r.size(), b->r.size());
  for (size_t i = 0; i < a->r.size(); ++i)
    EXPECT_EQ(a->r.tuple(i).interval, b->r.tuple(i).interval);
}

TEST(MeteoDataset, SmallUniformJoinDomain) {
  LineageManager mgr;
  MeteoOptions opts;
  opts.num_tuples = 2000;
  opts.num_metrics = 50;
  StatusOr<MeteoDataset> ds = MakeMeteoDataset(&mgr, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->r.size(), 2000u);
  EXPECT_TRUE(ds->r.Validate().ok());
  EXPECT_TRUE(ds->s.Validate().ok());

  // Distinct metric count is small and roughly uniform.
  std::map<int64_t, int64_t> metric_counts;
  const int metric_col = ds->r.fact_schema().IndexOf("metric");
  ASSERT_GE(metric_col, 0);
  for (const TPTuple& t : ds->r.tuples())
    ++metric_counts[t.fact[metric_col].AsInt64()];
  EXPECT_LE(metric_counts.size(), 50u);
  EXPECT_GE(metric_counts.size(), 40u);
  for (const auto& [metric, count] : metric_counts)
    EXPECT_GT(count, 10) << metric;
}

TEST(MeteoDataset, ThetaExcludesSameStation) {
  LineageManager mgr;
  MeteoOptions opts;
  opts.num_tuples = 100;
  StatusOr<MeteoDataset> ds = MakeMeteoDataset(&mgr, opts);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(ds->theta.predicate != nullptr);
  const Row same = {Datum(static_cast<int64_t>(1)),
                    Datum(static_cast<int64_t>(5))};
  const Row other = {Datum(static_cast<int64_t>(2)),
                     Datum(static_cast<int64_t>(5))};
  EXPECT_FALSE(ds->theta.predicate(same, same));
  EXPECT_TRUE(ds->theta.predicate(same, other));
}

TEST(Generators, RejectBadOptions) {
  LineageManager mgr;
  Random rng(1);
  UniformWorkloadOptions bad;
  bad.num_facts = 0;
  EXPECT_FALSE(MakeUniformWorkload(&mgr, "x", bad, &rng).ok());
  WebkitOptions wbad;
  wbad.num_tuples = 0;
  EXPECT_FALSE(MakeWebkitDataset(&mgr, wbad).ok());
  MeteoOptions mbad;
  mbad.num_metrics = 0;
  EXPECT_FALSE(MakeMeteoDataset(&mgr, mbad).ok());
}

}  // namespace
}  // namespace tpdb
