#include "datasets/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Schema BookingSchema() {
  Schema s;
  s.AddColumn({"name", DatumType::kString});
  s.AddColumn({"loc", DatumType::kString});
  return s;
}

TEST(Csv, WriteReadRoundTrip) {
  LineageManager mgr;
  TPRelation rel("a", BookingSchema(), &mgr);
  ASSERT_TRUE(rel.AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                             0.7)
                  .ok());
  ASSERT_TRUE(rel.AppendBase({Datum("Jim"), Datum("WEN")}, Interval(7, 10),
                             0.8)
                  .ok());
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteTPRelationCsv(rel, path).ok());

  LineageManager mgr2;
  StatusOr<TPRelation> back =
      ReadTPRelationCsv(path, "a2", BookingSchema(), &mgr2);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ(back->tuple(0).fact[0].AsString(), "Ann");
  EXPECT_EQ(back->tuple(0).interval, Interval(2, 8));
  EXPECT_NEAR(back->Probability(0), 0.7, 1e-12);
  EXPECT_EQ(back->tuple(1).interval, Interval(7, 10));
  EXPECT_NEAR(back->Probability(1), 0.8, 1e-12);
  std::remove(path.c_str());
}

TEST(Csv, ReadHandWrittenWithIntColumns) {
  const std::string path = TempPath("hand.csv");
  {
    std::ofstream out(path);
    out << "station,metric,ts,te,p\n";
    out << "3,14,100,200,0.25\n";
    out << " 4 , 15 , 300 , 350 , 0.5 \n";  // whitespace tolerated
  }
  Schema schema;
  schema.AddColumn({"station", DatumType::kInt64});
  schema.AddColumn({"metric", DatumType::kInt64});
  LineageManager mgr;
  StatusOr<TPRelation> rel = ReadTPRelationCsv(path, "m", schema, &mgr);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 2u);
  EXPECT_EQ(rel->tuple(0).fact[0].AsInt64(), 3);
  EXPECT_EQ(rel->tuple(1).fact[1].AsInt64(), 15);
  EXPECT_EQ(rel->tuple(1).interval, Interval(300, 350));
  std::remove(path.c_str());
}

TEST(Csv, MissingFileFails) {
  Schema schema;
  LineageManager mgr;
  EXPECT_FALSE(
      ReadTPRelationCsv("/nonexistent/nope.csv", "x", schema, &mgr).ok());
}

TEST(Csv, WrongArityFails) {
  const std::string path = TempPath("bad_arity.csv");
  {
    std::ofstream out(path);
    out << "a,ts,te,p\n";
    out << "1,2\n";
  }
  Schema schema;
  schema.AddColumn({"a", DatumType::kInt64});
  LineageManager mgr;
  const StatusOr<TPRelation> rel = ReadTPRelationCsv(path, "x", schema, &mgr);
  EXPECT_FALSE(rel.ok());
  std::remove(path.c_str());
}

TEST(Csv, InvalidIntervalFails) {
  const std::string path = TempPath("bad_interval.csv");
  {
    std::ofstream out(path);
    out << "a,ts,te,p\n";
    out << "1,9,2,0.5\n";  // te < ts
  }
  Schema schema;
  schema.AddColumn({"a", DatumType::kInt64});
  LineageManager mgr;
  EXPECT_FALSE(ReadTPRelationCsv(path, "x", schema, &mgr).ok());
  std::remove(path.c_str());
}

TEST(Csv, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  {
    std::ofstream out(path);
    out << "a,ts,te,p\n\n";
    out << "1,2,5,0.5\n\n";
  }
  Schema schema;
  schema.AddColumn({"a", DatumType::kInt64});
  LineageManager mgr;
  StatusOr<TPRelation> rel = ReadTPRelationCsv(path, "x", schema, &mgr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpdb
