// Unit tests of the basic Volcano operators: scan, filter, project, sort,
// union-all, dedup, materialize, plus schema/row utilities.
#include <gtest/gtest.h>

#include "engine/dedup.h"
#include "engine/filter.h"
#include "engine/materialize.h"
#include "engine/project.h"
#include "engine/scan.h"
#include "engine/sort.h"
#include "engine/union_all.h"

namespace tpdb {
namespace {

Table MakeNumbersTable() {
  Table t;
  t.schema.AddColumn({"id", DatumType::kInt64});
  t.schema.AddColumn({"name", DatumType::kString});
  t.rows = {
      {Datum(static_cast<int64_t>(3)), Datum("c")},
      {Datum(static_cast<int64_t>(1)), Datum("a")},
      {Datum(static_cast<int64_t>(2)), Datum("b")},
      {Datum(static_cast<int64_t>(1)), Datum("a")},
  };
  return t;
}

TEST(Schema, IndexOfAndAdd) {
  Schema s;
  EXPECT_EQ(s.IndexOf("x"), -1);
  EXPECT_EQ(s.AddColumn({"x", DatumType::kInt64}), 0);
  EXPECT_EQ(s.AddColumn({"y", DatumType::kString}), 1);
  EXPECT_EQ(s.IndexOf("y"), 1);
  EXPECT_EQ(s.num_columns(), 2u);
}

TEST(Schema, ConcatDisambiguatesNames) {
  Schema a;
  a.AddColumn({"k", DatumType::kInt64});
  Schema b;
  b.AddColumn({"k", DatumType::kInt64});
  b.AddColumn({"v", DatumType::kDouble});
  const Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 3u);
  EXPECT_EQ(c.column(1).name, "k_r");
  EXPECT_EQ(c.IndexOf("v"), 2);
}

TEST(Schema, EqualityAndToString) {
  Schema a;
  a.AddColumn({"x", DatumType::kInt64});
  Schema b;
  b.AddColumn({"x", DatumType::kInt64});
  EXPECT_TRUE(a == b);
  b.AddColumn({"y", DatumType::kLineage});
  EXPECT_FALSE(a == b);
  EXPECT_EQ(b.ToString(), "x:int64, y:lineage");
}

TEST(RowUtils, CompareConcatNull) {
  const Row a = {Datum(static_cast<int64_t>(1))};
  const Row b = {Datum(static_cast<int64_t>(2))};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
  EXPECT_LT(CompareRows(a, ConcatRows(a, b)), 0);  // prefix sorts first
  EXPECT_EQ(ConcatRows(a, b).size(), 2u);
  EXPECT_EQ(NullRow(3).size(), 3u);
  EXPECT_TRUE(NullRow(3)[1].is_null());
  EXPECT_EQ(RowToString(ConcatRows(a, b)), "1 | 2");
}

TEST(TableScan, ProducesAllRowsAndSupportsReopen) {
  const Table t = MakeNumbersTable();
  TableScan scan(&t);
  EXPECT_EQ(Drain(&scan), 4u);
  EXPECT_EQ(Drain(&scan), 4u);  // reopen
}

TEST(Filter, KeepsOnlyMatchingRows) {
  const Table t = MakeNumbersTable();
  Filter filter(std::make_unique<TableScan>(&t),
                Eq(Col(0), Lit(Datum(static_cast<int64_t>(1)))));
  const Table out = Materialize(&filter);
  ASSERT_EQ(out.size(), 2u);
  for (const Row& row : out.rows) EXPECT_EQ(row[0].AsInt64(), 1);
}

TEST(Filter, NullPredicateDropsRow) {
  Table t;
  t.schema.AddColumn({"x", DatumType::kInt64});
  t.rows = {{Datum(static_cast<int64_t>(1))}, {Datum::Null()}};
  Filter filter(std::make_unique<TableScan>(&t),
                Eq(Col(0), Lit(Datum(static_cast<int64_t>(1)))));
  EXPECT_EQ(Materialize(&filter).size(), 1u);
}

TEST(Project, SelectsReordersRenames) {
  const Table t = MakeNumbersTable();
  Project project(std::make_unique<TableScan>(&t), {1, 0}, {"n", "i"});
  const Table out = Materialize(&project);
  EXPECT_EQ(out.schema.ToString(), "n:string, i:int64");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.rows[0][0].AsString(), "c");
  EXPECT_EQ(out.rows[0][1].AsInt64(), 3);
}

TEST(Sort, OrdersByKeys) {
  const Table t = MakeNumbersTable();
  Sort sort(std::make_unique<TableScan>(&t), {{0, true}});
  const Table out = Materialize(&sort);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(out.rows[3][0].AsInt64(), 3);
}

TEST(Sort, DescendingAndMultiKey) {
  const Table t = MakeNumbersTable();
  Sort sort(std::make_unique<TableScan>(&t), {{0, false}, {1, true}});
  const Table out = Materialize(&sort);
  EXPECT_EQ(out.rows[0][0].AsInt64(), 3);
  EXPECT_EQ(out.rows[3][0].AsInt64(), 1);
}

TEST(Sort, StableForEqualKeys) {
  Table t;
  t.schema.AddColumn({"k", DatumType::kInt64});
  t.schema.AddColumn({"seq", DatumType::kInt64});
  for (int64_t i = 0; i < 6; ++i)
    t.rows.push_back({Datum(static_cast<int64_t>(0)), Datum(i)});
  Sort sort(std::make_unique<TableScan>(&t), {{0, true}});
  const Table out = Materialize(&sort);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(out.rows[i][1].AsInt64(), i);
}

TEST(UnionAll, ConcatenatesChildren) {
  const Table t = MakeNumbersTable();
  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<TableScan>(&t));
  children.push_back(std::make_unique<TableScan>(&t));
  UnionAll u(std::move(children));
  EXPECT_EQ(Drain(&u), 8u);
}

TEST(Dedup, RemovesExactDuplicates) {
  const Table t = MakeNumbersTable();  // contains (1, "a") twice
  Dedup dedup(std::make_unique<TableScan>(&t));
  const Table out = Materialize(&dedup);
  EXPECT_EQ(out.size(), 3u);
  // Output is sorted.
  EXPECT_EQ(out.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(out.rows[2][0].AsInt64(), 3);
}

TEST(Materialize, PreservesSchemaAndOrder) {
  const Table t = MakeNumbersTable();
  TableScan scan(&t);
  const Table out = Materialize(&scan);
  EXPECT_TRUE(out.schema == t.schema);
  ASSERT_EQ(out.size(), t.size());
  for (size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(CompareRows(out.rows[i], t.rows[i]), 0);
}

TEST(Pipeline, ComposedOperatorsWork) {
  // σ(id <= 2) then π(name) then sort then dedup over a doubled input.
  const Table t = MakeNumbersTable();
  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<TableScan>(&t));
  children.push_back(std::make_unique<TableScan>(&t));
  OperatorPtr plan = std::make_unique<UnionAll>(std::move(children));
  plan = std::make_unique<Filter>(
      std::move(plan), Le(Col(0), Lit(Datum(static_cast<int64_t>(2)))));
  plan = std::make_unique<Project>(std::move(plan), std::vector<int>{1});
  plan = std::make_unique<Dedup>(std::move(plan));
  const Table out = Materialize(plan.get());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows[0][0].AsString(), "a");
  EXPECT_EQ(out.rows[1][0].AsString(), "b");
}

}  // namespace
}  // namespace tpdb
