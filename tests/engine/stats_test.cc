#include "engine/stats.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datasets/meteo.h"
#include "datasets/webkit.h"
#include "tp/overlap_join.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

Table SmallTable() {
  Table t;
  t.schema.AddColumn({"k", DatumType::kInt64});
  t.schema.AddColumn({"ts", DatumType::kInt64});
  t.schema.AddColumn({"te", DatumType::kInt64});
  auto I = [](int64_t v) { return Datum(v); };
  t.rows = {
      {I(1), I(0), I(10)},
      {I(1), I(10), I(20)},
      {I(2), I(5), I(15)},
      {Datum::Null(), I(0), I(5)},
  };
  return t;
}

TEST(TableStats, CountsRowsDistinctAndNulls) {
  const TableStats stats = TableStats::Compute(SmallTable(), 1, 2);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.columns[0].distinct_values, 2u);
  EXPECT_NEAR(stats.columns[0].null_fraction, 0.25, 1e-12);
  EXPECT_EQ(stats.extent, Interval(0, 20));
  EXPECT_NEAR(stats.avg_duration, (10 + 10 + 10 + 5) / 4.0, 1e-12);
  EXPECT_NEAR(stats.avg_concurrency, 35.0 / 20.0, 1e-12);
}

TEST(TableStats, EmptyTable) {
  Table t;
  t.schema.AddColumn({"k", DatumType::kInt64});
  const TableStats stats = TableStats::Compute(t);
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_EQ(stats.columns[0].distinct_values, 0u);
  EXPECT_TRUE(stats.extent.empty());
}

TEST(EstimateOverlapJoinPairs, SelectiveKeyShrinksEstimate) {
  const TableStats stats = TableStats::Compute(SmallTable(), 1, 2);
  const double with_key = EstimateOverlapJoinPairs(stats, stats, {{0, 0}});
  const double without_key = EstimateOverlapJoinPairs(stats, stats, {});
  EXPECT_LT(with_key, without_key);
  EXPECT_GT(with_key, 0.0);
}

TEST(PreferPartitionedJoin, NoKeysMeansNestedLoop) {
  const TableStats stats = TableStats::Compute(SmallTable(), 1, 2);
  EXPECT_FALSE(PreferPartitionedJoin(stats, stats, {}));
  EXPECT_TRUE(PreferPartitionedJoin(stats, stats, {{0, 0}}));
}

TEST(AutoAlgorithm, MatchesExplicitChoicesOnFig1SizedData) {
  // The kAuto plan must produce the same windows as both explicit plans.
  LineageManager manager;
  WebkitOptions opts;
  opts.num_tuples = 300;
  StatusOr<WebkitDataset> ds = MakeWebkitDataset(&manager, opts);
  ASSERT_TRUE(ds.ok());
  StatusOr<std::vector<TPWindow>> autow = ComputeWindows(
      ds->r, ds->s, ds->theta, WindowStage::kWuon, OverlapAlgorithm::kAuto);
  StatusOr<std::vector<TPWindow>> part =
      ComputeWindows(ds->r, ds->s, ds->theta, WindowStage::kWuon,
                     OverlapAlgorithm::kPartitioned);
  ASSERT_TRUE(autow.ok());
  ASSERT_TRUE(part.ok());
  SortWindows(&*autow);
  SortWindows(&*part);
  ASSERT_EQ(autow->size(), part->size());
  for (size_t i = 0; i < autow->size(); ++i) {
    EXPECT_EQ((*autow)[i].window, (*part)[i].window);
    EXPECT_EQ((*autow)[i].lin_s, (*part)[i].lin_s);
  }
}

TEST(TableStats, DistinctEstimationOnGeneratedData) {
  // Webkit-like: many distinct files; Meteo-like: few distinct metrics.
  LineageManager manager;
  WebkitOptions wopts;
  wopts.num_tuples = 3000;
  StatusOr<WebkitDataset> web = MakeWebkitDataset(&manager, wopts);
  ASSERT_TRUE(web.ok());
  const Table wt = web->r.ToTable();
  const TableStats wstats = TableStats::Compute(wt, 1, 2);
  EXPECT_GT(wstats.columns[0].distinct_values, 200u);

  MeteoOptions mopts;
  mopts.num_tuples = 3000;
  mopts.num_metrics = 50;
  StatusOr<MeteoDataset> met = MakeMeteoDataset(&manager, mopts);
  ASSERT_TRUE(met.ok());
  const Table mt = met->r.ToTable();
  const TableStats mstats = TableStats::Compute(mt, 2, 3);
  EXPECT_LE(mstats.columns[1].distinct_values, 60u);
}

}  // namespace
}  // namespace tpdb
