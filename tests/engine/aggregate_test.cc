#include "engine/aggregate.h"

#include <gtest/gtest.h>

#include "engine/explain.h"
#include "engine/limit.h"
#include "engine/materialize.h"
#include "engine/scan.h"

namespace tpdb {
namespace {

Datum I(int64_t v) { return Datum(v); }

Table SalesTable() {
  Table t;
  t.schema.AddColumn({"region", DatumType::kString});
  t.schema.AddColumn({"units", DatumType::kInt64});
  t.schema.AddColumn({"price", DatumType::kDouble});
  t.rows = {
      {Datum("east"), I(3), Datum(1.5)},
      {Datum("west"), I(5), Datum(2.0)},
      {Datum("east"), I(2), Datum(4.0)},
      {Datum("east"), I(7), Datum(0.5)},
      {Datum("west"), I(1), Datum(3.0)},
  };
  return t;
}

TEST(HashAggregate, CountPerGroup) {
  const Table t = SalesTable();
  HashAggregate agg(std::make_unique<TableScan>(&t), {0},
                    {{AggFn::kCount, -1, "n"}});
  const Table out = Materialize(&agg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows[0][0].AsString(), "east");
  EXPECT_EQ(out.rows[0][1].AsInt64(), 3);
  EXPECT_EQ(out.rows[1][0].AsString(), "west");
  EXPECT_EQ(out.rows[1][1].AsInt64(), 2);
}

TEST(HashAggregate, SumMinMax) {
  const Table t = SalesTable();
  HashAggregate agg(std::make_unique<TableScan>(&t), {0},
                    {{AggFn::kSum, 1, "total"},
                     {AggFn::kMin, 2, "lo"},
                     {AggFn::kMax, 2, "hi"}});
  const Table out = Materialize(&agg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows[0][1].AsInt64(), 12);  // east: 3+2+7
  EXPECT_DOUBLE_EQ(out.rows[0][2].AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(out.rows[0][3].AsDouble(), 4.0);
  EXPECT_EQ(out.rows[1][1].AsInt64(), 6);  // west: 5+1
}

TEST(HashAggregate, DoubleSum) {
  const Table t = SalesTable();
  HashAggregate agg(std::make_unique<TableScan>(&t), {0},
                    {{AggFn::kSum, 2, "revenue"}});
  const Table out = Materialize(&agg);
  EXPECT_DOUBLE_EQ(out.rows[0][1].AsDouble(), 6.0);  // east 1.5+4.0+0.5
}

TEST(HashAggregate, NullsIgnoredInAggregates) {
  Table t;
  t.schema.AddColumn({"g", DatumType::kInt64});
  t.schema.AddColumn({"v", DatumType::kInt64});
  t.rows = {{I(1), I(5)}, {I(1), Datum::Null()}, {I(1), I(3)}};
  HashAggregate agg(std::make_unique<TableScan>(&t), {0},
                    {{AggFn::kSum, 1, "s"}, {AggFn::kCount, -1, "n"}});
  const Table out = Materialize(&agg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows[0][1].AsInt64(), 8);
  EXPECT_EQ(out.rows[0][2].AsInt64(), 3);  // COUNT(*) counts null rows
}

TEST(HashAggregate, EmptyInputNoGroups) {
  Table t;
  t.schema.AddColumn({"g", DatumType::kInt64});
  HashAggregate agg(std::make_unique<TableScan>(&t), {0},
                    {{AggFn::kCount, -1, "n"}});
  EXPECT_EQ(Materialize(&agg).size(), 0u);
}

TEST(HashAggregate, MultiColumnGroups) {
  Table t;
  t.schema.AddColumn({"a", DatumType::kInt64});
  t.schema.AddColumn({"b", DatumType::kInt64});
  t.rows = {{I(1), I(1)}, {I(1), I(2)}, {I(1), I(1)}, {I(2), I(1)}};
  HashAggregate agg(std::make_unique<TableScan>(&t), {0, 1},
                    {{AggFn::kCount, -1, "n"}});
  const Table out = Materialize(&agg);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.rows[0][2].AsInt64(), 2);  // (1,1)
}

TEST(Limit, BoundsAndOffsets) {
  const Table t = SalesTable();
  {
    Limit limit(std::make_unique<TableScan>(&t), 2);
    EXPECT_EQ(Materialize(&limit).size(), 2u);
  }
  {
    Limit limit(std::make_unique<TableScan>(&t), 10, 3);
    const Table out = Materialize(&limit);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out.rows[0][1].AsInt64(), 7);  // 4th row
  }
  {
    Limit limit(std::make_unique<TableScan>(&t), 0);
    EXPECT_EQ(Materialize(&limit).size(), 0u);
  }
  {
    Limit limit(std::make_unique<TableScan>(&t), 5, 99);
    EXPECT_EQ(Materialize(&limit).size(), 0u);
  }
}

TEST(Explain, CountsRowsPerNode) {
  const Table t = SalesTable();
  ExecStats stats;
  OperatorPtr plan =
      Instrument("scan", std::make_unique<TableScan>(&t), &stats);
  plan = Instrument(
      "limit", std::make_unique<Limit>(std::move(plan), 3), &stats);
  EXPECT_EQ(Drain(plan.get()), 3u);
  ASSERT_EQ(stats.nodes().size(), 2u);
  EXPECT_EQ(stats.nodes()[0]->rows, 3u);  // scan pulled 3 times
  EXPECT_EQ(stats.nodes()[1]->rows, 3u);
  EXPECT_EQ(stats.nodes()[0]->open_calls, 1u);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("rows=3"), std::string::npos);
}

TEST(Explain, TimeIsInclusiveOfChildren) {
  const Table t = SalesTable();
  ExecStats stats;
  OperatorPtr plan =
      Instrument("inner", std::make_unique<TableScan>(&t), &stats);
  plan = Instrument("outer", std::move(plan), &stats);
  Drain(plan.get());
  EXPECT_GE(stats.nodes()[1]->seconds, stats.nodes()[0]->seconds);
}

}  // namespace
}  // namespace tpdb
