// Vectorized-vs-row parity: every query must produce element-wise
// identical results (facts, intervals, exact probabilities — in the same
// order) under vectorize=on and vectorize=off, over in-memory and
// cold-snapshot inputs, across random seeds and every batch-lowered
// operator combination, including selection-vector edge cases (empty
// batch, full batch, one-row tail).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/planner.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "engine/materialize.h"
#include "engine/scan.h"
#include "engine/vector/adapters.h"
#include "engine/vector/batch_ops.h"
#include "exec/session.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SessionOptions RowOptions() {
  SessionOptions options;
  options.vectorize = false;
  options.parallelism = 1;
  return options;
}

SessionOptions BatchOptions() {
  SessionOptions options;
  options.vectorize = true;
  options.parallelism = 1;
  return options;
}

/// Element-wise equality: facts, intervals, and exact probabilities, in
/// emit order (the batch path must preserve the row path's order).
void ExpectSameRelation(const TPRelation& row, const TPRelation& batch) {
  ASSERT_EQ(row.size(), batch.size());
  ASSERT_TRUE(row.fact_schema() == batch.fact_schema())
      << row.fact_schema().ToString() << " vs "
      << batch.fact_schema().ToString();
  EXPECT_EQ(row.name(), batch.name());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(CompareRows(row.tuple(i).fact, batch.tuple(i).fact), 0)
        << "fact mismatch at tuple " << i;
    EXPECT_EQ(row.tuple(i).interval, batch.tuple(i).interval)
        << "interval mismatch at tuple " << i;
    EXPECT_EQ(row.Probability(i), batch.Probability(i))
        << "probability mismatch at tuple " << i;
  }
}

/// Runs `query` under both paths on `db` and compares.
void ExpectParity(TPDatabase* db, const std::string& query) {
  SCOPED_TRACE(query);
  StatusOr<TPRelation> row = Session(db, RowOptions()).Query(query);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  StatusOr<TPRelation> batch = Session(db, BatchOptions()).Query(query);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectSameRelation(*row, *batch);
}

/// A relation exercising every column representation: int64 key, double
/// score (with NULLs), dictionary-friendly string city (with NULLs), and
/// a mixed-type column that forces the generic fallback.
Status FillMixed(TPRelation* rel, int64_t tuples, Random* rng) {
  const std::vector<std::string> cities = {"ZAK", "GVA", "BRN", "LSN"};
  for (int64_t i = 0; i < tuples; ++i) {
    Row fact;
    fact.push_back(Datum(i % 97));
    fact.push_back(i % 7 == 0 ? Datum::Null()
                              : Datum(static_cast<double>(i % 50) / 2.0));
    fact.push_back(i % 11 == 0 ? Datum::Null()
                               : Datum(cities[static_cast<size_t>(i) %
                                              cities.size()]));
    fact.push_back(i % 3 == 0 ? Datum(i) : Datum("tag" + std::to_string(i % 5)));
    const TimePoint start = i * 3;
    TPDB_RETURN_IF_ERROR(rel->AppendBase(
        std::move(fact), Interval(start, start + 2 + (i % 5)),
        0.2 + 0.6 * rng->NextDouble()));
  }
  return Status::OK();
}

/// Queries covering every batch-lowered stage and combination.
std::vector<std::string> MixedQueries(const std::string& rel) {
  return {
      "SELECT * FROM " + rel,
      "SELECT * FROM " + rel + " WHERE key >= 40",
      "SELECT * FROM " + rel + " WHERE key >= 20 AND key < 70",
      "SELECT * FROM " + rel + " WHERE score > 10.0",
      "SELECT * FROM " + rel + " WHERE key < 30 OR score >= 20.0",
      "SELECT * FROM " + rel + " WHERE city = 'ZAK'",
      "SELECT * FROM " + rel + " WHERE city <> 'GVA' AND key > 10",
      "SELECT * FROM " + rel + " WHERE score IS NULL",
      "SELECT * FROM " + rel + " WHERE NOT city IS NULL AND key <= 50",
      "SELECT * FROM " + rel + " WHERE 1 = 1",  // constant-folded keep-all
      "SELECT * FROM " + rel + " WHERE 1 = 2",  // constant-folded drop-all
      "SELECT key, city FROM " + rel + " WHERE key >= 10",
      "SELECT key AS k, score AS s FROM " + rel + " WHERE score >= 5.0",
      "SELECT * FROM " + rel + " WHERE _ts >= 900 AND _te < 2400",
      "SELECT * FROM " + rel + " LIMIT 100",
      "SELECT * FROM " + rel + " WHERE key > 5 LIMIT 37 OFFSET 11",
      "SELECT * FROM " + rel + " WITH PROB >= 0.5",
      "SELECT * FROM " + rel + " WHERE key >= 10 LIMIT 50 WITH PROB > 0.4",
      "SELECT * FROM " + rel + " WHERE key >= 10 ORDER BY score LIMIT 25",
      "SELECT city, COUNT(*) AS n FROM " + rel +
          " WHERE key < 80 GROUP BY city",
      "SELECT key, COUNT(*), SUM(score), MIN(score), MAX(city) FROM " + rel +
          " WHERE key >= 8 GROUP BY key",
      "SELECT key, COUNT(*) AS n FROM " + rel +
          " GROUP BY key ORDER BY n DESC LIMIT 10",
  };
}

TEST(VectorParityTest, WarmQueriesMatchRowPath) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TPDatabase db;
    Random rng(seed);
    StatusOr<TPRelation*> rel = db.CreateRelation(
        "mixed", Schema({{"key", DatumType::kInt64},
                         {"score", DatumType::kDouble},
                         {"city", DatumType::kString},
                         {"tag", DatumType::kString}}));
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE(FillMixed(*rel, 1500, &rng).ok());
    for (const std::string& query : MixedQueries("mixed"))
      ExpectParity(&db, query);
  }
}

TEST(VectorParityTest, ColdSnapshotMatchesRowPath) {
  const std::string path = TempPath("vector_parity_cold.tpdb");
  TPDatabase source;
  Random rng(7);
  StatusOr<TPRelation*> rel = source.CreateRelation(
      "mixed", Schema({{"key", DatumType::kInt64},
                       {"score", DatumType::kDouble},
                       {"city", DatumType::kString},
                       {"tag", DatumType::kString}}));
  ASSERT_TRUE(rel.ok());
  // > 2 segments of 512 rows, with a 1-row tail in the last one.
  ASSERT_TRUE(FillMixed(*rel, 1537, &rng).ok());
  storage::SnapshotOptions snapshot_options;
  snapshot_options.segment_rows = 512;
  ASSERT_TRUE(source.SaveSnapshot(path, snapshot_options).ok());

  TPDatabase cold;
  ASSERT_TRUE(cold.LoadSnapshot(path).ok());
  ASSERT_NE((*cold.Get("mixed"))->cold_storage(), nullptr);
  for (const std::string& query : MixedQueries("mixed")) {
    ExpectParity(&cold, query);  // cold batch vs cold row
    // And the cold batch path vs the warm row path of the source db.
    SCOPED_TRACE(query);
    StatusOr<TPRelation> warm_row = Session(&source, RowOptions()).Query(query);
    ASSERT_TRUE(warm_row.ok()) << warm_row.status().ToString();
    StatusOr<TPRelation> cold_batch =
        Session(&cold, BatchOptions()).Query(query);
    ASSERT_TRUE(cold_batch.ok()) << cold_batch.status().ToString();
    ASSERT_EQ(warm_row->size(), cold_batch->size());
    for (size_t i = 0; i < warm_row->size(); ++i) {
      EXPECT_EQ(CompareRows(warm_row->tuple(i).fact,
                            cold_batch->tuple(i).fact), 0);
      EXPECT_EQ(warm_row->tuple(i).interval, cold_batch->tuple(i).interval);
      EXPECT_EQ(warm_row->Probability(i), cold_batch->Probability(i));
    }
  }
  std::remove(path.c_str());
}

TEST(VectorParityTest, RandomWorkloadsAcrossSeeds) {
  for (const uint64_t seed : {11u, 23u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TPDatabase db;
    Random rng(seed);
    UniformWorkloadOptions options;
    options.num_tuples = 2500;
    options.num_facts = 120;
    options.history_length = 5000;
    StatusOr<TPRelation> r =
        MakeUniformWorkload(db.manager(), "r", options, &rng);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(db.Register(std::move(*r)).ok());
    for (const std::string& query : std::vector<std::string>{
             "SELECT * FROM r WHERE key >= 60",
             "SELECT * FROM r WHERE key >= 20 AND _ts < 2500",
             "SELECT key FROM r WHERE key < 40 WITH PROB >= 0.6",
             "SELECT key, COUNT(*) AS n, MIN(key) FROM r WHERE key >= 30 "
             "GROUP BY key",
             "SELECT * FROM r WHERE key = 7 LIMIT 9",
         })
      ExpectParity(&db, query);
  }
}

TEST(VectorParityTest, SelectionVectorEdgeCases) {
  TPDatabase db;
  Random rng(5);
  StatusOr<TPRelation*> rel =
      db.CreateRelation("edge", Schema({{"key", DatumType::kInt64}}));
  ASSERT_TRUE(rel.ok());
  // 2049 tuples: two exactly-full 1024-row batches plus a 1-row tail.
  for (int64_t i = 0; i < 2049; ++i)
    ASSERT_TRUE((*rel)->AppendBase({Datum(i)}, Interval(i, i + 1),
                                   0.25 + 0.5 * rng.NextDouble())
                    .ok());

  const std::vector<std::string> queries = {
      "SELECT * FROM edge WHERE key < 0",        // every batch empties
      "SELECT * FROM edge WHERE key >= 0",       // every batch full
      "SELECT * FROM edge WHERE key = 2048",     // only the 1-row tail
      "SELECT * FROM edge WHERE key = 1023",     // last row of batch 1
      "SELECT * FROM edge WHERE key = 1024",     // first row of batch 2
      "SELECT * FROM edge LIMIT 1024",           // limit on batch boundary
      "SELECT * FROM edge LIMIT 1025",
      "SELECT * FROM edge LIMIT 10 OFFSET 1020",  // offset spans batches
      "SELECT * FROM edge LIMIT 5 OFFSET 2048",   // offset into the tail
      "SELECT * FROM edge WHERE key >= 1000 LIMIT 30 OFFSET 30",
      "SELECT key, COUNT(*) FROM edge WHERE key < 0 GROUP BY key",  // empty
  };
  for (const std::string& query : queries) ExpectParity(&db, query);

  // An empty relation flows through every stage.
  ASSERT_TRUE(db.CreateRelation("empty", Schema({{"key", DatumType::kInt64}}))
                  .ok());
  ExpectParity(&db, "SELECT * FROM empty WHERE key > 3 LIMIT 5");
  ExpectParity(&db, "SELECT key, COUNT(*) FROM empty GROUP BY key");
}

TEST(VectorParityTest, ParallelBatchMatchesSerialRow) {
  TPDatabase db;
  Random rng(13);
  UniformWorkloadOptions options;
  options.num_tuples = 4000;
  options.num_facts = 200;
  options.history_length = 8000;
  StatusOr<TPRelation> r =
      MakeUniformWorkload(db.manager(), "r", options, &rng);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(db.Register(std::move(*r)).ok());

  SessionOptions parallel_batch = BatchOptions();
  parallel_batch.parallelism = 4;
  parallel_batch.min_parallel_rows = 64;
  parallel_batch.morsel_size = 256;
  for (const std::string& query : std::vector<std::string>{
           "SELECT * FROM r WHERE key >= 50",
           "SELECT key FROM r WHERE key < 120 WITH PROB >= 0.55",
           "SELECT key, COUNT(*) AS n, MAX(key) FROM r WHERE key >= 10 "
           "GROUP BY key",
       }) {
    SCOPED_TRACE(query);
    StatusOr<TPRelation> row = Session(&db, RowOptions()).Query(query);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    StatusOr<TPRelation> batch = Session(&db, parallel_batch).Query(query);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ExpectSameRelation(*row, *batch);
  }
}

TEST(VectorParityTest, ExplainReportsVectorizedSection) {
  TPDatabase db;
  Random rng(3);
  StatusOr<TPRelation*> rel =
      db.CreateRelation("t", Schema({{"key", DatumType::kInt64}}));
  ASSERT_TRUE(rel.ok());
  for (int64_t i = 0; i < 1500; ++i)
    ASSERT_TRUE(
        (*rel)->AppendBase({Datum(i)}, Interval(i, i + 1), 0.9).ok());

  StatusOr<std::string> batch =
      Session(&db, BatchOptions()).Explain("SELECT * FROM t WHERE key < 600");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_NE(batch->find("vectorized:"), std::string::npos) << *batch;
  EXPECT_NE(batch->find("batches:"), std::string::npos) << *batch;
  EXPECT_NE(batch->find("pruned by selection:"), std::string::npos) << *batch;
  EXPECT_NE(batch->find("(vec)"), std::string::npos) << *batch;

  StatusOr<std::string> row =
      Session(&db, RowOptions()).Explain("SELECT * FROM t WHERE key < 600");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->find("vectorized:"), std::string::npos) << *row;
}

TEST(VectorParityTest, RowBatchRowRoundTripIsIdentity) {
  TPDatabase db;
  Random rng(9);
  StatusOr<TPRelation*> rel = db.CreateRelation(
      "mixed", Schema({{"key", DatumType::kInt64},
                       {"score", DatumType::kDouble},
                       {"city", DatumType::kString},
                       {"tag", DatumType::kString}}));
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(FillMixed(*rel, 1300, &rng).ok());
  const Table table = (*rel)->ToTable();

  // Row → batch (RowToBatchAdapter) → row (BatchToRowAdapter) must be the
  // identity for every column representation, including NULLs.
  vec::BatchToRowAdapter round_trip(std::make_unique<vec::RowToBatchAdapter>(
      std::make_unique<TableScan>(&table)));
  const Table out = Materialize(&round_trip);
  ASSERT_EQ(out.rows.size(), table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i)
    EXPECT_EQ(CompareRows(table.rows[i], out.rows[i]), 0) << "row " << i;
}

}  // namespace
}  // namespace tpdb
