// Unit tests of the join operators: NestedLoopJoin (general θ) and
// TemporalOuterJoin (the partitioned θo ∧ θ plan), cross-checked against
// each other on randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "engine/materialize.h"
#include "engine/nested_loop_join.h"
#include "engine/scan.h"
#include "engine/temporal_outer_join.h"

namespace tpdb {
namespace {

Datum I(int64_t v) { return Datum(v); }

Table MakeLeft() {
  Table t;
  t.schema.AddColumn({"k", DatumType::kInt64});
  t.schema.AddColumn({"ts", DatumType::kInt64});
  t.schema.AddColumn({"te", DatumType::kInt64});
  t.rows = {
      {I(1), I(2), I(8)},
      {I(2), I(7), I(10)},
      {I(3), I(0), I(4)},
  };
  return t;
}

Table MakeRight() {
  Table t;
  t.schema.AddColumn({"k", DatumType::kInt64});
  t.schema.AddColumn({"ts", DatumType::kInt64});
  t.schema.AddColumn({"te", DatumType::kInt64});
  t.rows = {
      {I(1), I(5), I(8)},
      {I(1), I(4), I(6)},
      {I(2), I(1), I(4)},
      {I(9), I(0), I(100)},
  };
  return t;
}

TEST(NestedLoopJoin, InnerWithEquality) {
  const Table l = MakeLeft();
  const Table r = MakeRight();
  NestedLoopJoin join(std::make_unique<TableScan>(&l),
                      std::make_unique<TableScan>(&r),
                      Eq(Col(0), Col(3)), JoinType::kInner);
  const Table out = Materialize(&join);
  EXPECT_EQ(out.size(), 3u);  // k=1 matches twice, k=2 once
  EXPECT_EQ(out.schema.num_columns(), 6u);
}

TEST(NestedLoopJoin, LeftOuterEmitsNullsForUnmatched) {
  const Table l = MakeLeft();
  const Table r = MakeRight();
  NestedLoopJoin join(std::make_unique<TableScan>(&l),
                      std::make_unique<TableScan>(&r),
                      Eq(Col(0), Col(3)), JoinType::kLeftOuter);
  const Table out = Materialize(&join);
  EXPECT_EQ(out.size(), 4u);  // + unmatched k=3
  size_t nulls = 0;
  for (const Row& row : out.rows)
    if (row[3].is_null()) ++nulls;
  EXPECT_EQ(nulls, 1u);
}

TEST(NestedLoopJoin, EmptyRightLeftOuter) {
  const Table l = MakeLeft();
  Table r = MakeRight();
  r.rows.clear();
  NestedLoopJoin join(std::make_unique<TableScan>(&l),
                      std::make_unique<TableScan>(&r),
                      Eq(Col(0), Col(3)), JoinType::kLeftOuter);
  EXPECT_EQ(Materialize(&join).size(), l.size());
}

TEST(NestedLoopJoin, EmptyLeftProducesNothing) {
  Table l = MakeLeft();
  l.rows.clear();
  const Table r = MakeRight();
  NestedLoopJoin join(std::make_unique<TableScan>(&l),
                      std::make_unique<TableScan>(&r),
                      Eq(Col(0), Col(3)), JoinType::kLeftOuter);
  EXPECT_EQ(Materialize(&join).size(), 0u);
}

TemporalJoinSpec BasicSpec() {
  TemporalJoinSpec spec;
  spec.equi_keys = {{0, 0}};
  spec.left_ts = 1;
  spec.left_te = 2;
  spec.right_ts = 1;
  spec.right_te = 2;
  return spec;
}

TEST(TemporalOuterJoin, MatchesOverlapAndKey) {
  const Table l = MakeLeft();
  const Table r = MakeRight();
  TemporalOuterJoin join(std::make_unique<TableScan>(&l),
                         std::make_unique<TableScan>(&r), BasicSpec());
  const Table out = Materialize(&join);
  // l0 (k=1,[2,8)) overlaps r0 [5,8) and r1 [4,6); l1 (k=2,[7,10)) does not
  // overlap r2 [1,4) -> unmatched; l2 (k=3) unmatched.
  EXPECT_EQ(out.size(), 4u);
  size_t matched = 0;
  for (const Row& row : out.rows) {
    if (row[3].is_null()) continue;
    ++matched;
    // Intersection columns are appended at the end.
    const Interval inter(row[out.schema.num_columns() - 2].AsInt64(),
                         row[out.schema.num_columns() - 1].AsInt64());
    EXPECT_FALSE(inter.empty());
  }
  EXPECT_EQ(matched, 2u);
}

TEST(TemporalOuterJoin, MatchesArriveSortedByStart) {
  const Table l = MakeLeft();
  const Table r = MakeRight();  // k=1 rows are unsorted: [5,8) before [4,6)
  TemporalOuterJoin join(std::make_unique<TableScan>(&l),
                         std::make_unique<TableScan>(&r), BasicSpec());
  const Table out = Materialize(&join);
  std::vector<int64_t> starts;
  for (const Row& row : out.rows)
    if (!row[3].is_null() && row[0].AsInt64() == 1)
      starts.push_back(row[4].AsInt64());
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
}

TEST(TemporalOuterJoin, NullKeysNeverMatch) {
  Table l = MakeLeft();
  l.rows.push_back({Datum::Null(), I(0), I(100)});
  Table r = MakeRight();
  r.rows.push_back({Datum::Null(), I(0), I(100)});
  TemporalOuterJoin join(std::make_unique<TableScan>(&l),
                         std::make_unique<TableScan>(&r), BasicSpec());
  const Table out = Materialize(&join);
  for (const Row& row : out.rows) {
    if (row[0].is_null()) EXPECT_TRUE(row[3].is_null());
  }
}

TEST(TemporalOuterJoin, ResidualPredicateFilters) {
  const Table l = MakeLeft();
  const Table r = MakeRight();
  TemporalJoinSpec spec = BasicSpec();
  // Keep only pairs whose right interval starts at an even time point.
  spec.residual = Fn(
      [](const Row& row) {
        return Datum(static_cast<int64_t>(row[4].AsInt64() % 2 == 0));
      },
      "even_start");
  TemporalOuterJoin join(std::make_unique<TableScan>(&l),
                         std::make_unique<TableScan>(&r), spec);
  const Table out = Materialize(&join);
  for (const Row& row : out.rows) {
    if (!row[3].is_null()) EXPECT_EQ(row[4].AsInt64() % 2, 0);
  }
}

TEST(TemporalOuterJoin, InnerModeSkipsUnmatched) {
  const Table l = MakeLeft();
  const Table r = MakeRight();
  TemporalJoinSpec spec = BasicSpec();
  spec.join_type = JoinType::kInner;
  TemporalOuterJoin join(std::make_unique<TableScan>(&l),
                         std::make_unique<TableScan>(&r), spec);
  EXPECT_EQ(Materialize(&join).size(), 2u);
}

// Randomized cross-check: the partitioned temporal join must agree with a
// nested loop evaluating the same predicate.
TEST(TemporalOuterJoin, AgreesWithNestedLoopOnRandomInputs) {
  Random rng(12345);
  for (int trial = 0; trial < 20; ++trial) {
    auto make = [&](int64_t n) {
      Table t;
      t.schema.AddColumn({"k", DatumType::kInt64});
      t.schema.AddColumn({"ts", DatumType::kInt64});
      t.schema.AddColumn({"te", DatumType::kInt64});
      for (int64_t i = 0; i < n; ++i) {
        const int64_t ts = rng.Uniform(0, 30);
        t.rows.push_back(
            {I(rng.Uniform(0, 4)), I(ts), I(ts + rng.Uniform(1, 10))});
      }
      return t;
    };
    const Table l = make(rng.Uniform(0, 15));
    const Table r = make(rng.Uniform(0, 15));

    TemporalOuterJoin fast(std::make_unique<TableScan>(&l),
                           std::make_unique<TableScan>(&r), BasicSpec());
    Table fast_out = Materialize(&fast);
    // Strip the two intersection columns for comparison.
    for (Row& row : fast_out.rows) row.resize(6);

    NestedLoopJoin slow(
        std::make_unique<TableScan>(&l), std::make_unique<TableScan>(&r),
        AndExpr(Eq(Col(0), Col(3)), OverlapsExpr(1, 2, 4, 5)),
        JoinType::kLeftOuter);
    Table slow_out = Materialize(&slow);

    auto sorted = [](Table t) {
      std::sort(t.rows.begin(), t.rows.end(),
                [](const Row& a, const Row& b) {
                  return CompareRows(a, b) < 0;
                });
      return t.rows;
    };
    EXPECT_EQ(sorted(std::move(fast_out)), sorted(std::move(slow_out)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace tpdb
