#include "engine/expr.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

Row TestRow() {
  return Row{Datum(static_cast<int64_t>(10)), Datum(static_cast<int64_t>(20)),
             Datum("x"), Datum::Null(), Datum(2.5)};
}

TEST(Expr, ColumnReference) {
  EXPECT_EQ(Col(0)->Eval(TestRow()).AsInt64(), 10);
  EXPECT_EQ(Col(2)->Eval(TestRow()).AsString(), "x");
  EXPECT_TRUE(Col(3)->Eval(TestRow()).is_null());
}

TEST(Expr, Literal) {
  EXPECT_EQ(Lit(Datum(static_cast<int64_t>(7)))->Eval(TestRow()).AsInt64(),
            7);
}

TEST(Expr, Comparisons) {
  const Row row = TestRow();
  EXPECT_TRUE(DatumTruthy(Lt(Col(0), Col(1))->Eval(row)));
  EXPECT_FALSE(DatumTruthy(Lt(Col(1), Col(0))->Eval(row)));
  EXPECT_TRUE(DatumTruthy(Eq(Col(0), Col(0))->Eval(row)));
  EXPECT_TRUE(DatumTruthy(Le(Col(0), Col(0))->Eval(row)));
  EXPECT_TRUE(DatumTruthy(
      Compare(CompareOp::kNe, Col(0), Col(1))->Eval(row)));
  EXPECT_TRUE(DatumTruthy(
      Compare(CompareOp::kGt, Col(1), Col(0))->Eval(row)));
  EXPECT_TRUE(DatumTruthy(
      Compare(CompareOp::kGe, Col(1), Col(1))->Eval(row)));
}

TEST(Expr, NullComparisonsYieldNull) {
  const Row row = TestRow();
  EXPECT_TRUE(Eq(Col(3), Col(0))->Eval(row).is_null());
  EXPECT_TRUE(Lt(Col(3), Col(3))->Eval(row).is_null());
}

TEST(Expr, KleeneAnd) {
  const Row row = TestRow();
  const ExprPtr t = Lit(Datum(static_cast<int64_t>(1)));
  const ExprPtr f = Lit(Datum(static_cast<int64_t>(0)));
  const ExprPtr n = Col(3);  // NULL
  EXPECT_TRUE(DatumTruthy(AndExpr(t, t)->Eval(row)));
  EXPECT_FALSE(DatumTruthy(AndExpr(t, f)->Eval(row)));
  // false AND null = false (not null).
  EXPECT_FALSE(AndExpr(f, n)->Eval(row).is_null());
  EXPECT_FALSE(DatumTruthy(AndExpr(f, n)->Eval(row)));
  // true AND null = null.
  EXPECT_TRUE(AndExpr(t, n)->Eval(row).is_null());
}

TEST(Expr, KleeneOr) {
  const Row row = TestRow();
  const ExprPtr t = Lit(Datum(static_cast<int64_t>(1)));
  const ExprPtr f = Lit(Datum(static_cast<int64_t>(0)));
  const ExprPtr n = Col(3);
  // true OR null = true.
  EXPECT_TRUE(DatumTruthy(OrExpr(t, n)->Eval(row)));
  // false OR null = null.
  EXPECT_TRUE(OrExpr(f, n)->Eval(row).is_null());
  EXPECT_FALSE(DatumTruthy(OrExpr(f, f)->Eval(row)));
}

TEST(Expr, NotAndIsNull) {
  const Row row = TestRow();
  const ExprPtr t = Lit(Datum(static_cast<int64_t>(1)));
  EXPECT_FALSE(DatumTruthy(NotExpr(t)->Eval(row)));
  EXPECT_TRUE(NotExpr(Col(3))->Eval(row).is_null());
  EXPECT_TRUE(DatumTruthy(IsNull(Col(3))->Eval(row)));
  EXPECT_FALSE(DatumTruthy(IsNull(Col(0))->Eval(row)));
}

TEST(Expr, OverlapsPredicate) {
  // Columns: a_ts, a_te, b_ts, b_te.
  const ExprPtr pred = OverlapsExpr(0, 1, 2, 3);
  auto row = [](int64_t a, int64_t b, int64_t c, int64_t d) {
    return Row{Datum(a), Datum(b), Datum(c), Datum(d)};
  };
  EXPECT_TRUE(DatumTruthy(pred->Eval(row(2, 8, 4, 6))));
  EXPECT_TRUE(DatumTruthy(pred->Eval(row(2, 8, 7, 10))));
  EXPECT_FALSE(DatumTruthy(pred->Eval(row(1, 4, 4, 6))));  // meets
  EXPECT_FALSE(DatumTruthy(pred->Eval(row(1, 3, 5, 8))));
}

TEST(Expr, ColumnsEqualConjunction) {
  const ExprPtr pred = ColumnsEqual({{0, 1}, {2, 3}});
  EXPECT_TRUE(DatumTruthy(pred->Eval(
      Row{Datum(static_cast<int64_t>(5)), Datum(static_cast<int64_t>(5)),
          Datum("a"), Datum("a")})));
  EXPECT_FALSE(DatumTruthy(pred->Eval(
      Row{Datum(static_cast<int64_t>(5)), Datum(static_cast<int64_t>(5)),
          Datum("a"), Datum("b")})));
  // Empty pair list: trivially true.
  EXPECT_TRUE(DatumTruthy(ColumnsEqual({})->Eval(TestRow())));
}

TEST(Expr, FnWrapsArbitraryPredicate) {
  const ExprPtr pred = Fn(
      [](const Row& row) {
        return Datum(static_cast<int64_t>(row[0].AsInt64() % 2 == 0));
      },
      "even");
  EXPECT_TRUE(DatumTruthy(pred->Eval(TestRow())));
  EXPECT_EQ(pred->ToString(), "even(...)");
}

TEST(Expr, ToStringRendering) {
  EXPECT_EQ(Eq(Col(0, "x"), Lit(Datum(static_cast<int64_t>(3))))->ToString(),
            "(x = 3)");
  EXPECT_EQ(Col(1)->ToString(), "$1");
}

TEST(Expr, DatumTruthySemantics) {
  EXPECT_FALSE(DatumTruthy(Datum::Null()));
  EXPECT_FALSE(DatumTruthy(Datum(static_cast<int64_t>(0))));
  EXPECT_TRUE(DatumTruthy(Datum(static_cast<int64_t>(-1))));
  EXPECT_TRUE(DatumTruthy(Datum("x")));  // non-int non-null is truthy
}

}  // namespace
}  // namespace tpdb
