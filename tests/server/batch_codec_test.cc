// The wire batch codec must be a lossless involution: decode(encode(b))
// holds the same values, and re-encoding the decoded batch reproduces the
// original payload byte for byte (the encoding choice is a pure function
// of the column values, so the wire format admits exactly one encoding of
// a given batch).
#include "storage/batch_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/vector/column_batch.h"
#include "lineage/lineage.h"
#include "storage/bytes.h"

namespace tpdb::storage {
namespace {

Schema MixedSchema() {
  Schema schema;
  schema.AddColumn({"i", DatumType::kInt64});
  schema.AddColumn({"d", DatumType::kDouble});
  schema.AddColumn({"s", DatumType::kString});
  schema.AddColumn({"m", DatumType::kString});  // mixed → generic fallback
  return schema;
}

std::vector<Row> MixedRows() {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) {
    Row row;
    row.push_back(i % 7 == 0 ? Datum::Null() : Datum(i * 11));
    row.push_back(Datum(0.5 * static_cast<double>(i)));
    row.push_back(Datum("city-" + std::to_string(i % 5)));  // dict-friendly
    if (i % 3 == 0)
      row.push_back(Datum(i));  // ints in a string column → kGeneric
    else
      row.push_back(Datum("tag-" + std::to_string(i)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string Encode(const Schema& schema, const vec::ColumnBatch& batch) {
  ByteWriter w;
  const Status st = EncodeColumnBatch(schema, batch, /*ids=*/nullptr, &w);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return w.buffer();
}

vec::ColumnBatch Decode(const std::string& payload) {
  vec::ColumnBatch batch;
  const Status st = DecodeColumnBatch(
      {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
      /*ids=*/nullptr, &batch);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return batch;
}

TEST(BatchCodecTest, RoundtripPreservesValuesAndReencodesByteIdentical) {
  const Schema schema = MixedSchema();
  const std::vector<Row> rows = MixedRows();
  vec::ColumnBatch batch;
  vec::TransposeRows(rows, 0, rows.size(), &batch);

  const std::string payload = Encode(schema, batch);
  const vec::ColumnBatch decoded = Decode(payload);

  ASSERT_EQ(decoded.num_rows, rows.size());
  ASSERT_EQ(decoded.columns.size(), schema.num_columns());
  EXPECT_TRUE(decoded.sel_all);
  for (size_t r = 0; r < rows.size(); ++r) {
    Row row;
    decoded.DecodeRow(r, &row);
    ASSERT_EQ(row.size(), rows[r].size());
    for (size_t c = 0; c < row.size(); ++c)
      EXPECT_TRUE(row[c] == rows[r][c]) << "row " << r << " col " << c;
  }

  EXPECT_EQ(Encode(schema, decoded), payload);
}

TEST(BatchCodecTest, SelectionVectorIsCompactedOnTheWire) {
  const Schema schema = MixedSchema();
  const std::vector<Row> rows = MixedRows();
  vec::ColumnBatch batch;
  vec::TransposeRows(rows, 0, rows.size(), &batch);
  batch.sel_all = false;
  for (uint32_t r = 1; r < rows.size(); r += 3) batch.sel.push_back(r);

  const std::string payload = Encode(schema, batch);
  const vec::ColumnBatch decoded = Decode(payload);

  ASSERT_EQ(decoded.ActiveRows(), batch.sel.size());
  EXPECT_TRUE(decoded.sel_all);  // compacted: selection order became order
  for (size_t i = 0; i < batch.sel.size(); ++i) {
    Row row;
    decoded.DecodeRow(i, &row);
    EXPECT_EQ(CompareRows(row, rows[batch.sel[i]]), 0) << "active row " << i;
  }

  // The compacted batch is already in wire shape: encoding it again must
  // reproduce the same bytes.
  EXPECT_EQ(Encode(schema, decoded), payload);
}

TEST(BatchCodecTest, EmptyBatchRoundtrips) {
  const Schema schema = MixedSchema();
  vec::ColumnBatch empty;
  empty.num_rows = 0;
  empty.columns.resize(schema.num_columns());

  const std::string payload = Encode(schema, empty);
  const vec::ColumnBatch decoded = Decode(payload);
  EXPECT_EQ(decoded.num_rows, 0u);
  ASSERT_EQ(decoded.columns.size(), schema.num_columns());
  EXPECT_EQ(Encode(schema, decoded), payload);
}

TEST(BatchCodecTest, LineageColumnShipsRawArenaIds) {
  LineageManager manager;
  Schema schema;
  schema.AddColumn({"lin", DatumType::kLineage});
  std::vector<Row> rows;
  const VarId x = manager.RegisterVariable(0.5, "x");
  const VarId y = manager.RegisterVariable(0.25, "y");
  const VarId z = manager.RegisterVariable(0.75, "z");
  const LineageRef a = manager.Var(x);
  const LineageRef b = manager.And(manager.Var(y), manager.Var(z));
  for (const LineageRef ref : {a, b, manager.Or(a, b)})
    rows.push_back({Datum(ref)});

  vec::ColumnBatch batch;
  vec::TransposeRows(rows, 0, rows.size(), &batch);
  const std::string payload = Encode(schema, batch);
  const vec::ColumnBatch decoded = Decode(payload);
  ASSERT_EQ(decoded.num_rows, rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    Row row;
    decoded.DecodeRow(r, &row);
    // With ids == nullptr the codec moves the raw ref id verbatim, so the
    // decoded ref points at the same arena node.
    EXPECT_EQ(row[0].AsLineage(), rows[r][0].AsLineage());
  }
  EXPECT_EQ(Encode(schema, decoded), payload);
}

TEST(BatchCodecTest, RejectsCorruptPayloads) {
  const Schema schema = MixedSchema();
  const std::vector<Row> rows = MixedRows();
  vec::ColumnBatch batch;
  vec::TransposeRows(rows, 0, rows.size(), &batch);
  const std::string payload = Encode(schema, batch);

  vec::ColumnBatch out;
  // Truncations at every length must error or produce a valid batch —
  // never crash. (Short prefixes that still parse are impossible here
  // because the row count header promises more data than remains.)
  for (size_t len = 0; len < payload.size(); ++len) {
    const Status st = DecodeColumnBatch(
        {reinterpret_cast<const uint8_t*>(payload.data()), len},
        /*ids=*/nullptr, &out);
    EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes decoded";
  }

  // An absurd row count must be rejected up front, not allocated.
  std::string bogus = payload;
  bogus[0] = bogus[1] = bogus[2] = bogus[3] = '\xff';
  EXPECT_FALSE(DecodeColumnBatch(
                   {reinterpret_cast<const uint8_t*>(bogus.data()),
                    bogus.size()},
                   /*ids=*/nullptr, &out)
                   .ok());
}

}  // namespace
}  // namespace tpdb::storage
