// End-to-end server tests: a query answered over loopback must agree
// element-wise — rows, intervals, exact probabilities — with the same
// query run in-process, including under 8+ concurrent client threads
// mixing queries with DDL; plus admission control, cancellation and
// graceful-shutdown behavior.
#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"
#include "lineage/probability.h"
#include "server/client.h"

namespace tpdb::server {
namespace {

/// A wire row reduced to comparable form (fact ++ interval ++ probability,
/// matching the canonical form the session tests use in-process).
struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

bool CanonicalLess(const CanonicalTuple& a, const CanonicalTuple& b) {
  const int c = CompareRows(a.fact, b.fact);
  if (c != 0) return c < 0;
  return a.interval < b.interval;
}

std::vector<CanonicalTuple> CanonicalizeLocal(const TPRelation& rel) {
  ProbabilityEngine engine(rel.manager());
  std::vector<CanonicalTuple> out;
  out.reserve(rel.size());
  for (const TPTuple& t : rel.tuples())
    out.push_back({t.fact, t.interval, engine.Probability(t.lineage)});
  std::sort(out.begin(), out.end(), CanonicalLess);
  return out;
}

std::vector<CanonicalTuple> CanonicalizeWire(const ClientResult& result) {
  // Wire schema: fact columns ++ _ts ++ _te ++ _prob.
  const size_t num_cols = result.schema.num_columns();
  EXPECT_GE(num_cols, 3u);
  std::vector<CanonicalTuple> out;
  out.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    EXPECT_EQ(row.size(), num_cols);
    CanonicalTuple t;
    t.fact.assign(row.begin(), row.end() - 3);
    t.interval = Interval(row[num_cols - 3].AsInt64(),
                          row[num_cols - 2].AsInt64());
    t.probability = row[num_cols - 1].AsDouble();
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(), CanonicalLess);
  return out;
}

void ExpectParity(const TPRelation& local, const ClientResult& wire) {
  const std::vector<CanonicalTuple> e = CanonicalizeLocal(local);
  const std::vector<CanonicalTuple> a = CanonicalizeWire(wire);
  ASSERT_EQ(e.size(), a.size());
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(CompareRows(e[i].fact, a[i].fact), 0) << "row " << i;
    EXPECT_EQ(e[i].interval, a[i].interval) << "row " << i;
    // The probability is computed once server-side and shipped as raw
    // double bits, so parity is exact, not approximate.
    EXPECT_EQ(e[i].probability, a[i].probability) << "row " << i;
  }
}

class ServerEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(99);
    UniformWorkloadOptions options;
    options.num_tuples = 600;
    options.num_facts = 80;
    options.history_length = 2000;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db_.manager(), name, options, &rng);
      ASSERT_TRUE(rel.ok()) << rel.status().ToString();
      ASSERT_TRUE(db_.Register(std::move(*rel)).ok());
    }
  }

  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Shutdown();
  }

  StatusOr<std::unique_ptr<Client>> Connect() {
    return Client::Connect({.host = "127.0.0.1", .port = server_->port()});
  }

  TPDatabase db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerEndToEndTest, WireResultsMatchInProcessElementWise) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Session session(&db_);
  const std::vector<std::string> queries = {
      "SELECT * FROM r",
      "SELECT * FROM r WHERE key < 40",
      "SELECT * FROM r INNER JOIN s ON key",
      "r ANTI JOIN s ON key",
      "r UNION s",
      "r EXCEPT s",
      "SELECT * FROM r INNER JOIN s ON key WHERE key < 60 ORDER BY key",
  };
  for (const std::string& query : queries) {
    StatusOr<TPRelation> local = session.Query(query);
    ASSERT_TRUE(local.ok()) << query << ": " << local.status().ToString();
    StatusOr<ClientResult> wire = (*client)->Query(query);
    ASSERT_TRUE(wire.ok()) << query << ": " << wire.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectParity(*local, *wire)) << query;
  }
}

TEST_F(ServerEndToEndTest, EmptyResultStreamsSchemaAndDoneOnly) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  StatusOr<ClientResult> wire =
      (*client)->Query("SELECT * FROM r WHERE key < -1");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->rows.size(), 0u);
  EXPECT_EQ(wire->total_rows, 0u);
  EXPECT_GE(wire->schema.num_columns(), 3u);
}

TEST_F(ServerEndToEndTest, LargeResultStreamsInMultipleBatches) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  // "r UNION s" yields well over one 1024-row batch.
  StatusOr<ClientResult> wire = (*client)->Query("r UNION s");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_GT(wire->rows.size(), 1024u);
  EXPECT_GE(server_->Stats().batches_sent, 2u);
  Session session(&db_);
  StatusOr<TPRelation> local = session.Query("r UNION s");
  ASSERT_TRUE(local.ok());
  ExpectParity(*local, *wire);
}

TEST_F(ServerEndToEndTest, QueryErrorsTravelWithTheirStatusCode) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  StatusOr<ClientResult> bad = (*client)->Query("r FROB s");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  StatusOr<ClientResult> missing = (*client)->Query("SELECT * FROM no_such_relation");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The connection survives query errors.
  StatusOr<ClientResult> ok = (*client)->Query("SELECT * FROM r");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServerEndToEndTest, PrepareAndExplainReturnPlanText) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  StatusOr<std::string> plan =
      (*client)->Prepare("SELECT * FROM r INNER JOIN s ON key");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("Join"), std::string::npos) << *plan;
  StatusOr<std::string> explain = (*client)->Explain("r UNION s");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->empty());
  StatusOr<std::string> bad = (*client)->Prepare("r FROB s");
  EXPECT_FALSE(bad.ok());
}

TEST_F(ServerEndToEndTest, SnapshotStatementsWorkOverTheWire) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  const std::string path =
      ::testing::TempDir() + "/tpdb_wire_snapshot.tpdb";
  StatusOr<ClientResult> save =
      (*client)->Query("SAVE SNAPSHOT '" + path + "'");
  ASSERT_TRUE(save.ok()) << save.status().ToString();

  // Load it into a second database served on another port and check the
  // relation came through.
  TPDatabase restored;
  Server server2(&restored);
  ASSERT_TRUE(server2.Start().ok());
  StatusOr<std::unique_ptr<Client>> client2 =
      Client::Connect({.host = "127.0.0.1", .port = server2.port()});
  ASSERT_TRUE(client2.ok());
  StatusOr<ClientResult> load =
      (*client2)->Query("LOAD SNAPSHOT '" + path + "'");
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  StatusOr<ClientResult> wire = (*client2)->Query("SELECT * FROM r");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  Session session(&db_);
  StatusOr<TPRelation> local = session.Query("SELECT * FROM r");
  ASSERT_TRUE(local.ok());
  // Probabilities survive the snapshot bit-exactly, so full parity holds
  // even across the save/load round trip.
  ExpectParity(*local, *wire);
  server2.Shutdown();
  std::remove(path.c_str());
}

TEST_F(ServerEndToEndTest, EightConcurrentClientsMixingQueriesAndDdl) {
  StartServer();
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  const std::vector<std::string> queries = {
      "SELECT * FROM r",
      "SELECT * FROM r WHERE key < 50",
      "SELECT * FROM r INNER JOIN s ON key",
      "r UNION s",
      "r EXCEPT s",
      "r ANTI JOIN s ON key",
  };
  // Precompute expected canonical results in-process.
  Session session(&db_);
  std::vector<std::vector<CanonicalTuple>> expected;
  for (const std::string& query : queries) {
    StatusOr<TPRelation> local = session.Query(query);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    expected.push_back(CanonicalizeLocal(*local));
  }
  const std::string snapshot_dir = ::testing::TempDir();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      StatusOr<std::unique_ptr<Client>> client = Client::Connect(
          {.host = "127.0.0.1", .port = server_->port()});
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // One thread interleaves DDL (snapshot saves hold the catalog in
        // read mode like queries; they exercise the statement path).
        if (t == 0 && round % 2 == 1) {
          const std::string path = snapshot_dir + "/tpdb_ddl_" +
                                   std::to_string(round) + ".tpdb";
          StatusOr<ClientResult> save =
              (*client)->Query("SAVE SNAPSHOT '" + path + "'");
          if (!save.ok()) ++failures;
          std::remove(path.c_str());
          continue;
        }
        const size_t q = static_cast<size_t>(t + round) % queries.size();
        StatusOr<ClientResult> wire = (*client)->Query(queries[q]);
        if (!wire.ok()) {
          ++failures;
          continue;
        }
        const std::vector<CanonicalTuple> got = CanonicalizeWire(*wire);
        if (got.size() != expected[q].size()) {
          ++failures;
          continue;
        }
        for (size_t i = 0; i < got.size(); ++i)
          if (CompareRows(got[i].fact, expected[q][i].fact) != 0 ||
              !(got[i].interval == expected[q][i].interval) ||
              got[i].probability != expected[q][i].probability) {
            ++failures;
            break;
          }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->Stats().handshakes_ok, static_cast<uint64_t>(kThreads));
}

TEST_F(ServerEndToEndTest, ConnectionLimitRejectsTheExtraClient) {
  ServerOptions options;
  options.max_connections = 2;
  StartServer(options);
  StatusOr<std::unique_ptr<Client>> a = Connect();
  StatusOr<std::unique_ptr<Client>> b = Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  StatusOr<std::unique_ptr<Client>> c = Connect();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server_->Stats().connections_rejected, 1u);
  // Closing one admits the next.
  ASSERT_TRUE((*a)->Close().ok());
  for (int attempt = 0; attempt < 50; ++attempt) {
    StatusOr<std::unique_ptr<Client>> d = Connect();
    if (d.ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "slot was never released after Close()";
}

TEST_F(ServerEndToEndTest, ResultMemoryLimitSurfacesAsResourceExhausted) {
  ServerOptions options;
  options.per_session_result_bytes = 1024;  // far below any full scan
  StartServer(options);
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  StatusOr<ClientResult> big = (*client)->Query("SELECT * FROM r");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(big.status().message().find("memory limit"), std::string::npos);
  // The session survives and can still run small queries.
  StatusOr<ClientResult> small =
      (*client)->Query("SELECT * FROM r WHERE key < -1");
  EXPECT_TRUE(small.ok()) << small.status().ToString();
}

TEST_F(ServerEndToEndTest, CancelIsBestEffort) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    // Spam cancels while the query runs; whichever side wins the race,
    // the Query call below must return something sane.
    while (!done.load()) {
      if (!(*client)->CancelInflight().ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  StatusOr<ClientResult> result =
      (*client)->Query("SELECT * FROM r INNER JOIN s ON key");
  done.store(true);
  canceller.join();
  if (result.ok()) {
    Session session(&db_);
    StatusOr<TPRelation> local =
        session.Query("SELECT * FROM r INNER JOIN s ON key");
    ASSERT_TRUE(local.ok());
    ExpectParity(*local, *result);
  } else {
    EXPECT_NE(result.status().message().find("cancel"), std::string::npos);
  }
  // Either way the connection keeps working.
  StatusOr<ClientResult> after = (*client)->Query("SELECT * FROM r");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServerEndToEndTest, GracefulShutdownSaysGoodbyeAndRejectsLatecomers) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  const uint16_t port = server_->port();
  server_->Shutdown();
  // The held connection was told Goodbye; its next query fails cleanly.
  StatusOr<ClientResult> late = (*client)->Query("SELECT * FROM r");
  EXPECT_FALSE(late.ok());
  // New connections are refused outright (the listener is gone).
  StatusOr<std::unique_ptr<Client>> newcomer =
      Client::Connect({.host = "127.0.0.1", .port = port});
  EXPECT_FALSE(newcomer.ok());
  server_.reset();
}

TEST_F(ServerEndToEndTest, StatsCountTheTraffic) {
  StartServer();
  {
    StatusOr<std::unique_ptr<Client>> client = Connect();
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Query("SELECT * FROM r").ok());
    ASSERT_FALSE((*client)->Query("r FROB s").ok());
  }
  const ServerStats stats = server_->Stats();
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_GE(stats.handshakes_ok, 1u);
  EXPECT_GE(stats.queries_ok, 1u);
  EXPECT_GE(stats.queries_failed, 1u);
  EXPECT_GE(stats.batches_sent, 1u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST_F(ServerEndToEndTest, AppendOverTheWireHitsTheWal) {
  const std::string wal_path = ::testing::TempDir() + "/wire_append.wal";
  std::remove(wal_path.c_str());
  ASSERT_TRUE(db_.EnableWal(wal_path).ok());
  ASSERT_TRUE(db_.CreateRelation(
                     "bookings", Schema({{"key", DatumType::kInt64},
                                         {"loc", DatumType::kString}}))
                  .ok());
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::vector<AppendRowMsg> rows;
  rows.push_back({{Datum(int64_t{1}), Datum("GVA")}, 0.5, 0, 10, "b1"});
  rows.push_back({{Datum(int64_t{2}), Datum("ZAK")}, 0.25, 5, 20, "b2"});
  rows.push_back({{Datum(int64_t{3}), Datum::Null()}, 1.0, 7, 9, ""});
  StatusOr<uint64_t> appended = (*client)->Append("bookings", rows);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(*appended, 3u);

  // Acknowledged means logged: the create and the append are both on disk.
  ASSERT_TRUE(db_.wal_enabled());
  EXPECT_EQ(db_.wal()->records(), 2u);
  EXPECT_GT(db_.wal()->bytes(), 0u);

  // The rows are immediately queryable with their exact probabilities.
  StatusOr<ClientResult> wire =
      (*client)->Query("SELECT * FROM bookings ORDER BY key");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_EQ(wire->rows.size(), 3u);
  const size_t n = wire->schema.num_columns();
  EXPECT_EQ(wire->rows[0][0].AsInt64(), 1);
  EXPECT_EQ(wire->rows[0][n - 1].AsDouble(), 0.5);
  EXPECT_EQ(wire->rows[1][n - 1].AsDouble(), 0.25);
  EXPECT_EQ(wire->rows[2][n - 1].AsDouble(), 1.0);
  std::remove(wal_path.c_str());
}

TEST_F(ServerEndToEndTest, AppendValidationErrorsTravelAndNothingIsApplied) {
  ASSERT_TRUE(
      db_.CreateRelation("w", Schema({{"key", DatumType::kInt64}})).ok());
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());

  // Unknown relation.
  StatusOr<uint64_t> missing =
      (*client)->Append("nope", {{{Datum(int64_t{1})}, 1.0, 0, 1, ""}});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Second row is invalid (empty interval): all-or-nothing, so the valid
  // first row must not be applied either.
  std::vector<AppendRowMsg> rows;
  rows.push_back({{Datum(int64_t{1})}, 1.0, 0, 10, ""});
  rows.push_back({{Datum(int64_t{2})}, 1.0, 5, 5, ""});
  StatusOr<uint64_t> bad = (*client)->Append("w", rows);
  EXPECT_FALSE(bad.ok());
  ASSERT_TRUE(db_.Get("w").ok());
  EXPECT_EQ((*db_.Get("w"))->size(), 0u);

  // The connection survives an append error.
  StatusOr<uint64_t> good =
      (*client)->Append("w", {{{Datum(int64_t{7})}, 0.75, 0, 3, ""}});
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(*good, 1u);
  EXPECT_EQ((*db_.Get("w"))->size(), 1u);
}

TEST_F(ServerEndToEndTest, StorageStatsTravelAsRenderedText) {
  StartServer();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok());
  StatusOr<std::string> stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The fixture's relations and the WAL line must both show up.
  EXPECT_NE(stats->find("r"), std::string::npos);
  EXPECT_NE(stats->find("s"), std::string::npos);
  EXPECT_NE(stats->find("wal: disabled"), std::string::npos);
  // Stats leave the session ready for a normal query.
  EXPECT_TRUE((*client)->Query("SELECT * FROM r").ok());
}

}  // namespace
}  // namespace tpdb::server
