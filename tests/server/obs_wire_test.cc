// Observability over the wire: the kMetrics request must round-trip both
// exposition formats, its parser must reject every truncated prefix
// without crashing, kTraceQuery must return a chrome://tracing artifact
// whose plan-span row counts equal the embedded Explain rendering's
// actuals element-wise, and kStats must carry the server section.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace tpdb::server {
namespace {

class ObsWire : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(555);
    UniformWorkloadOptions options;
    options.num_tuples = 500;
    options.num_facts = 70;
    options.history_length = 1800;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db_.manager(), name, options, &rng);
      ASSERT_TRUE(rel.ok()) << rel.status().ToString();
      ASSERT_TRUE(db_.Register(std::move(*rel)).ok());
    }
    server_ = std::make_unique<Server>(&db_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  StatusOr<std::unique_ptr<Client>> Connect() {
    return Client::Connect({.host = "127.0.0.1", .port = server_->port()});
  }

  TPDatabase db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ObsWire, MetricsRoundTripPrometheus) {
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Run one query first so engine metrics exist with nonzero values.
  ASSERT_TRUE((*client)->Query("SELECT * FROM r WHERE key < 10").ok());
  StatusOr<std::string> text = (*client)->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE tpdb_server_connections_total counter"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("tpdb_engine_queries_total"), std::string::npos);
  EXPECT_NE(text->find("tpdb_server_active_connections"), std::string::npos);
}

TEST_F(ObsWire, MetricsRoundTripJson) {
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  StatusOr<std::string> json = (*client)->Metrics(MetricsFormat::kJson);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->front(), '{');
  EXPECT_EQ(json->back(), '}');
  EXPECT_NE(json->find("\"counters\""), std::string::npos) << *json;
  EXPECT_NE(json->find("\"histograms\""), std::string::npos);
}

TEST(ObsWireMsg, MetricsPayloadTruncationFuzz) {
  const std::string payload = BuildMetrics({0x1122334455667788ull,
                                            MetricsFormat::kJson});
  MetricsMsg out;
  ASSERT_TRUE(ParseMetrics(payload, &out).ok());
  EXPECT_EQ(out.query_id, 0x1122334455667788ull);
  EXPECT_EQ(out.format, MetricsFormat::kJson);
  // Every strict prefix must parse to an error, never crash or accept.
  for (size_t len = 0; len < payload.size(); ++len) {
    MetricsMsg truncated;
    EXPECT_FALSE(
        ParseMetrics(std::string_view(payload.data(), len), &truncated).ok())
        << "prefix of " << len << " bytes accepted";
  }
  // An unknown format byte is rejected too.
  std::string bad = payload;
  bad.back() = 0x7f;
  EXPECT_FALSE(ParseMetrics(bad, &out).ok());
}

/// "actual N rows" occurrences, in order, from an Explain rendering —
/// including one embedded (JSON-escaped) inside a chrome trace, where the
/// literal text still appears verbatim.
std::vector<uint64_t> ActualRows(const std::string& text) {
  std::vector<uint64_t> rows;
  size_t pos = 0;
  while ((pos = text.find("(actual ", pos)) != std::string::npos) {
    pos += 8;
    rows.push_back(std::strtoull(text.c_str() + pos, nullptr, 10));
  }
  return rows;
}

/// "\"rows\":N" occurrences among the trace's plan events, in order.
std::vector<uint64_t> PlanSpanRows(const std::string& chrome_json) {
  std::vector<uint64_t> rows;
  size_t pos = 0;
  const std::string other_data = "\"otherData\"";
  const size_t end = chrome_json.find(other_data);
  while ((pos = chrome_json.find("\"rows\":", pos)) != std::string::npos &&
         pos < end) {
    pos += 7;
    rows.push_back(std::strtoull(chrome_json.c_str() + pos, nullptr, 10));
  }
  return rows;
}

TEST_F(ObsWire, TraceQuerySpansMatchEmbeddedExplainActuals) {
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::vector<std::string> queries = {
      "SELECT * FROM r WHERE key < 30",
      "SELECT * FROM r INNER JOIN s ON key WHERE key < 50 ORDER BY key",
  };
  for (const std::string& sql : queries) {
    StatusOr<std::string> artifact = (*client)->TraceQuery(sql);
    ASSERT_TRUE(artifact.ok()) << sql << ": " << artifact.status().ToString();
    EXPECT_NE(artifact->find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(artifact->find("\"physical_plan\""), std::string::npos);
    const std::vector<uint64_t> from_plan = ActualRows(*artifact);
    const std::vector<uint64_t> from_spans = PlanSpanRows(*artifact);
    ASSERT_FALSE(from_plan.empty()) << *artifact;
    ASSERT_EQ(from_spans.size(), from_plan.size()) << *artifact;
    for (size_t i = 0; i < from_plan.size(); ++i)
      EXPECT_EQ(from_spans[i], from_plan[i]) << sql << " node " << i;
  }
  // The session stays usable after a traced query.
  EXPECT_TRUE((*client)->Query("SELECT * FROM r WHERE key < 5").ok());
}

TEST_F(ObsWire, StatsCarriesServerSection) {
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  StatusOr<std::string> stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("server:"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("uptime"), std::string::npos);
  EXPECT_NE(stats->find("1 active"), std::string::npos) << *stats;
}

TEST_F(ObsWire, ServerStatsGaugesTrackConnectionsAndBytes) {
  const ServerStats before = server_->Stats();
  StatusOr<std::unique_ptr<Client>> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Query("SELECT * FROM r WHERE key < 20").ok());
  const ServerStats during = server_->Stats();
  EXPECT_EQ(during.active_connections, before.active_connections + 1);
  EXPECT_GT(during.bytes_received, before.bytes_received);
  EXPECT_GT(during.bytes_sent, before.bytes_sent);
  EXPECT_GE(during.uptime_seconds, before.uptime_seconds);
  ASSERT_TRUE((*client)->Close().ok());
  // The reactor processes the close asynchronously; poll briefly.
  for (int i = 0; i < 100; ++i) {
    if (server_->Stats().active_connections == before.active_connections)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->Stats().active_connections, before.active_connections);
}

}  // namespace
}  // namespace tpdb::server
