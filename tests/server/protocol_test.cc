// Adversarial wire-protocol tests: whatever bytes a client throws at the
// server — truncated frames, bit flips, absurd length prefixes, garbage
// handshakes — the server answers with a clean Error frame and/or a close,
// never a crash, and keeps serving well-behaved clients afterwards.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datasets/generator.h"
#include "server/client.h"
#include "server/server.h"
#include "server/socket.h"
#include "server/wire.h"

namespace tpdb::server {
namespace {

std::string ValidHelloBytes(const std::string& token = "") {
  std::string out;
  AppendFrame(MsgType::kHello,
              BuildHello({kProtocolMagic, kProtocolVersion, token, "test"}),
              &out);
  return out;
}

std::string ValidQueryBytes(uint64_t id, const std::string& sql) {
  std::string out;
  AppendFrame(MsgType::kQuery, BuildQuery({id, sql}), &out);
  return out;
}

// -- Typed payload level ---------------------------------------------------

TEST(WirePayloadTest, AppendAndStatsRoundTrip) {
  AppendMsg msg;
  msg.query_id = 42;
  msg.relation = "bookings";
  msg.rows.push_back(
      {{Datum(int64_t{7}), Datum("GVA"), Datum(3.5), Datum::Null()},
       0.25,
       -3,
       11,
       "b1"});
  msg.rows.push_back({{}, 1.0, 0, 1, ""});  // zero-arity fact
  const std::string payload = BuildAppend(msg);
  AppendMsg back;
  ASSERT_TRUE(ParseAppend(payload, &back).ok());
  EXPECT_EQ(back.query_id, 42u);
  EXPECT_EQ(back.relation, "bookings");
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_EQ(back.rows[0].fact.size(), 4u);
  EXPECT_EQ(back.rows[0].fact[0].AsInt64(), 7);
  EXPECT_EQ(back.rows[0].fact[1].AsString(), "GVA");
  EXPECT_EQ(back.rows[0].fact[2].AsDouble(), 3.5);
  EXPECT_TRUE(back.rows[0].fact[3].is_null());
  EXPECT_EQ(back.rows[0].prob, 0.25);
  EXPECT_EQ(back.rows[0].ts, -3);
  EXPECT_EQ(back.rows[0].te, 11);
  EXPECT_EQ(back.rows[0].var_name, "b1");
  EXPECT_EQ(back.rows[1].fact.size(), 0u);

  const std::string stats_payload = BuildStats({9});
  StatsMsg stats;
  ASSERT_TRUE(ParseStats(stats_payload, &stats).ok());
  EXPECT_EQ(stats.query_id, 9u);
}

TEST(WirePayloadTest, EveryAppendPayloadTruncationIsRejectedNotCrashed) {
  AppendMsg msg;
  msg.query_id = 1;
  msg.relation = "r";
  msg.rows.push_back({{Datum(int64_t{5}), Datum("x")}, 0.5, 0, 4, "v"});
  const std::string payload = BuildAppend(msg);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    AppendMsg out;
    EXPECT_FALSE(ParseAppend(payload.substr(0, cut), &out).ok())
        << "prefix of " << cut << " bytes parsed as a whole payload";
  }
}

// -- FrameReader unit level ------------------------------------------------

TEST(FrameReaderTest, EveryPrefixTruncationIsSafe) {
  const std::string stream = ValidHelloBytes() + ValidQueryBytes(7, "r");
  for (size_t len = 0; len <= stream.size(); ++len) {
    FrameReader reader(kDefaultMaxFrameBytes);
    reader.Append(stream.data(), len);
    Frame frame;
    bool have = true;
    size_t frames = 0;
    for (;;) {
      const Status st = reader.Next(&frame, &have);
      ASSERT_TRUE(st.ok()) << "prefix " << len << ": " << st.ToString();
      if (!have) break;
      ++frames;
    }
    // A prefix yields only the frames it fully contains, in order.
    EXPECT_LE(frames, 2u);
  }
  // Byte-at-a-time delivery reassembles both frames.
  FrameReader reader(kDefaultMaxFrameBytes);
  size_t frames = 0;
  for (const char byte : stream) {
    reader.Append(&byte, 1);
    Frame frame;
    bool have = false;
    ASSERT_TRUE(reader.Next(&frame, &have).ok());
    if (have) ++frames;
  }
  EXPECT_EQ(frames, 2u);
}

TEST(FrameReaderTest, EverySingleBitFlipIsCaught) {
  const std::string frame_bytes = ValidQueryBytes(1, "r JOIN s ON a");
  for (size_t byte = 0; byte < frame_bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame_bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameReader reader(kDefaultMaxFrameBytes);
      reader.Append(corrupt.data(), corrupt.size());
      Frame frame;
      bool have = false;
      const Status st = reader.Next(&frame, &have);
      if (byte < 4) {
        // A flipped length prefix makes the frame longer/shorter: either
        // an over-limit error, an incomplete frame, or a CRC mismatch —
        // never a successfully parsed frame.
        EXPECT_FALSE(st.ok() && have) << "byte " << byte << " bit " << bit;
      } else {
        // A flip in type, payload or CRC must trip the checksum.
        ASSERT_TRUE(!st.ok() || !have) << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(FrameReaderTest, OversizedLengthPrefixIsRejectedUpFront) {
  FrameReader reader(/*max_frame_bytes=*/1024);
  const uint32_t len = 0xffffffffu;
  char prefix[4];
  std::memcpy(prefix, &len, sizeof(len));
  reader.Append(prefix, sizeof(prefix));
  Frame frame;
  bool have = false;
  const Status st = reader.Next(&frame, &have);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds"), std::string::npos);
}

// -- Against a live server -------------------------------------------------

class ProtocolAbuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(7);
    UniformWorkloadOptions options;
    options.num_tuples = 50;
    options.num_facts = 10;
    options.history_length = 500;
    StatusOr<TPRelation> rel =
        MakeUniformWorkload(db_.manager(), "r", options, &rng);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    ASSERT_TRUE(db_.Register(std::move(*rel)).ok());
    ASSERT_TRUE(server_.Start().ok());
  }

  void TearDown() override { server_.Shutdown(); }

  /// Sends raw bytes, collects every frame until the server closes, and
  /// returns them. Protocol-abuse connections always end in a close.
  std::vector<Frame> RawExchange(const std::string& bytes) {
    StatusOr<int> fd = ConnectTo("127.0.0.1", server_.port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) return {};
    EXPECT_TRUE(SendAll(*fd, bytes.data(), bytes.size()).ok());
    ::shutdown(*fd, SHUT_WR);  // half-close: nothing more is coming
    std::vector<Frame> frames;
    FrameReader reader(kDefaultMaxFrameBytes);
    char buf[4096];
    for (;;) {
      StatusOr<size_t> n = RecvSome(*fd, buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;
      reader.Append(buf, *n);
      Frame frame;
      bool have = false;
      while (reader.Next(&frame, &have).ok() && have)
        frames.push_back(frame);
    }
    CloseFd(*fd);
    return frames;
  }

  /// The liveness probe: a well-behaved client must still get answers.
  void ExpectServerStillServes() {
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect({.host = "127.0.0.1", .port = server_.port()});
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    StatusOr<ClientResult> result = (*client)->Query("SELECT * FROM r");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->rows.size(), 0u);
  }

  static bool HasError(const std::vector<Frame>& frames) {
    for (const Frame& f : frames)
      if (f.type == MsgType::kError) return true;
    return false;
  }

  TPDatabase db_;
  Server server_{&db_};
};

TEST_F(ProtocolAbuseTest, TruncatedFrameThenHangupIsHandled) {
  const std::string stream = ValidHelloBytes() + ValidQueryBytes(1, "r");
  // Cut the stream at every length that ends mid-frame; the server sees a
  // partial frame followed by EOF and must just drop the connection.
  for (const size_t len :
       {size_t{1}, size_t{3}, size_t{6}, stream.size() - 1}) {
    RawExchange(stream.substr(0, len));
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolAbuseTest, BitFlippedCrcGetsErrorFrameAndClose) {
  std::string stream = ValidHelloBytes();
  stream.back() ^= 0x40;  // corrupt the CRC trailer of the Hello frame
  const std::vector<Frame> frames = RawExchange(stream);
  EXPECT_TRUE(HasError(frames));
  ExpectServerStillServes();
  EXPECT_GE(server_.Stats().protocol_errors, 1u);
}

TEST_F(ProtocolAbuseTest, OversizedLengthPrefixGetsErrorFrameAndClose) {
  std::string stream(8, '\0');
  const uint32_t len = 0x7fffffffu;
  std::memcpy(stream.data(), &len, sizeof(len));
  const std::vector<Frame> frames = RawExchange(stream);
  ASSERT_TRUE(HasError(frames));
  for (const Frame& f : frames) {
    if (f.type != MsgType::kError) continue;
    ErrorMsg msg;
    ASSERT_TRUE(ParseError(f.payload, &msg).ok());
    EXPECT_NE(msg.message.find("exceeds"), std::string::npos);
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolAbuseTest, GarbageHandshakeGetsCleanErrorOrClose) {
  // Deterministic pseudo-random garbage, several rounds. Most rounds die
  // in the framing layer (length/CRC); a round that happens to frame
  // correctly still fails the Hello magic check.
  Random rng(1234);
  for (int round = 0; round < 20; ++round) {
    std::string garbage;
    const int len = 1 + static_cast<int>(rng.Next() % 300);
    for (int i = 0; i < len; ++i)
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    RawExchange(garbage);
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolAbuseTest, WellFormedFrameWithWrongMagicIsRejected) {
  std::string stream;
  AppendFrame(MsgType::kHello,
              BuildHello({0xdeadbeef, kProtocolVersion, "", "imposter"}),
              &stream);
  const std::vector<Frame> frames = RawExchange(stream);
  ASSERT_TRUE(HasError(frames));
  ExpectServerStillServes();
}

TEST_F(ProtocolAbuseTest, QueryBeforeHelloIsRejected) {
  const std::vector<Frame> frames = RawExchange(ValidQueryBytes(1, "r"));
  ASSERT_TRUE(HasError(frames));
  ExpectServerStillServes();
}

TEST_F(ProtocolAbuseTest, UnknownMessageTypeAfterHandshakeIsRejected) {
  std::string stream = ValidHelloBytes();
  AppendFrame(static_cast<MsgType>(200), "mystery", &stream);
  const std::vector<Frame> frames = RawExchange(stream);
  ASSERT_TRUE(HasError(frames));
  ExpectServerStillServes();
}

TEST_F(ProtocolAbuseTest, TruncatedTypedPayloadIsRejected) {
  // A frame that passes CRC but whose Query payload is too short for its
  // declared fields.
  std::string stream = ValidHelloBytes();
  AppendFrame(MsgType::kQuery, std::string(3, '\x01'), &stream);
  const std::vector<Frame> frames = RawExchange(stream);
  ASSERT_TRUE(HasError(frames));
  ExpectServerStillServes();
}

class AuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.auth_token = "sesame";
    server_ = std::make_unique<Server>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Shutdown(); }

  TPDatabase db_;
  std::unique_ptr<Server> server_;
};

TEST_F(AuthTest, BadTokenIsRejectedGoodTokenAccepted) {
  StatusOr<std::unique_ptr<Client>> bad = Client::Connect(
      {.host = "127.0.0.1", .port = server_->port(), .auth_token = "guess"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("authentication"), std::string::npos);

  StatusOr<std::unique_ptr<Client>> good = Client::Connect(
      {.host = "127.0.0.1", .port = server_->port(), .auth_token = "sesame"});
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_FALSE((*good)->banner().empty());
}

TEST_F(AuthTest, WrongProtocolVersionIsRejected) {
  StatusOr<int> fd = ConnectTo("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  std::string stream;
  AppendFrame(MsgType::kHello,
              BuildHello({kProtocolMagic, kProtocolVersion + 7, "sesame",
                          "time-traveler"}),
              &stream);
  ASSERT_TRUE(SendAll(*fd, stream.data(), stream.size()).ok());
  FrameReader reader(kDefaultMaxFrameBytes);
  char buf[4096];
  bool saw_version_error = false;
  for (;;) {
    StatusOr<size_t> n = RecvSome(*fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    reader.Append(buf, *n);
    Frame frame;
    bool have = false;
    while (reader.Next(&frame, &have).ok() && have) {
      if (frame.type != MsgType::kError) continue;
      ErrorMsg msg;
      ASSERT_TRUE(ParseError(frame.payload, &msg).ok());
      saw_version_error =
          msg.message.find("version") != std::string::npos;
    }
  }
  CloseFd(*fd);
  EXPECT_TRUE(saw_version_error);
}

}  // namespace
}  // namespace tpdb::server
