// Unit tests of the window row layout, the lineage-concatenation functions,
// and pipeline instrumentation of the window plans.
#include <gtest/gtest.h>

#include "engine/explain.h"
#include "engine/materialize.h"
#include "tests/reference/fixtures.h"
#include "tp/concat.h"
#include "tp/lawan.h"
#include "tp/lawau.h"
#include "tp/plans.h"
#include "tp/window.h"

namespace tpdb {
namespace {

TEST(WindowLayout, ColumnIndicesArePacked) {
  const WindowLayout layout(2, 3);
  EXPECT_EQ(layout.rid(), 0);
  EXPECT_EQ(layout.r_fact(0), 1);
  EXPECT_EQ(layout.r_fact(1), 2);
  EXPECT_EQ(layout.r_ts(), 3);
  EXPECT_EQ(layout.r_te(), 4);
  EXPECT_EQ(layout.r_lin(), 5);
  EXPECT_EQ(layout.s_fact(0), 6);
  EXPECT_EQ(layout.s_fact(2), 8);
  EXPECT_EQ(layout.s_ts(), 9);
  EXPECT_EQ(layout.s_te(), 10);
  EXPECT_EQ(layout.s_lin(), 11);
  EXPECT_EQ(layout.w_ts(), 12);
  EXPECT_EQ(layout.w_te(), 13);
  EXPECT_EQ(layout.w_class(), 14);
  EXPECT_EQ(layout.num_columns(), 15);
}

TEST(WindowLayout, MakeSchemaDisambiguatesCollidingNames) {
  Schema r;
  r.AddColumn({"k", DatumType::kInt64});
  Schema s;
  s.AddColumn({"k", DatumType::kInt64});
  const WindowLayout layout(1, 1);
  const Schema schema = layout.MakeSchema(r, s);
  EXPECT_EQ(schema.num_columns(), 12u);
  EXPECT_EQ(schema.column(layout.s_fact(0)).name, "k_s");
}

TEST(WindowClassNames, AllNamed) {
  EXPECT_STREQ(WindowClassName(WindowClass::kOverlapping), "overlapping");
  EXPECT_STREQ(WindowClassName(WindowClass::kUnmatched), "unmatched");
  EXPECT_STREQ(WindowClassName(WindowClass::kNegating), "negating");
}

class ConcatTest : public ::testing::Test {
 protected:
  LineageManager mgr_;
  LineageRef lr_ = mgr_.Var(mgr_.RegisterVariable(0.7, "r1"));
  LineageRef ls_ = mgr_.Var(mgr_.RegisterVariable(0.6, "s1"));
};

TEST_F(ConcatTest, OverlappingUsesAnd) {
  EXPECT_EQ(
      ConcatWindowLineage(&mgr_, WindowClass::kOverlapping, lr_, ls_),
      mgr_.And(lr_, ls_));
}

TEST_F(ConcatTest, UnmatchedPassesLinR) {
  EXPECT_EQ(ConcatWindowLineage(&mgr_, WindowClass::kUnmatched, lr_,
                                LineageRef::Null()),
            lr_);
}

TEST_F(ConcatTest, NegatingUsesAndNot) {
  EXPECT_EQ(ConcatWindowLineage(&mgr_, WindowClass::kNegating, lr_, ls_),
            mgr_.AndNot(lr_, ls_));
}

TEST(WindowToString, RendersClassAndLineages) {
  LineageManager mgr;
  TPWindow w;
  w.cls = WindowClass::kNegating;
  w.fact_r = {Datum("Ann"), Datum("ZAK")};
  w.window = Interval(5, 6);
  w.lin_r = mgr.Var(mgr.RegisterVariable(0.7, "a1"));
  w.lin_s = mgr.Var(mgr.RegisterVariable(0.6, "b2"));
  const std::string text = w.ToString(mgr);
  EXPECT_NE(text.find("negating"), std::string::npos);
  EXPECT_NE(text.find("a1"), std::string::npos);
  EXPECT_NE(text.find("[5,6)"), std::string::npos);
}

// Instrumentation across the window pipeline: LAWAU adds exactly the gap
// windows, LAWAN adds exactly the negating windows, and nothing is
// recomputed (each stage's row count is its input plus its additions).
TEST(PipelineInstrumentation, StageRowCountsAreAdditive) {
  auto fx = testing::MakeFig1Example();
  StatusOr<WindowPlan> plan = MakeWindowPlan(
      *fx->a, *fx->b, fx->theta, WindowStage::kOverlap);
  ASSERT_TRUE(plan.ok());

  ExecStats stats;
  OperatorPtr root =
      Instrument("overlap_join", std::move(plan->root), &stats);
  root = std::make_unique<Lawau>(std::move(root), plan->layout);
  root = Instrument("lawau", std::move(root), &stats);
  root = std::make_unique<Lawan>(std::move(root), plan->layout,
                                 fx->a->manager());
  root = Instrument("lawan", std::move(root), &stats);

  const size_t total = Drain(root.get());
  // Fig. 2: 2 overlapping + 1 join-level unmatched (a2) + 1 gap (w1)
  // + 3 negating = 7.
  EXPECT_EQ(total, 7u);
  ASSERT_EQ(stats.nodes().size(), 3u);
  EXPECT_EQ(stats.nodes()[0]->rows, 3u);  // join: w3, w4 + unmatched a2
  EXPECT_EQ(stats.nodes()[1]->rows, 4u);  // + gap [2,4)
  EXPECT_EQ(stats.nodes()[2]->rows, 7u);  // + w5, w6, w7
}

}  // namespace
}  // namespace tpdb
