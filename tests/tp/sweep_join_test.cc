// Sweep-line join (OverlapAlgorithm::kSweep) correctness: element-wise
// parity with the partitioned probe and the nested loop on every join
// kind, plus the adversarial interval shapes a sweep must survive —
// all-overlapping inputs, duration-1 intervals, boundary-touching (Meets)
// intervals, null keys, empty sides, and predicate-only θ (the shape the
// hash-based plans degenerate on).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.h"
#include "datasets/generator.h"
#include "lineage/probability.h"
#include "tp/operators.h"
#include "tp/plans.h"
#include "tp/tp_relation.h"

namespace tpdb {
namespace {

constexpr TPJoinKind kAllKinds[] = {
    TPJoinKind::kInner,      TPJoinKind::kAnti,      TPJoinKind::kLeftOuter,
    TPJoinKind::kRightOuter, TPJoinKind::kFullOuter, TPJoinKind::kSemi};

struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

std::vector<CanonicalTuple> Canonicalize(const TPRelation& rel) {
  ProbabilityEngine engine(rel.manager());
  std::vector<CanonicalTuple> out;
  out.reserve(rel.size());
  for (const TPTuple& t : rel.tuples())
    out.push_back(
        CanonicalTuple{t.fact, t.interval, engine.Probability(t.lineage)});
  std::sort(out.begin(), out.end(),
            [](const CanonicalTuple& a, const CanonicalTuple& b) {
              const int c = CompareRows(a.fact, b.fact);
              if (c != 0) return c < 0;
              if (a.interval != b.interval) return a.interval < b.interval;
              return a.probability < b.probability;
            });
  return out;
}

/// Element-wise comparison after canonical sorting — values, intervals,
/// and exact probabilities must all agree.
void ExpectSameContents(const TPRelation& expected_rel,
                        const TPRelation& actual_rel) {
  ASSERT_EQ(expected_rel.size(), actual_rel.size());
  const std::vector<CanonicalTuple> expected = Canonicalize(expected_rel);
  const std::vector<CanonicalTuple> actual = Canonicalize(actual_rel);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(CompareRows(expected[i].fact, actual[i].fact), 0)
        << "fact mismatch at " << i;
    EXPECT_EQ(expected[i].interval, actual[i].interval)
        << "interval mismatch at " << i;
    EXPECT_NEAR(expected[i].probability, actual[i].probability, 1e-9)
        << "probability mismatch at " << i;
  }
}

TPJoinOptions WithAlgorithm(OverlapAlgorithm algorithm) {
  TPJoinOptions options;
  options.overlap_algorithm = algorithm;
  return options;
}

/// Sweep vs partitioned vs nested loop on one (r, s, θ) for every kind.
void ExpectAlgorithmParity(const TPRelation& r, const TPRelation& s,
                           const JoinCondition& theta) {
  for (const TPJoinKind kind : kAllKinds) {
    SCOPED_TRACE(TPJoinKindName(kind));
    StatusOr<TPRelation> sweep =
        TPJoin(kind, r, s, theta, WithAlgorithm(OverlapAlgorithm::kSweep));
    ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
    StatusOr<TPRelation> probe = TPJoin(
        kind, r, s, theta, WithAlgorithm(OverlapAlgorithm::kPartitioned));
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    StatusOr<TPRelation> loop = TPJoin(
        kind, r, s, theta, WithAlgorithm(OverlapAlgorithm::kNestedLoop));
    ASSERT_TRUE(loop.ok()) << loop.status().ToString();
    ExpectSameContents(*probe, *sweep);
    ExpectSameContents(*loop, *sweep);
    EXPECT_TRUE(sweep->Validate().ok());
  }
}

struct Workload {
  LineageManager manager;
  std::unique_ptr<TPRelation> r;
  std::unique_ptr<TPRelation> s;
};

std::unique_ptr<Workload> MakeWorkload(uint64_t seed, int64_t tuples,
                                       double fact_skew = 0.0) {
  auto w = std::make_unique<Workload>();
  Random rng(seed);
  UniformWorkloadOptions options;
  options.num_tuples = tuples;
  options.num_facts = std::max<int64_t>(tuples / 8, 4);
  options.history_length = 4000;
  options.avg_duration = 40.0;
  options.gap_probability = 0.3;
  options.fact_skew = fact_skew;
  StatusOr<TPRelation> r = MakeUniformWorkload(&w->manager, "r", options, &rng);
  TPDB_CHECK(r.ok()) << r.status().ToString();
  StatusOr<TPRelation> s = MakeUniformWorkload(&w->manager, "s", options, &rng);
  TPDB_CHECK(s.ok()) << s.status().ToString();
  w->r = std::make_unique<TPRelation>(std::move(*r));
  w->s = std::make_unique<TPRelation>(std::move(*s));
  return w;
}

/// Two-column fact schema (key, id) so distinct facts can share one key.
Schema KeyIdSchema() {
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  schema.AddColumn({"id", DatumType::kInt64});
  return schema;
}

TEST(SweepJoinTest, MatchesOtherAlgorithmsOnUniformWorkload) {
  const std::unique_ptr<Workload> w = MakeWorkload(42, 600);
  ExpectAlgorithmParity(*w->r, *w->s, JoinCondition::Equals("key"));
}

TEST(SweepJoinTest, MatchesOtherAlgorithmsUnderHeavyKeySkew) {
  const std::unique_ptr<Workload> w = MakeWorkload(17, 600, /*fact_skew=*/1.4);
  ExpectAlgorithmParity(*w->r, *w->s, JoinCondition::Equals("key"));
}

TEST(SweepJoinTest, WindowStreamMatchesPartitionedPlan) {
  const std::unique_ptr<Workload> w = MakeWorkload(5, 300);
  const JoinCondition theta = JoinCondition::Equals("key");
  StatusOr<std::vector<TPWindow>> sweep = ComputeWindows(
      *w->r, *w->s, theta, WindowStage::kWuon, OverlapAlgorithm::kSweep);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  StatusOr<std::vector<TPWindow>> probe = ComputeWindows(
      *w->r, *w->s, theta, WindowStage::kWuon, OverlapAlgorithm::kPartitioned);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  SortWindows(&*sweep);
  SortWindows(&*probe);
  ASSERT_EQ(sweep->size(), probe->size());
  for (size_t i = 0; i < sweep->size(); ++i) {
    EXPECT_EQ((*sweep)[i].rid, (*probe)[i].rid) << "window " << i;
    EXPECT_EQ((*sweep)[i].cls, (*probe)[i].cls) << "window " << i;
    EXPECT_EQ((*sweep)[i].window, (*probe)[i].window) << "window " << i;
    EXPECT_EQ((*sweep)[i].r_interval, (*probe)[i].r_interval)
        << "window " << i;
  }
}

TEST(SweepJoinTest, AllOverlappingOneKey) {
  // Every tuple shares the key and every interval overlaps every other —
  // the shape where one active set holds everything at once.
  LineageManager manager;
  TPRelation r("r", KeyIdSchema(), &manager);
  TPRelation s("s", KeyIdSchema(), &manager);
  for (int64_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(r.AppendBase({Datum(int64_t{1}), Datum(i)},
                             Interval(i, 100 + i), 0.5 + 0.01 * i)
                    .ok());
    ASSERT_TRUE(s.AppendBase({Datum(int64_t{1}), Datum(i + 100)},
                             Interval(50 - i, 150), 0.9)
                    .ok());
  }
  ExpectAlgorithmParity(r, s, JoinCondition::Equals("key"));
}

TEST(SweepJoinTest, DurationOneAndBoundaryTouchingIntervals) {
  // Duration-1 intervals stress the te <= t expiry rule; Meets pairs
  // ([a,b) vs [b,c)) must never match — half-open intervals do not
  // overlap at the shared endpoint.
  LineageManager manager;
  TPRelation r("r", KeyIdSchema(), &manager);
  TPRelation s("s", KeyIdSchema(), &manager);
  for (int64_t i = 0; i < 20; ++i) {
    // r: duration-1 intervals marching along the timeline.
    ASSERT_TRUE(r.AppendBase({Datum(int64_t{7}), Datum(i)},
                             Interval(i * 2, i * 2 + 1), 0.8)
                    .ok());
    // s: adjacent decade blocks [10i, 10i+10) — some meet r starts exactly.
    ASSERT_TRUE(s.AppendBase({Datum(int64_t{7}), Datum(i + 100)},
                             Interval(i * 10, i * 10 + 10), 0.6)
                    .ok());
  }
  ExpectAlgorithmParity(r, s, JoinCondition::Equals("key"));

  // The pure Meets shape: r ends exactly where s starts — no overlap, so
  // an inner join is empty and a left outer join is all-unmatched.
  TPRelation r2("r2", KeyIdSchema(), &manager);
  TPRelation s2("s2", KeyIdSchema(), &manager);
  ASSERT_TRUE(
      r2.AppendBase({Datum(int64_t{1}), Datum(int64_t{0})}, {0, 10}, 0.5)
          .ok());
  ASSERT_TRUE(
      s2.AppendBase({Datum(int64_t{1}), Datum(int64_t{1})}, {10, 20}, 0.5)
          .ok());
  StatusOr<TPRelation> inner =
      TPJoin(TPJoinKind::kInner, r2, s2, JoinCondition::Equals("key"),
             WithAlgorithm(OverlapAlgorithm::kSweep));
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->size(), 0u);
  StatusOr<TPRelation> left =
      TPJoin(TPJoinKind::kLeftOuter, r2, s2, JoinCondition::Equals("key"),
             WithAlgorithm(OverlapAlgorithm::kSweep));
  ASSERT_TRUE(left.ok());
  ASSERT_EQ(left->size(), 1u);
  EXPECT_EQ(left->tuple(0).interval, Interval(0, 10));
  ExpectAlgorithmParity(r2, s2, JoinCondition::Equals("key"));
}

TEST(SweepJoinTest, NullKeysNeverMatchButStillFlowUnmatched) {
  LineageManager manager;
  TPRelation r("r", KeyIdSchema(), &manager);
  TPRelation s("s", KeyIdSchema(), &manager);
  for (int64_t i = 0; i < 12; ++i) {
    const Datum key = i % 3 == 0 ? Datum() : Datum(i % 4);
    ASSERT_TRUE(
        r.AppendBase({key, Datum(i)}, Interval(i * 3, i * 3 + 30), 0.7).ok());
    ASSERT_TRUE(s.AppendBase({key, Datum(i + 100)},
                             Interval(i * 4, i * 4 + 25), 0.55)
                    .ok());
  }
  ExpectAlgorithmParity(r, s, JoinCondition::Equals("key"));
}

TEST(SweepJoinTest, EmptySides) {
  LineageManager manager;
  TPRelation r("r", KeyIdSchema(), &manager);
  TPRelation s("s", KeyIdSchema(), &manager);
  TPRelation empty_r("er", KeyIdSchema(), &manager);
  TPRelation empty_s("es", KeyIdSchema(), &manager);
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        r.AppendBase({Datum(i % 2), Datum(i)}, Interval(i, i + 10), 0.5).ok());
    ASSERT_TRUE(s.AppendBase({Datum(i % 2), Datum(i + 50)},
                             Interval(i + 5, i + 12), 0.5)
                    .ok());
  }
  ExpectAlgorithmParity(r, empty_s, JoinCondition::Equals("key"));
  ExpectAlgorithmParity(empty_r, s, JoinCondition::Equals("key"));
  ExpectAlgorithmParity(empty_r, empty_s, JoinCondition::Equals("key"));
}

TEST(SweepJoinTest, PredicateOnlyThetaTakesSaneSweepPath) {
  // θ with no equality columns but a real predicate: the hash-based plans
  // see one degenerate partition; the sweep's single active set is bounded
  // by temporal overlap. Results must match the nested loop exactly.
  const std::unique_ptr<Workload> w = MakeWorkload(11, 200);
  JoinCondition theta;
  theta.predicate = [](const Row& r_fact, const Row& s_fact) {
    return r_fact[0].AsInt64() % 5 == s_fact[0].AsInt64() % 5;
  };
  EXPECT_FALSE(theta.IsTrivial());
  ExpectAlgorithmParity(*w->r, *w->s, theta);

  // kAuto routes the predicate-only shape to the sweep (inputs are large
  // enough); results stay identical to the nested loop either way.
  StatusOr<TPRelation> auto_join =
      TPJoin(TPJoinKind::kLeftOuter, *w->r, *w->s, theta,
             WithAlgorithm(OverlapAlgorithm::kAuto));
  ASSERT_TRUE(auto_join.ok()) << auto_join.status().ToString();
  StatusOr<TPRelation> loop =
      TPJoin(TPJoinKind::kLeftOuter, *w->r, *w->s, theta,
             WithAlgorithm(OverlapAlgorithm::kNestedLoop));
  ASSERT_TRUE(loop.ok());
  ExpectSameContents(*loop, *auto_join);
}

TEST(SweepJoinTest, SortednessFlagTracksAppendsAndAbsorb) {
  LineageManager manager;
  TPRelation rel("r", KeyIdSchema(), &manager);
  EXPECT_TRUE(rel.sorted_by_ts());  // vacuously true while empty
  ASSERT_TRUE(rel.AppendBase({Datum(int64_t{1}), Datum(int64_t{0})}, {0, 10},
                             0.5)
                  .ok());
  ASSERT_TRUE(rel.AppendBase({Datum(int64_t{1}), Datum(int64_t{1})}, {5, 15},
                             0.5)
                  .ok());
  ASSERT_TRUE(rel.AppendBase({Datum(int64_t{1}), Datum(int64_t{2})}, {5, 20},
                             0.5)
                  .ok());
  EXPECT_TRUE(rel.sorted_by_ts());  // equal starts stay sorted

  TPRelation unsorted("u", KeyIdSchema(), &manager);
  ASSERT_TRUE(unsorted
                  .AppendBase({Datum(int64_t{2}), Datum(int64_t{0})}, {50, 60},
                              0.5)
                  .ok());
  ASSERT_TRUE(unsorted
                  .AppendBase({Datum(int64_t{2}), Datum(int64_t{1})}, {10, 20},
                              0.5)
                  .ok());
  EXPECT_FALSE(unsorted.sorted_by_ts());

  // Absorbing a sorted suffix whose first start is past our last keeps the
  // flag; absorbing an unsorted relation clears it.
  TPRelation tail("t", KeyIdSchema(), &manager);
  ASSERT_TRUE(
      tail.AppendBase({Datum(int64_t{3}), Datum(int64_t{0})}, {30, 40}, 0.5)
          .ok());
  ASSERT_TRUE(rel.Absorb(std::move(tail)).ok());
  EXPECT_TRUE(rel.sorted_by_ts());
  ASSERT_TRUE(rel.Absorb(std::move(unsorted)).ok());
  EXPECT_FALSE(rel.sorted_by_ts());
}

TEST(SweepJoinTest, SortedInputsSkipTheSortAndStayCorrect) {
  // Generator output is not _ts-ordered; re-append in _ts order so the
  // relation carries the sortedness flag, then verify the hint-driven
  // sort-skip produces identical results.
  const std::unique_ptr<Workload> w = MakeWorkload(23, 300);
  std::vector<const TPTuple*> ordered;
  for (const TPTuple& t : w->r->tuples()) ordered.push_back(&t);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TPTuple* a, const TPTuple* b) {
                     return a->interval.start < b->interval.start;
                   });
  TPRelation sorted_r("rs", w->r->fact_schema(), w->r->manager());
  for (const TPTuple* t : ordered) {
    ASSERT_TRUE(
        sorted_r.AppendDerived(t->fact, t->interval, t->lineage).ok());
  }
  ASSERT_TRUE(sorted_r.sorted_by_ts());
  ASSERT_FALSE(w->r->sorted_by_ts());

  const JoinCondition theta = JoinCondition::Equals("key");
  StatusOr<TPRelation> from_sorted =
      TPJoin(TPJoinKind::kLeftOuter, sorted_r, *w->s, theta,
             WithAlgorithm(OverlapAlgorithm::kSweep));
  ASSERT_TRUE(from_sorted.ok()) << from_sorted.status().ToString();
  StatusOr<TPRelation> from_unsorted =
      TPJoin(TPJoinKind::kLeftOuter, *w->r, *w->s, theta,
             WithAlgorithm(OverlapAlgorithm::kSweep));
  ASSERT_TRUE(from_unsorted.ok());
  ExpectSameContents(*from_unsorted, *from_sorted);
}

}  // namespace
}  // namespace tpdb
