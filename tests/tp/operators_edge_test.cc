// Edge cases of the public join operators: error paths, schema/name
// derivation, validation hooks, self joins, and degenerate θ.
#include <gtest/gtest.h>

#include "tests/reference/fixtures.h"
#include "tp/operators.h"

namespace tpdb {
namespace {

using testing::MakeFig1Example;

TEST(TPJoinErrors, DifferentManagersRejected) {
  LineageManager m1;
  LineageManager m2;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation r("r", schema, &m1);
  TPRelation s("s", schema, &m2);
  StatusOr<TPRelation> q =
      TPAntiJoin(r, s, JoinCondition::Equals("k"));
  EXPECT_FALSE(q.ok());
}

TEST(TPJoinErrors, ValidateInputsCatchesBadRelation) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation r("r", schema, &mgr);
  TPRelation s("s", schema, &mgr);
  // Two tuples with the same fact and overlapping intervals: invalid.
  ASSERT_TRUE(r.AppendBase({Datum(static_cast<int64_t>(1))}, Interval(0, 9),
                           0.5)
                  .ok());
  ASSERT_TRUE(r.AppendBase({Datum(static_cast<int64_t>(1))}, Interval(5, 12),
                           0.6)
                  .ok());
  StatusOr<TPRelation> checked =
      TPLeftOuterJoin(r, s, JoinCondition::Equals("k"));
  EXPECT_FALSE(checked.ok());

  TPJoinOptions unchecked;
  unchecked.validate_inputs = false;
  StatusOr<TPRelation> forced =
      TPLeftOuterJoin(r, s, JoinCondition::Equals("k"), unchecked);
  EXPECT_TRUE(forced.ok());  // caller takes responsibility
}

TEST(TPJoinNaming, DefaultAndExplicitResultNames) {
  auto fx = MakeFig1Example();
  StatusOr<TPRelation> q = TPAntiJoin(*fx->a, *fx->b, fx->theta);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name(), "a_anti_b");
  TPJoinOptions options;
  options.result_name = "no_rooms";
  StatusOr<TPRelation> named =
      TPAntiJoin(*fx->a, *fx->b, fx->theta, options);
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->name(), "no_rooms");
}

TEST(TPJoinSchemas, OutputSchemasPerKind) {
  Schema r;
  r.AddColumn({"Name", DatumType::kString});
  r.AddColumn({"Loc", DatumType::kString});
  Schema s;
  s.AddColumn({"Hotel", DatumType::kString});
  s.AddColumn({"Loc", DatumType::kString});
  EXPECT_EQ(TPJoinOutputSchema(TPJoinKind::kAnti, r, s).num_columns(), 2u);
  EXPECT_EQ(TPJoinOutputSchema(TPJoinKind::kSemi, r, s).num_columns(), 2u);
  const Schema full = TPJoinOutputSchema(TPJoinKind::kFullOuter, r, s);
  EXPECT_EQ(full.num_columns(), 4u);
  EXPECT_GE(full.IndexOf("Loc_s"), 0);  // collision disambiguated
}

TEST(TPJoinSelf, AntiSelfJoinHasZeroProbability) {
  // r ▷ r: every tuple matches itself, so each output tuple's lineage is
  // λ ∧ ¬(λ ∨ ...) — unsatisfiable wherever the tuple itself is valid.
  auto fx = MakeFig1Example();
  StatusOr<TPRelation> q = TPAntiJoin(*fx->a, *fx->a,
                                      JoinCondition::Equals("Loc"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  for (size_t i = 0; i < q->size(); ++i)
    EXPECT_NEAR(q->Probability(i), 0.0, 1e-12);
}

TEST(TPJoinSelf, SemiSelfJoinKeepsOriginalProbability) {
  // r ⋉ r on a fact-identifying θ: λ ∧ λ = λ.
  auto fx = MakeFig1Example();
  JoinCondition theta;
  theta.equal_columns.emplace_back("Name", "Name");
  theta.equal_columns.emplace_back("Loc", "Loc");
  StatusOr<TPRelation> q = TPSemiJoin(*fx->a, *fx->a, theta);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), fx->a->size());
  for (size_t i = 0; i < q->size(); ++i) {
    EXPECT_EQ(q->tuple(i).lineage, fx->a->tuple(i).lineage);
  }
}

TEST(TPJoinDegenerateTheta, NeverMatchingPredicate) {
  auto fx = MakeFig1Example();
  JoinCondition theta;
  theta.predicate = [](const Row&, const Row&) { return false; };
  StatusOr<TPRelation> left = TPLeftOuterJoin(*fx->a, *fx->b, theta);
  ASSERT_TRUE(left.ok());
  // Nothing matches: left outer = each a tuple passes through unchanged.
  ASSERT_EQ(left->size(), fx->a->size());
  StatusOr<TPRelation> inner = TPInnerJoin(*fx->a, *fx->b, theta);
  ASSERT_TRUE(inner.ok());
  EXPECT_TRUE(inner->empty());
  StatusOr<TPRelation> semi = TPSemiJoin(*fx->a, *fx->b, theta);
  ASSERT_TRUE(semi.ok());
  EXPECT_TRUE(semi->empty());
}

TEST(TPJoinKindNames, AllDistinct) {
  EXPECT_STREQ(TPJoinKindName(TPJoinKind::kInner), "inner");
  EXPECT_STREQ(TPJoinKindName(TPJoinKind::kAnti), "anti");
  EXPECT_STREQ(TPJoinKindName(TPJoinKind::kLeftOuter), "left-outer");
  EXPECT_STREQ(TPJoinKindName(TPJoinKind::kRightOuter), "right-outer");
  EXPECT_STREQ(TPJoinKindName(TPJoinKind::kFullOuter), "full-outer");
  EXPECT_STREQ(TPJoinKindName(TPJoinKind::kSemi), "semi");
}

TEST(TPJoinResults, OutputsAreValidTPRelations) {
  auto fx = MakeFig1Example();
  for (const TPJoinKind kind :
       {TPJoinKind::kInner, TPJoinKind::kAnti, TPJoinKind::kLeftOuter,
        TPJoinKind::kRightOuter, TPJoinKind::kFullOuter, TPJoinKind::kSemi}) {
    StatusOr<TPRelation> q = TPJoin(kind, *fx->a, *fx->b, fx->theta);
    ASSERT_TRUE(q.ok()) << TPJoinKindName(kind);
    EXPECT_TRUE(q->Validate().ok())
        << TPJoinKindName(kind) << ": " << q->Validate().ToString();
  }
}

TEST(TPJoinComposition, JoinOfJoinResult) {
  // Derived relations (with compound lineages) must be joinable again:
  // (a ⟕ b) ▷ b — three-way composition exercising lineage reuse.
  auto fx = MakeFig1Example();
  StatusOr<TPRelation> left = TPLeftOuterJoin(*fx->a, *fx->b, fx->theta);
  ASSERT_TRUE(left.ok());
  JoinCondition theta;
  theta.equal_columns.emplace_back("Loc", "Loc");
  StatusOr<TPRelation> anti = TPAntiJoin(*left, *fx->b, theta);
  ASSERT_TRUE(anti.ok()) << anti.status().ToString();
  EXPECT_TRUE(anti->Validate().ok());
  // Jim's row survives (WEN matches no hotel); all ZAK rows are negated
  // with non-trivial compound lineage.
  bool found_jim = false;
  for (size_t i = 0; i < anti->size(); ++i) {
    if (!anti->tuple(i).fact[0].is_null() &&
        anti->tuple(i).fact[0].ToString() == "Jim") {
      found_jim = true;
      EXPECT_NEAR(anti->Probability(i), 0.8, 1e-12);
    }
  }
  EXPECT_TRUE(found_jim);
}

}  // namespace
}  // namespace tpdb
