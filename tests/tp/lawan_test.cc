// Targeted tests of the LAWAN sweep, one scenario per case of Fig. 4 of the
// paper (how the ending point of a negating window is determined: copied
// windows, ending points from the priority queue, upcoming starting
// points), plus lineage-content checks.
#include <gtest/gtest.h>

#include "lineage/print.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

struct NegWindow {
  Interval window;
  std::string lin_s;
};

class LawanCaseTest : public ::testing::Test {
 protected:
  LawanCaseTest() {
    Schema schema;
    schema.AddColumn({"key", DatumType::kInt64});
    r_ = std::make_unique<TPRelation>("r", schema, &manager_);
    s_ = std::make_unique<TPRelation>("s", schema, &manager_);
    TPDB_CHECK(
        r_->AppendBase({Datum(static_cast<int64_t>(1))}, Interval(0, 10), 0.5,
                       "r1")
            .ok());
  }

  void AddS(const std::string& var, TimePoint from, TimePoint to) {
    TPDB_CHECK(s_->AppendDerived(
                     {Datum(static_cast<int64_t>(1))}, Interval(from, to),
                     manager_.Var(manager_.RegisterVariable(0.5, var)))
                   .ok());
  }

  std::vector<NegWindow> NegatingWindows() {
    StatusOr<std::vector<TPWindow>> w = ComputeWindows(
        *r_, *s_, JoinCondition::Equals("key"), WindowStage::kWuon);
    TPDB_CHECK(w.ok()) << w.status().ToString();
    std::vector<NegWindow> out;
    for (const TPWindow& win : *w)
      if (win.cls == WindowClass::kNegating)
        out.push_back({win.window, LineageToString(manager_, win.lin_s)});
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.window < b.window;
    });
    return out;
  }

  LineageManager manager_;
  std::unique_ptr<TPRelation> r_;
  std::unique_ptr<TPRelation> s_;
};

TEST_F(LawanCaseTest, SingleMatchingTupleGivesOneNegatingWindow) {
  AddS("s1", 3, 7);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 1u);
  EXPECT_EQ(wn[0].window, Interval(3, 7));
  EXPECT_EQ(wn[0].lin_s, "s1");
}

TEST_F(LawanCaseTest, Case2EndingPointFromQueueBoundsWindow) {
  // s1 [2,8), s2 [4,6): events at 2,4,6,8 -> [2,4) s1; [4,6) s1∨s2;
  // [6,8) s1 (s2's ending point from the queue closes the middle window).
  AddS("s1", 2, 8);
  AddS("s2", 4, 6);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 3u);
  EXPECT_EQ(wn[0].window, Interval(2, 4));
  EXPECT_EQ(wn[0].lin_s, "s1");
  EXPECT_EQ(wn[1].window, Interval(4, 6));
  EXPECT_EQ(wn[1].lin_s, "s1 ∨ s2");
  EXPECT_EQ(wn[2].window, Interval(6, 8));
  EXPECT_EQ(wn[2].lin_s, "s1");
}

TEST_F(LawanCaseTest, Case3UpcomingStartingPointBoundsWindow) {
  // s1 [2,9), s2 [5,9): the start of s2 closes [2,5).
  AddS("s1", 2, 9);
  AddS("s2", 5, 9);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 2u);
  EXPECT_EQ(wn[0].window, Interval(2, 5));
  EXPECT_EQ(wn[0].lin_s, "s1");
  EXPECT_EQ(wn[1].window, Interval(5, 9));
  EXPECT_EQ(wn[1].lin_s, "s1 ∨ s2");
}

TEST_F(LawanCaseTest, Case1DisjointGroupsSeparatedByGap) {
  // Two disjoint matching tuples: two negating windows, none across the
  // gap (the unmatched window between them is copied, not negated).
  AddS("s1", 1, 3);
  AddS("s2", 6, 8);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 2u);
  EXPECT_EQ(wn[0].window, Interval(1, 3));
  EXPECT_EQ(wn[0].lin_s, "s1");
  EXPECT_EQ(wn[1].window, Interval(6, 8));
  EXPECT_EQ(wn[1].lin_s, "s2");
}

TEST_F(LawanCaseTest, SimultaneousEndAndStart) {
  // s1 ends exactly where s2 starts: adjacent windows with different λs.
  AddS("s1", 1, 5);
  AddS("s2", 5, 9);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 2u);
  EXPECT_EQ(wn[0].window, Interval(1, 5));
  EXPECT_EQ(wn[0].lin_s, "s1");
  EXPECT_EQ(wn[1].window, Interval(5, 9));
  EXPECT_EQ(wn[1].lin_s, "s2");
}

TEST_F(LawanCaseTest, SimultaneousEndsPopTogether) {
  // s1 and s2 end at the same point.
  AddS("s1", 1, 6);
  AddS("s2", 3, 6);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 2u);
  EXPECT_EQ(wn[0].window, Interval(1, 3));
  EXPECT_EQ(wn[0].lin_s, "s1");
  EXPECT_EQ(wn[1].window, Interval(3, 6));
  EXPECT_EQ(wn[1].lin_s, "s1 ∨ s2");
}

TEST_F(LawanCaseTest, ThreeConcurrentTuples) {
  AddS("s1", 1, 9);
  AddS("s2", 2, 7);
  AddS("s3", 4, 5);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 5u);
  EXPECT_EQ(wn[0].window, Interval(1, 2));
  EXPECT_EQ(wn[0].lin_s, "s1");
  EXPECT_EQ(wn[1].window, Interval(2, 4));
  EXPECT_EQ(wn[1].lin_s, "s1 ∨ s2");
  EXPECT_EQ(wn[2].window, Interval(4, 5));
  EXPECT_EQ(wn[2].lin_s, "s1 ∨ s2 ∨ s3");
  EXPECT_EQ(wn[3].window, Interval(5, 7));
  EXPECT_EQ(wn[3].lin_s, "s1 ∨ s2");
  EXPECT_EQ(wn[4].window, Interval(7, 9));
  EXPECT_EQ(wn[4].lin_s, "s1");
}

TEST_F(LawanCaseTest, WindowsClippedToTupleInterval) {
  // The matching s tuple extends past the r tuple on both sides: the
  // negating window is clipped to [0,10).
  AddS("s1", -5, 20);
  const std::vector<NegWindow> wn = NegatingWindows();
  ASSERT_EQ(wn.size(), 1u);
  EXPECT_EQ(wn[0].window, Interval(0, 10));
}

TEST_F(LawanCaseTest, NoMatchesNoNegatingWindows) {
  EXPECT_TRUE(NegatingWindows().empty());
}

TEST_F(LawanCaseTest, CopiedWindowsSurviveAlongsideNegating) {
  AddS("s1", 3, 7);
  StatusOr<std::vector<TPWindow>> w = ComputeWindows(
      *r_, *s_, JoinCondition::Equals("key"), WindowStage::kWuon);
  ASSERT_TRUE(w.ok());
  size_t overlapping = 0;
  size_t unmatched = 0;
  size_t negating = 0;
  for (const TPWindow& win : *w) {
    switch (win.cls) {
      case WindowClass::kOverlapping:
        ++overlapping;
        break;
      case WindowClass::kUnmatched:
        ++unmatched;
        break;
      case WindowClass::kNegating:
        ++negating;
        break;
    }
  }
  EXPECT_EQ(overlapping, 1u);
  EXPECT_EQ(unmatched, 2u);  // [0,3) and [7,10)
  EXPECT_EQ(negating, 1u);
}

}  // namespace
}  // namespace tpdb
