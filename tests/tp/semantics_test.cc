// Snapshot-semantics property tests (invariant 3 of DESIGN.md §7): at every
// time point t, the interval-based TP join result restricted to t must
// equal the probabilistic join of the snapshots at t — for every operator
// and for both execution strategies.
#include <gtest/gtest.h>

#include "tests/reference/fixtures.h"
#include "tests/reference/reference.h"
#include "tp/operators.h"

namespace tpdb {
namespace {

using testing::CompareSnapshots;
using testing::MakeRandomRelation;
using testing::RandomRelationOptions;
using testing::ReferenceJoinSnapshot;
using testing::SnapshotOf;

struct Param {
  uint64_t seed;
  TPJoinKind kind;
  JoinStrategy strategy;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = TPJoinKindName(info.param.kind);
  for (char& c : name)
    if (c == '-') c = '_';
  name += info.param.strategy == JoinStrategy::kLineageAware ? "_nj" : "_ta";
  name += "_seed" + std::to_string(info.param.seed);
  return name;
}

class SnapshotSemanticsTest : public ::testing::TestWithParam<Param> {};

TEST_P(SnapshotSemanticsTest, JoinAgreesWithSnapshotOracle) {
  const Param& p = GetParam();
  LineageManager manager;
  Random rng(p.seed * 1000003);
  RandomRelationOptions opts;
  opts.num_tuples = 14;
  opts.num_keys = 3;
  opts.horizon = 25;
  opts.max_duration = 7;
  auto r = MakeRandomRelation(&manager, "r", opts, &rng);
  auto s = MakeRandomRelation(&manager, "s", opts, &rng);
  const JoinCondition theta = JoinCondition::Equals("key");

  TPJoinOptions options;
  options.strategy = p.strategy;
  StatusOr<TPRelation> result = TPJoin(p.kind, *r, *s, theta, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The result must itself be a valid TP relation.
  ASSERT_TRUE(result->Validate().ok()) << result->Validate().ToString();

  // Probe every time point in the populated horizon (plus a margin).
  for (TimePoint t = 0; t < opts.horizon + 4 * opts.max_duration; ++t) {
    const std::string diff =
        CompareSnapshots(ReferenceJoinSnapshot(p.kind, *r, *s, theta, t),
                         SnapshotOf(*result, t));
    EXPECT_TRUE(diff.empty()) << "at t=" << t << ":\n" << diff;
    if (!diff.empty()) break;
  }
}

std::vector<Param> AllParams() {
  std::vector<Param> params;
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const TPJoinKind kind :
         {TPJoinKind::kInner, TPJoinKind::kAnti, TPJoinKind::kLeftOuter,
          TPJoinKind::kRightOuter, TPJoinKind::kFullOuter,
          TPJoinKind::kSemi}) {
      for (const JoinStrategy strategy :
           {JoinStrategy::kLineageAware, JoinStrategy::kTemporalAlignment}) {
        params.push_back(Param{seed, kind, strategy});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllOperators, SnapshotSemanticsTest,
                         ::testing::ValuesIn(AllParams()), ParamName);

// The general-predicate part of θ must flow through all operators: join on
// key equality plus a tag-inequality predicate.
TEST(SnapshotSemanticsGeneralTheta, LeftOuterWithPredicate) {
  LineageManager manager;
  Random rng(77);
  RandomRelationOptions opts;
  opts.num_tuples = 12;
  auto r = MakeRandomRelation(&manager, "r", opts, &rng);
  auto s = MakeRandomRelation(&manager, "s", opts, &rng);
  JoinCondition theta = JoinCondition::Equals("key");
  theta.predicate = [](const Row& rf, const Row& sf) {
    return rf[1].AsInt64() != sf[1].AsInt64();  // r.tag <> s.tag
  };

  for (const JoinStrategy strategy :
       {JoinStrategy::kLineageAware, JoinStrategy::kTemporalAlignment}) {
    TPJoinOptions options;
    options.strategy = strategy;
    StatusOr<TPRelation> result =
        TPJoin(TPJoinKind::kLeftOuter, *r, *s, theta, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (TimePoint t = 0; t < 60; ++t) {
      const std::string diff = CompareSnapshots(
          ReferenceJoinSnapshot(TPJoinKind::kLeftOuter, *r, *s, theta, t),
          SnapshotOf(*result, t));
      ASSERT_TRUE(diff.empty()) << "strategy "
                                << static_cast<int>(strategy) << " t=" << t
                                << ":\n" << diff;
    }
  }
}

// Self-join: r joined with itself must still satisfy snapshot semantics
// (lineage idempotence matters here: λ ∧ λ = λ).
TEST(SnapshotSemanticsSelfJoin, InnerSelfJoin) {
  LineageManager manager;
  Random rng(31);
  RandomRelationOptions opts;
  opts.num_tuples = 10;
  auto r = MakeRandomRelation(&manager, "r", opts, &rng);
  const JoinCondition theta = JoinCondition::Equals("key");
  StatusOr<TPRelation> result = TPInnerJoin(*r, *r, theta);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (TimePoint t = 0; t < 60; ++t) {
    const std::string diff = CompareSnapshots(
        ReferenceJoinSnapshot(TPJoinKind::kInner, *r, *r, theta, t),
        SnapshotOf(*result, t));
    ASSERT_TRUE(diff.empty()) << "t=" << t << ":\n" << diff;
  }
}

}  // namespace
}  // namespace tpdb
