#include "tp/tp_ops.h"

#include <gtest/gtest.h>

#include "tests/reference/fixtures.h"
#include "tp/operators.h"

namespace tpdb {
namespace {

using testing::MakeFig1Example;

class TpOpsTest : public ::testing::Test {
 protected:
  void SetUp() override { fx_ = MakeFig1Example(); }
  std::unique_ptr<testing::Fig1Example> fx_;
};

TEST_F(TpOpsTest, SelectByFact) {
  StatusOr<TPRelation> out = TPSelect(*fx_->a, [](const Row& fact) {
    return fact[1].AsString() == "ZAK";
  });
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuple(0).fact[0].AsString(), "Ann");
}

TEST_F(TpOpsTest, SelectRejectsNullPredicate) {
  EXPECT_FALSE(TPSelect(*fx_->a, nullptr).ok());
}

TEST_F(TpOpsTest, ThresholdKeepsHighProbabilityTuples) {
  // Fig. 1b left outer join: probabilities 0.7, .49, .42, .21, .084, .28, .8.
  StatusOr<TPRelation> q = TPLeftOuterJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(q.ok());
  StatusOr<TPRelation> kept = TPThreshold(*q, 0.4);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 4u);  // 0.7, 0.49, 0.42, 0.8
  StatusOr<TPRelation> all = TPThreshold(*q, 0.0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), q->size());
  EXPECT_FALSE(TPThreshold(*q, 1.5).ok());
}

TEST_F(TpOpsTest, TimesliceClipsAndDrops) {
  StatusOr<TPRelation> out = TPTimeslice(*fx_->a, Interval(7, 9));
  ASSERT_TRUE(out.ok());
  // a1 [2,8) clips to [7,8); a2 [7,10) clips to [7,9).
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->tuple(0).interval, Interval(7, 8));
  EXPECT_EQ(out->tuple(1).interval, Interval(7, 9));
  StatusOr<TPRelation> none = TPTimeslice(*fx_->a, Interval(100, 200));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(TPTimeslice(*fx_->a, Interval(5, 5)).ok());
}

TEST_F(TpOpsTest, TimeslicePreservesLineageAndProbability) {
  StatusOr<TPRelation> out = TPTimeslice(*fx_->a, Interval(3, 4));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuple(0).lineage, fx_->a->tuple(0).lineage);
  EXPECT_NEAR(out->Probability(0), 0.7, 1e-12);
}

TEST_F(TpOpsTest, SnapshotAtTimePoint) {
  const std::vector<SnapshotRow> snap = TPSnapshot(*fx_->b, 5);
  // At t=5: b2 [5,8) and b3 [4,6).
  ASSERT_EQ(snap.size(), 2u);
  double total = 0;
  for (const SnapshotRow& row : snap) total += row.probability;
  EXPECT_NEAR(total, 0.6 + 0.7, 1e-12);
  EXPECT_TRUE(TPSnapshot(*fx_->b, 100).empty());
}

TEST(TpOpsCoalesce, MergesAdjacentEqualLineage) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &mgr);
  const VarId v = mgr.RegisterVariable(0.5, "v");
  // Three adjacent pieces with the SAME lineage (as produced by a
  // timeslice-then-union round trip), plus one with a different lineage.
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(1))},
                                Interval(0, 3), mgr.Var(v))
                  .ok());
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(1))},
                                Interval(3, 5), mgr.Var(v))
                  .ok());
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(1))},
                                Interval(5, 9), mgr.Var(v))
                  .ok());
  const VarId w = mgr.RegisterVariable(0.5, "w");
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(1))},
                                Interval(9, 12), mgr.Var(w))
                  .ok());
  StatusOr<TPRelation> out = TPCoalesce(rel);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->tuple(0).interval, Interval(0, 9));
  EXPECT_EQ(out->tuple(1).interval, Interval(9, 12));
}

TEST(TpOpsCoalesce, DoesNotMergeAcrossGapsOrFacts) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &mgr);
  const VarId v = mgr.RegisterVariable(0.5);
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(1))},
                                Interval(0, 3), mgr.Var(v))
                  .ok());
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(1))},
                                Interval(4, 6), mgr.Var(v))
                  .ok());  // gap at [3,4)
  ASSERT_TRUE(rel.AppendDerived({Datum(static_cast<int64_t>(2))},
                                Interval(6, 8), mgr.Var(v))
                  .ok());  // different fact
  StatusOr<TPRelation> out = TPCoalesce(rel);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(TpOpsCoalesce, IdempotentOnCoalescedInput) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &mgr);
  ASSERT_TRUE(
      rel.AppendBase({Datum(static_cast<int64_t>(1))}, Interval(0, 5), 0.5)
          .ok());
  StatusOr<TPRelation> once = TPCoalesce(rel);
  ASSERT_TRUE(once.ok());
  StatusOr<TPRelation> twice = TPCoalesce(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->size(), twice->size());
}

}  // namespace
}  // namespace tpdb
