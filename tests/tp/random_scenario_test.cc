// Focused randomized fuzz of the two sweep algorithms: one r tuple against
// K random s tuples (the unit the sweeps process), checking the produced
// unmatched and negating windows against the declarative timeline
// primitives (Gaps / CoveredRuns) and the λs content of every negating
// window against direct evaluation. Hundreds of random scenarios across
// the parameter grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "lineage/print.h"
#include "temporal/timeline.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

struct GridParam {
  uint64_t seed;
  int num_s;          // matching s tuples
  int num_decoys;     // s tuples failing θ
  TimePoint horizon;  // s tuples live in [0, horizon)
};

class SweepFuzzTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(SweepFuzzTest, WindowsMatchTimelinePrimitives) {
  const GridParam& p = GetParam();
  Random rng(p.seed * 2654435761u);

  for (int trial = 0; trial < 25; ++trial) {
    LineageManager manager;
    Schema schema;
    schema.AddColumn({"key", DatumType::kInt64});
    TPRelation r("r", schema, &manager);
    TPRelation s("s", schema, &manager);

    // One r tuple somewhere on the timeline.
    const TimePoint r_start = rng.Uniform(0, p.horizon / 2);
    const Interval rt(r_start, r_start + rng.Uniform(1, p.horizon / 2));
    ASSERT_TRUE(r.AppendBase({Datum(static_cast<int64_t>(1))}, rt, 0.5)
                    .ok());

    // Matching s tuples (key 1) and θ-failing decoys (key 2).
    std::vector<Interval> matching;
    for (int k = 0; k < p.num_s; ++k) {
      const TimePoint a = rng.Uniform(-5, p.horizon);
      const Interval iv(a, a + rng.Uniform(1, p.horizon / 3));
      matching.push_back(iv);
      ASSERT_TRUE(s.AppendDerived({Datum(static_cast<int64_t>(1))}, iv,
                                  manager.Var(manager.RegisterVariable(
                                      0.5, "s" + std::to_string(k))))
                      .ok());
    }
    for (int k = 0; k < p.num_decoys; ++k) {
      const TimePoint a = rng.Uniform(-5, p.horizon);
      ASSERT_TRUE(s.AppendDerived({Datum(static_cast<int64_t>(2))},
                                  Interval(a, a + rng.Uniform(1, 20)),
                                  manager.Var(manager.RegisterVariable(0.5)))
                      .ok());
    }

    StatusOr<std::vector<TPWindow>> windows = ComputeWindows(
        r, s, JoinCondition::Equals("key"), WindowStage::kWuon);
    ASSERT_TRUE(windows.ok()) << windows.status().ToString();

    std::vector<Interval> unmatched;
    std::vector<Interval> negating;
    size_t overlapping = 0;
    for (const TPWindow& w : *windows) {
      switch (w.cls) {
        case WindowClass::kUnmatched:
          unmatched.push_back(w.window);
          break;
        case WindowClass::kNegating: {
          negating.push_back(w.window);
          // λs must be the disjunction of exactly the s tuples covering
          // the window (they cover it fully: windows never cross
          // boundaries).
          std::vector<LineageRef> expected;
          for (size_t j = 0; j < matching.size(); ++j) {
            if (matching[j].Contains(w.window))
              expected.push_back(s.tuple(j).lineage);
            else
              EXPECT_FALSE(matching[j].Overlaps(w.window))
                  << "negating window " << w.window.ToString()
                  << " crosses boundary of s tuple "
                  << matching[j].ToString();
          }
          EXPECT_EQ(w.lin_s, manager.OrAll(expected))
              << "λs mismatch over " << w.window.ToString();
          break;
        }
        case WindowClass::kOverlapping:
          ++overlapping;
          break;
      }
    }

    // Count of overlapping windows = matching s tuples intersecting r.
    size_t expected_overlaps = 0;
    for (const Interval& iv : matching)
      if (iv.Overlaps(rt)) ++expected_overlaps;
    EXPECT_EQ(overlapping, expected_overlaps);

    // Unmatched = Gaps(r.T, matching); negating tiles CoveredRuns.
    std::sort(unmatched.begin(), unmatched.end());
    EXPECT_EQ(unmatched, Gaps(rt, matching)) << "trial " << trial;
    EXPECT_EQ(Coalesce(negating), CoveredRuns(rt, matching))
        << "trial " << trial;
    EXPECT_TRUE(PairwiseDisjoint(negating));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SweepFuzzTest,
    ::testing::Values(GridParam{1, 0, 0, 40}, GridParam{2, 1, 0, 40},
                      GridParam{3, 2, 2, 40}, GridParam{4, 3, 0, 60},
                      GridParam{5, 4, 4, 60}, GridParam{6, 6, 2, 80},
                      GridParam{7, 8, 0, 80}, GridParam{8, 10, 5, 100},
                      GridParam{9, 15, 5, 120}, GridParam{10, 20, 10, 150},
                      GridParam{11, 5, 20, 60}, GridParam{12, 2, 1, 10},
                      GridParam{13, 12, 0, 30}, GridParam{14, 7, 7, 200},
                      GridParam{15, 30, 0, 100}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "grid" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace tpdb
