// Golden tests for the paper's running example: the window sets of Fig. 2
// and the TP left outer join result of Fig. 1b, reproduced exactly —
// facts, lineages, intervals, and probabilities.
#include <gtest/gtest.h>

#include <map>

#include "lineage/print.h"
#include "tests/reference/fixtures.h"
#include "tp/operators.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

using testing::Fig1Example;
using testing::MakeFig1Example;

class Fig1Test : public ::testing::Test {
 protected:
  void SetUp() override { fx_ = MakeFig1Example(); }

  /// Windows of a w.r.t. b, materialized and canonically ordered.
  std::vector<TPWindow> Windows(WindowStage stage) {
    StatusOr<std::vector<TPWindow>> w =
        ComputeWindows(*fx_->a, *fx_->b, fx_->theta, stage);
    TPDB_CHECK(w.ok()) << w.status().ToString();
    std::vector<TPWindow> out = std::move(*w);
    SortWindows(&out);
    return out;
  }

  std::string Lin(LineageRef r) {
    return LineageToString(fx_->manager, r);
  }

  std::unique_ptr<Fig1Example> fx_;
};

TEST_F(Fig1Test, OverlappingWindowsMatchFig2) {
  std::vector<TPWindow> all = Windows(WindowStage::kWuon);
  std::vector<TPWindow> wo;
  for (const TPWindow& w : all)
    if (w.cls == WindowClass::kOverlapping) wo.push_back(w);

  ASSERT_EQ(wo.size(), 2u);
  // w3 = ('Ann, ZAK', 'hotel1', [4,6), a1, b3)
  EXPECT_EQ(wo[0].window, Interval(4, 6));
  EXPECT_EQ(Lin(wo[0].lin_r), "a1");
  EXPECT_EQ(Lin(wo[0].lin_s), "b3");
  EXPECT_EQ(wo[0].fact_s[0].AsString(), "hotel1");
  // w4 = ('Ann, ZAK', 'hotel2', [5,8), a1, b2)
  EXPECT_EQ(wo[1].window, Interval(5, 8));
  EXPECT_EQ(Lin(wo[1].lin_r), "a1");
  EXPECT_EQ(Lin(wo[1].lin_s), "b2");
  EXPECT_EQ(wo[1].fact_s[0].AsString(), "hotel2");
}

TEST_F(Fig1Test, UnmatchedWindowsMatchFig2) {
  std::vector<TPWindow> all = Windows(WindowStage::kWuon);
  std::vector<TPWindow> wu;
  for (const TPWindow& w : all)
    if (w.cls == WindowClass::kUnmatched) wu.push_back(w);

  ASSERT_EQ(wu.size(), 2u);
  // w1 = ('Ann, ZAK', null, [2,4), a1, null)
  EXPECT_EQ(wu[0].window, Interval(2, 4));
  EXPECT_EQ(Lin(wu[0].lin_r), "a1");
  EXPECT_TRUE(wu[0].lin_s.is_null());
  // w2 = ('Jim, WEN', null, [7,10), a2, null)
  EXPECT_EQ(wu[1].window, Interval(7, 10));
  EXPECT_EQ(Lin(wu[1].lin_r), "a2");
  EXPECT_TRUE(wu[1].lin_s.is_null());
}

TEST_F(Fig1Test, NegatingWindowsMatchFig2) {
  std::vector<TPWindow> all = Windows(WindowStage::kWuon);
  std::vector<TPWindow> wn;
  for (const TPWindow& w : all)
    if (w.cls == WindowClass::kNegating) wn.push_back(w);

  ASSERT_EQ(wn.size(), 3u);
  // w5 = ('Ann, ZAK', null, [4,5), a1, b3)
  EXPECT_EQ(wn[0].window, Interval(4, 5));
  EXPECT_EQ(Lin(wn[0].lin_s), "b3");
  // w6 = ('Ann, ZAK', null, [5,6), a1, b2 ∨ b3)
  EXPECT_EQ(wn[1].window, Interval(5, 6));
  EXPECT_EQ(Lin(wn[1].lin_s), "b2 ∨ b3");
  // w7 = ('Ann, ZAK', null, [6,8), a1, b2)
  EXPECT_EQ(wn[2].window, Interval(6, 8));
  EXPECT_EQ(Lin(wn[2].lin_s), "b2");
  for (const TPWindow& w : wn) {
    EXPECT_EQ(Lin(w.lin_r), "a1");
    EXPECT_TRUE(w.fact_s.empty());
  }
}

TEST_F(Fig1Test, WuoStageOmitsNegatingWindows) {
  std::vector<TPWindow> wuo = Windows(WindowStage::kWuo);
  EXPECT_EQ(wuo.size(), 4u);  // w1..w4
  for (const TPWindow& w : wuo)
    EXPECT_NE(w.cls, WindowClass::kNegating);
}

TEST_F(Fig1Test, LeftOuterJoinMatchesFig1b) {
  StatusOr<TPRelation> q = TPLeftOuterJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Expected rows of Fig. 1b keyed by (hotel-or-null, interval).
  struct Expected {
    std::string name;
    std::string lineage;
    double prob;
  };
  std::map<std::pair<std::string, std::string>, Expected> expected = {
      {{"-", "[2,4)"}, {"Ann", "a1", 0.70}},
      {{"hotel1", "[4,6)"}, {"Ann", "a1 ∧ b3", 0.49}},
      {{"hotel2", "[5,8)"}, {"Ann", "a1 ∧ b2", 0.42}},
      {{"-", "[4,5)"}, {"Ann", "a1 ∧ ¬b3", 0.21}},
      {{"-", "[5,6)"}, {"Ann", "a1 ∧ ¬(b2 ∨ b3)", 0.084}},
      {{"-", "[6,8)"}, {"Ann", "a1 ∧ ¬b2", 0.28}},
      {{"-", "[7,10)"}, {"Jim", "a2", 0.80}},
  };

  ASSERT_EQ(q->size(), expected.size());
  const int hotel_col = q->fact_schema().IndexOf("Hotel");
  ASSERT_GE(hotel_col, 0);
  for (size_t i = 0; i < q->size(); ++i) {
    const TPTuple& t = q->tuple(i);
    const std::string hotel = t.fact[hotel_col].ToString();
    auto it = expected.find({hotel, t.interval.ToString()});
    ASSERT_NE(it, expected.end())
        << "unexpected output tuple: " << RowToString(t.fact) << " "
        << t.interval.ToString();
    EXPECT_EQ(t.fact[0].AsString(), it->second.name);
    EXPECT_EQ(LineageToString(fx_->manager, t.lineage), it->second.lineage);
    EXPECT_NEAR(q->Probability(i), it->second.prob, 1e-12);
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());
}

TEST_F(Fig1Test, AntiJoinKeepsOnlyNegatedAndUnmatched) {
  StatusOr<TPRelation> q = TPAntiJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Anti join: the five r-side tuples of Fig. 1b without the two matches.
  ASSERT_EQ(q->size(), 5u);
  EXPECT_EQ(q->fact_schema().num_columns(), 2u);  // Name, Loc only
  double total = 0;
  for (size_t i = 0; i < q->size(); ++i) total += q->Probability(i);
  EXPECT_NEAR(total, 0.70 + 0.21 + 0.084 + 0.28 + 0.80, 1e-12);
}

TEST_F(Fig1Test, InnerJoinKeepsOnlyOverlapping) {
  StatusOr<TPRelation> q = TPInnerJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 2u);
}

TEST_F(Fig1Test, FullOuterContainsRightSideWindows) {
  StatusOr<TPRelation> q = TPFullOuterJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Left-outer rows (7) + b-side windows: b1 unmatched [1,4);
  // b3 negating [4,6) vs a1; b2 negating [5,8) vs a1. No b-side unmatched
  // beyond b1 (b2, b3 are fully covered by a1's interval).
  EXPECT_EQ(q->size(), 7u + 3u);
}

TEST_F(Fig1Test, RightOuterMirrorsLeftOuter) {
  StatusOr<TPRelation> right =
      TPRightOuterJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(right.ok()) << right.status().ToString();
  // Overlapping (2) + b1 unmatched + b3/b2 negating windows.
  EXPECT_EQ(right->size(), 2u + 3u);
  // Facts are r-facts ++ s-facts with NULL r side for the b-only rows.
  const int name_col = right->fact_schema().IndexOf("Name");
  ASSERT_EQ(name_col, 0);
  size_t null_names = 0;
  for (size_t i = 0; i < right->size(); ++i)
    if (right->tuple(i).fact[0].is_null()) ++null_names;
  EXPECT_EQ(null_names, 3u);
}

TEST_F(Fig1Test, WindowsOfBWithRespectToA) {
  // The mirrored direction (used by right/full outer joins): windows of b
  // w.r.t. a under θ: Loc = Loc.
  StatusOr<std::vector<TPWindow>> w = ComputeWindows(
      *fx_->b, *fx_->a, SwapJoinCondition(fx_->theta), WindowStage::kWuon);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  SortWindows(&*w);
  // b1 (SOR): unmatched [1,4). b2 (ZAK,[5,8)) ⊂ a1: overlapping [5,8) +
  // negating [5,8) λs=a1. b3 (ZAK,[4,6)) ⊂ a1: overlapping [4,6) +
  // negating [4,6) λs=a1.
  ASSERT_EQ(w->size(), 5u) << WindowsToString(fx_->manager, *w);
  size_t unmatched = 0;
  size_t negating = 0;
  size_t overlapping = 0;
  for (const TPWindow& win : *w) {
    switch (win.cls) {
      case WindowClass::kUnmatched:
        ++unmatched;
        EXPECT_EQ(win.window, Interval(1, 4));
        EXPECT_EQ(Lin(win.lin_r), "b1");
        break;
      case WindowClass::kNegating:
        ++negating;
        EXPECT_EQ(Lin(win.lin_s), "a1");
        EXPECT_EQ(win.window, win.r_interval);  // b2/b3 lie inside a1
        break;
      case WindowClass::kOverlapping:
        ++overlapping;
        break;
    }
  }
  EXPECT_EQ(unmatched, 1u);
  EXPECT_EQ(negating, 2u);
  EXPECT_EQ(overlapping, 2u);
}

TEST_F(Fig1Test, SemiJoinKeepsMatchedPeriodsOnly) {
  StatusOr<TPRelation> q = TPSemiJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Ann has matching hotels over [4,5), [5,6), [6,8); Jim never matches.
  ASSERT_EQ(q->size(), 3u);
  EXPECT_EQ(q->fact_schema().num_columns(), 2u);
  std::map<std::string, std::pair<std::string, double>> expected = {
      {"[4,5)", {"a1 ∧ b3", 0.49}},
      {"[5,6)", {"a1 ∧ (b2 ∨ b3)", 0.7 * (1 - 0.4 * 0.3)}},
      {"[6,8)", {"a1 ∧ b2", 0.42}},
  };
  for (size_t i = 0; i < q->size(); ++i) {
    const TPTuple& t = q->tuple(i);
    auto it = expected.find(t.interval.ToString());
    ASSERT_NE(it, expected.end()) << t.interval.ToString();
    EXPECT_EQ(t.fact[0].AsString(), "Ann");
    EXPECT_EQ(LineageToString(fx_->manager, t.lineage), it->second.first);
    EXPECT_NEAR(q->Probability(i), it->second.second, 1e-12);
  }
}

TEST_F(Fig1Test, SemiAndAntiJoinProbabilitiesComplement) {
  // At every time point where Ann's wish is valid, P(semi) + P(anti)
  // must equal P(a1): matched or not matched, conditioned on a1.
  StatusOr<TPRelation> semi = TPSemiJoin(*fx_->a, *fx_->b, fx_->theta);
  StatusOr<TPRelation> anti = TPAntiJoin(*fx_->a, *fx_->b, fx_->theta);
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(anti.ok());
  for (TimePoint t = 2; t < 8; ++t) {
    double total = 0;
    for (size_t i = 0; i < semi->size(); ++i)
      if (semi->tuple(i).interval.Contains(t)) total += semi->Probability(i);
    for (size_t i = 0; i < anti->size(); ++i)
      if (anti->tuple(i).interval.Contains(t) &&
          anti->tuple(i).fact[0].AsString() == "Ann")
        total += anti->Probability(i);
    EXPECT_NEAR(total, 0.7, 1e-12) << "t=" << t;
  }
}

TEST_F(Fig1Test, NestedLoopAlgorithmProducesSameWindows) {
  StatusOr<std::vector<TPWindow>> part = ComputeWindows(
      *fx_->a, *fx_->b, fx_->theta, WindowStage::kWuon,
      OverlapAlgorithm::kPartitioned);
  StatusOr<std::vector<TPWindow>> nl = ComputeWindows(
      *fx_->a, *fx_->b, fx_->theta, WindowStage::kWuon,
      OverlapAlgorithm::kNestedLoop);
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(nl.ok());
  SortWindows(&*part);
  SortWindows(&*nl);
  ASSERT_EQ(part->size(), nl->size());
  for (size_t i = 0; i < part->size(); ++i) {
    EXPECT_EQ((*part)[i].window, (*nl)[i].window);
    EXPECT_EQ((*part)[i].cls, (*nl)[i].cls);
    EXPECT_EQ((*part)[i].lin_s, (*nl)[i].lin_s);
  }
}

}  // namespace
}  // namespace tpdb
