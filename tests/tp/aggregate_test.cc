#include "tp/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "lineage/probability.h"
#include "tests/reference/fixtures.h"

namespace tpdb {
namespace {

using testing::MakeFig1Example;
using testing::MakeRandomRelation;
using testing::RandomRelationOptions;

TEST(TemporalAggregate, EmptyRelation) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &mgr);
  StatusOr<std::vector<TemporalAggregateRow>> agg = TemporalAggregate(rel);
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->empty());
}

TEST(TemporalAggregate, Fig1HotelAvailabilityTimeline) {
  auto fx = MakeFig1Example();
  StatusOr<std::vector<TemporalAggregateRow>> agg =
      TemporalAggregate(*fx->b);
  ASSERT_TRUE(agg.ok());
  // b: b1 [1,4) 0.9, b3 [4,6) 0.7, b2 [5,8) 0.6 -> runs:
  // [1,4)={b1}, [4,5)={b3}, [5,6)={b3,b2}, [6,8)={b2}.
  ASSERT_EQ(agg->size(), 4u);
  EXPECT_EQ((*agg)[0].interval, Interval(1, 4));
  EXPECT_EQ((*agg)[0].valid_tuples, 1u);
  EXPECT_NEAR((*agg)[0].expected_count, 0.9, 1e-12);
  EXPECT_NEAR((*agg)[0].prob_any, 0.9, 1e-12);

  EXPECT_EQ((*agg)[2].interval, Interval(5, 6));
  EXPECT_EQ((*agg)[2].valid_tuples, 2u);
  EXPECT_NEAR((*agg)[2].expected_count, 0.7 + 0.6, 1e-12);
  EXPECT_NEAR((*agg)[2].prob_any, 1.0 - 0.3 * 0.4, 1e-12);
  EXPECT_NEAR((*agg)[2].prob_none, 0.3 * 0.4, 1e-12);

  EXPECT_EQ((*agg)[3].interval, Interval(6, 8));
  EXPECT_NEAR((*agg)[3].expected_count, 0.6, 1e-12);
}

TEST(TemporalAggregate, IncludeEmptyRunsFillsGaps) {
  LineageManager mgr;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &mgr);
  ASSERT_TRUE(rel.AppendBase({Datum(static_cast<int64_t>(1))},
                             Interval(0, 2), 0.5)
                  .ok());
  ASSERT_TRUE(rel.AppendBase({Datum(static_cast<int64_t>(2))},
                             Interval(5, 7), 0.5)
                  .ok());
  TemporalAggregateOptions options;
  options.include_empty_runs = true;
  StatusOr<std::vector<TemporalAggregateRow>> agg =
      TemporalAggregate(rel, options);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->size(), 3u);
  EXPECT_EQ((*agg)[1].interval, Interval(2, 5));
  EXPECT_EQ((*agg)[1].valid_tuples, 0u);
  EXPECT_DOUBLE_EQ((*agg)[1].prob_none, 1.0);
}

TEST(TemporalAggregate, WindowClipsTimeline) {
  auto fx = MakeFig1Example();
  TemporalAggregateOptions options;
  options.window = Interval(5, 7);
  StatusOr<std::vector<TemporalAggregateRow>> agg =
      TemporalAggregate(*fx->b, options);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->size(), 2u);  // [5,6)={b3,b2}, [6,7)={b2}
  EXPECT_EQ((*agg)[0].interval, Interval(5, 6));
  EXPECT_EQ((*agg)[1].interval, Interval(6, 7));
}

TEST(TemporalAggregate, RunsTileTheExtentAndAreMaximal) {
  LineageManager mgr;
  Random rng(3);
  RandomRelationOptions opts;
  opts.num_tuples = 25;
  auto rel = MakeRandomRelation(&mgr, "r", opts, &rng);
  TemporalAggregateOptions options;
  options.include_empty_runs = true;
  StatusOr<std::vector<TemporalAggregateRow>> agg =
      TemporalAggregate(*rel, options);
  ASSERT_TRUE(agg.ok());
  ASSERT_FALSE(agg->empty());
  for (size_t i = 1; i < agg->size(); ++i) {
    // Tiling: runs are adjacent and ordered.
    EXPECT_EQ((*agg)[i - 1].interval.end, (*agg)[i].interval.start);
  }
  // Spot-check counts against direct evaluation at each run's midpoint.
  for (const TemporalAggregateRow& row : *agg) {
    const TimePoint t = row.interval.start;
    size_t valid = 0;
    double expected = 0.0;
    ProbabilityEngine prob(&mgr);
    for (size_t i = 0; i < rel->size(); ++i) {
      if (!rel->tuple(i).interval.Contains(t)) continue;
      ++valid;
      expected += prob.Probability(rel->tuple(i).lineage);
    }
    EXPECT_EQ(row.valid_tuples, valid) << row.interval.ToString();
    EXPECT_NEAR(row.expected_count, expected, 1e-9);
  }
}

TEST(TemporalAggregate, ProbAnyMatchesBruteForce) {
  LineageManager mgr;
  Random rng(9);
  RandomRelationOptions opts;
  opts.num_tuples = 10;
  auto rel = MakeRandomRelation(&mgr, "r", opts, &rng);
  StatusOr<std::vector<TemporalAggregateRow>> agg = TemporalAggregate(*rel);
  ASSERT_TRUE(agg.ok());
  ProbabilityEngine prob(&mgr);
  for (const TemporalAggregateRow& row : *agg) {
    const TimePoint t = row.interval.start;
    std::vector<LineageRef> lineages;
    for (size_t i = 0; i < rel->size(); ++i)
      if (rel->tuple(i).interval.Contains(t))
        lineages.push_back(rel->tuple(i).lineage);
    ASSERT_FALSE(lineages.empty());
    const double brute =
        prob.BruteForceProbability(mgr.OrAll(lineages));
    EXPECT_NEAR(row.prob_any, brute, 1e-9) << row.interval.ToString();
  }
}

}  // namespace
}  // namespace tpdb
