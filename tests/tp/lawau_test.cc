// Targeted tests of the LAWAU sweep, one scenario per case of Fig. 3 of the
// paper (position of the overlapping windows within the r tuple interval),
// plus stress shapes (nested overlaps, chains of meeting windows).
#include <gtest/gtest.h>

#include "tests/reference/fixtures.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

/// Harness: one r tuple [0,10) keyed 1, s tuples as given; returns the
/// unmatched windows of r.
class LawauCaseTest : public ::testing::Test {
 protected:
  LawauCaseTest() {
    Schema schema;
    schema.AddColumn({"key", DatumType::kInt64});
    r_ = std::make_unique<TPRelation>("r", schema, &manager_);
    s_ = std::make_unique<TPRelation>("s", schema, &manager_);
    TPDB_CHECK(
        r_->AppendBase({Datum(static_cast<int64_t>(1))}, Interval(0, 10), 0.5)
            .ok());
  }

  void AddS(TimePoint from, TimePoint to) {
    // Distinct keys per call are unnecessary: multiple s tuples may share a
    // fact only if disjoint; use a fresh discriminator via probability var.
    TPDB_CHECK(s_->AppendDerived(
                     {Datum(static_cast<int64_t>(1))}, Interval(from, to),
                     manager_.Var(manager_.RegisterVariable(0.5)))
                   .ok());
  }

  std::vector<Interval> UnmatchedWindows() {
    StatusOr<std::vector<TPWindow>> w = ComputeWindows(
        *r_, *s_, JoinCondition::Equals("key"), WindowStage::kWuo);
    TPDB_CHECK(w.ok()) << w.status().ToString();
    std::vector<Interval> out;
    for (const TPWindow& win : *w)
      if (win.cls == WindowClass::kUnmatched) out.push_back(win.window);
    std::sort(out.begin(), out.end());
    return out;
  }

  LineageManager manager_;
  std::unique_ptr<TPRelation> r_;
  std::unique_ptr<TPRelation> s_;
};

TEST_F(LawauCaseTest, Case1WindowAtTupleStart) {
  // Overlapping window starts exactly at the tuple start: no leading gap.
  AddS(0, 4);
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{4, 10}}));
}

TEST_F(LawauCaseTest, Case2WindowInTheMiddle) {
  // Gap before and after.
  AddS(3, 6);
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 3}, {6, 10}}));
}

TEST_F(LawauCaseTest, Case3WindowAtTupleEnd) {
  AddS(6, 10);
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 6}}));
}

TEST_F(LawauCaseTest, Case4WindowCoversWholeTuple) {
  AddS(-2, 12);
  EXPECT_TRUE(UnmatchedWindows().empty());
}

TEST_F(LawauCaseTest, Case5NoWindowAtAll) {
  // No s tuple: the whole interval is one unmatched window.
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 10}}));
}

TEST_F(LawauCaseTest, MeetingWindowsLeaveNoGap) {
  AddS(2, 5);
  AddS(5, 8);
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 2}, {8, 10}}));
}

TEST_F(LawauCaseTest, NestedOverlappingWindows) {
  // A long window containing a short one: the short one must not shrink
  // the covered prefix (max-end sweep).
  AddS(1, 9);
  AddS(3, 5);
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 1}, {9, 10}}));
}

TEST_F(LawauCaseTest, StaircaseOfOverlappingWindows) {
  AddS(1, 4);
  AddS(3, 6);
  AddS(5, 8);
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 1}, {8, 10}}));
}

TEST_F(LawauCaseTest, MultipleGapsBetweenWindows) {
  AddS(1, 2);
  AddS(4, 5);
  AddS(7, 8);
  EXPECT_EQ(UnmatchedWindows(),
            (std::vector<Interval>{{0, 1}, {2, 4}, {5, 7}, {8, 10}}));
}

TEST_F(LawauCaseTest, NonMatchingKeysAreInvisible) {
  // s tuple with a different key: θ fails, so the tuple is as-if absent.
  TPDB_CHECK(s_->AppendDerived({Datum(static_cast<int64_t>(2))},
                               Interval(0, 10),
                               manager_.Var(manager_.RegisterVariable(0.5)))
                 .ok());
  EXPECT_EQ(UnmatchedWindows(), (std::vector<Interval>{{0, 10}}));
}

TEST_F(LawauCaseTest, SingleChrononGaps) {
  AddS(1, 3);
  AddS(4, 6);
  AddS(7, 10);
  EXPECT_EQ(UnmatchedWindows(),
            (std::vector<Interval>{{0, 1}, {3, 4}, {6, 7}}));
}

// Multi-tuple grouping: gaps are computed per r tuple, not across tuples.
TEST(LawauGrouping, IndependentGroupsPerTuple) {
  LineageManager manager;
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  TPRelation r("r", schema, &manager);
  TPRelation s("s", schema, &manager);
  ASSERT_TRUE(r.AppendBase({Datum(static_cast<int64_t>(1))}, Interval(0, 5),
                           0.5)
                  .ok());
  ASSERT_TRUE(r.AppendBase({Datum(static_cast<int64_t>(2))}, Interval(0, 5),
                           0.5)
                  .ok());
  // Only key=1 has a matching s tuple.
  ASSERT_TRUE(s.AppendBase({Datum(static_cast<int64_t>(1))}, Interval(2, 3),
                           0.5)
                  .ok());
  StatusOr<std::vector<TPWindow>> w = ComputeWindows(
      r, s, JoinCondition::Equals("key"), WindowStage::kWuo);
  ASSERT_TRUE(w.ok());
  std::vector<std::pair<int64_t, Interval>> unmatched;
  for (const TPWindow& win : *w)
    if (win.cls == WindowClass::kUnmatched)
      unmatched.emplace_back(win.rid, win.window);
  std::sort(unmatched.begin(), unmatched.end());
  ASSERT_EQ(unmatched.size(), 3u);
  EXPECT_EQ(unmatched[0], (std::pair<int64_t, Interval>{0, {0, 2}}));
  EXPECT_EQ(unmatched[1], (std::pair<int64_t, Interval>{0, {3, 5}}));
  EXPECT_EQ(unmatched[2], (std::pair<int64_t, Interval>{1, {0, 5}}));
}

}  // namespace
}  // namespace tpdb
