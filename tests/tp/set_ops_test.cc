// Tests of the TP set operations (union / intersection / difference):
// hand-computed scenarios plus a per-time-point snapshot oracle over
// randomized inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "lineage/print.h"
#include "lineage/probability.h"
#include "tests/reference/fixtures.h"
#include "tp/set_ops.h"

namespace tpdb {
namespace {

using testing::MakeRandomRelation;
using testing::RandomRelationOptions;

class SetOpsTest : public ::testing::Test {
 protected:
  SetOpsTest() {
    Schema schema;
    schema.AddColumn({"sensor", DatumType::kString});
    r_ = std::make_unique<TPRelation>("r", schema, &manager_);
    s_ = std::make_unique<TPRelation>("s", schema, &manager_);
  }

  void Add(TPRelation* rel, const std::string& sensor, TimePoint from,
           TimePoint to, double p, const std::string& var) {
    TPDB_CHECK(rel->AppendBase({Datum(sensor)}, Interval(from, to), p, var)
                   .ok());
  }

  std::string Render(const TPRelation& rel) {
    std::string out;
    for (const TPTuple& t : rel.tuples()) {
      out += t.fact[0].AsString() + " " + t.interval.ToString() + " " +
             LineageToString(manager_, t.lineage) + "; ";
    }
    return out;
  }

  LineageManager manager_;
  std::unique_ptr<TPRelation> r_;
  std::unique_ptr<TPRelation> s_;
};

TEST_F(SetOpsTest, IntersectionOnlyWhereBothValid) {
  Add(r_.get(), "A", 0, 10, 0.5, "r1");
  Add(s_.get(), "A", 4, 6, 0.5, "s1");
  Add(s_.get(), "B", 0, 10, 0.5, "s2");  // different fact: no contribution
  StatusOr<TPRelation> out = TPIntersect(*r_, *s_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u) << Render(*out);
  EXPECT_EQ(out->tuple(0).interval, Interval(4, 6));
  EXPECT_EQ(LineageToString(manager_, out->tuple(0).lineage), "r1 ∧ s1");
  EXPECT_TRUE(out->Validate().ok());
}

TEST_F(SetOpsTest, DifferenceNegatesWhereBothValid) {
  Add(r_.get(), "A", 0, 10, 0.5, "r1");
  Add(s_.get(), "A", 4, 6, 0.5, "s1");
  StatusOr<TPRelation> out = TPDifference(*r_, *s_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u) << Render(*out);
  std::map<std::string, std::string> by_interval;
  for (const TPTuple& t : out->tuples())
    by_interval[t.interval.ToString()] =
        LineageToString(manager_, t.lineage);
  EXPECT_EQ(by_interval["[0,4)"], "r1");
  EXPECT_EQ(by_interval["[4,6)"], "r1 ∧ ¬s1");
  EXPECT_EQ(by_interval["[6,10)"], "r1");
  EXPECT_TRUE(out->Validate().ok());
}

TEST_F(SetOpsTest, UnionCoversBothSides) {
  Add(r_.get(), "A", 0, 6, 0.5, "r1");
  Add(s_.get(), "A", 4, 10, 0.5, "s1");
  StatusOr<TPRelation> out = TPUnion(*r_, *s_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u) << Render(*out);
  std::map<std::string, std::string> by_interval;
  for (const TPTuple& t : out->tuples())
    by_interval[t.interval.ToString()] =
        LineageToString(manager_, t.lineage);
  EXPECT_EQ(by_interval["[0,4)"], "r1");
  EXPECT_EQ(by_interval["[4,6)"], "r1 ∨ s1");
  EXPECT_EQ(by_interval["[6,10)"], "s1");
  EXPECT_TRUE(out->Validate().ok());
}

TEST_F(SetOpsTest, DisjointFactsUnionIsConcatenation) {
  Add(r_.get(), "A", 0, 5, 0.5, "r1");
  Add(s_.get(), "B", 2, 7, 0.5, "s1");
  StatusOr<TPRelation> out = TPUnion(*r_, *s_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u) << Render(*out);
}

TEST_F(SetOpsTest, EmptyInputs) {
  Add(r_.get(), "A", 0, 5, 0.5, "r1");
  StatusOr<TPRelation> inter = TPIntersect(*r_, *s_);
  ASSERT_TRUE(inter.ok());
  EXPECT_TRUE(inter->empty());
  StatusOr<TPRelation> diff = TPDifference(*r_, *s_);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 1u);
  StatusOr<TPRelation> uni = TPUnion(*r_, *s_);
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->size(), 1u);
}

TEST_F(SetOpsTest, ArityMismatchRejected) {
  Schema wide;
  wide.AddColumn({"a", DatumType::kString});
  wide.AddColumn({"b", DatumType::kString});
  TPRelation w("w", wide, &manager_);
  EXPECT_FALSE(TPUnion(*r_, w).ok());
  EXPECT_FALSE(TPIntersect(*r_, w).ok());
  EXPECT_FALSE(TPDifference(*r_, w).ok());
}

// Snapshot oracle over randomized inputs: at every time point, the set
// operation must equal its non-temporal probabilistic counterpart.
class SetOpsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOpsPropertyTest, SnapshotSemantics) {
  LineageManager manager;
  Random rng(GetParam() * 31337);
  RandomRelationOptions opts;
  opts.num_tuples = 12;
  opts.num_keys = 2;  // few keys + tags: plenty of same-fact collisions
  auto r = MakeRandomRelation(&manager, "r", opts, &rng);
  auto s = MakeRandomRelation(&manager, "s", opts, &rng);
  ProbabilityEngine prob(&manager);

  StatusOr<TPRelation> uni = TPUnion(*r, *s);
  StatusOr<TPRelation> inter = TPIntersect(*r, *s);
  StatusOr<TPRelation> diff = TPDifference(*r, *s);
  ASSERT_TRUE(uni.ok());
  ASSERT_TRUE(inter.ok());
  ASSERT_TRUE(diff.ok());
  ASSERT_TRUE(uni->Validate().ok());
  ASSERT_TRUE(inter->Validate().ok());
  ASSERT_TRUE(diff->Validate().ok());

  auto result_prob_at = [&](const TPRelation& rel, const Row& fact,
                            TimePoint t) -> double {
    for (size_t i = 0; i < rel.size(); ++i) {
      if (!rel.tuple(i).interval.Contains(t)) continue;
      if (CompareRows(rel.tuple(i).fact, fact) != 0) continue;
      return rel.Probability(i);
    }
    return -1.0;  // absent
  };

  for (TimePoint t = 0; t < 60; ++t) {
    // Collect the per-fact lineages valid at t in each input.
    std::map<Row, std::pair<LineageRef, LineageRef>,
             bool (*)(const Row&, const Row&)>
        facts(+[](const Row& a, const Row& b) {
          return CompareRows(a, b) < 0;
        });
    for (const TPTuple& tup : r->tuples())
      if (tup.interval.Contains(t))
        facts[tup.fact].first = tup.lineage;
    for (const TPTuple& tup : s->tuples())
      if (tup.interval.Contains(t))
        facts[tup.fact].second = tup.lineage;

    for (const auto& [fact, lins] : facts) {
      const auto [lr, ls] = lins;
      const bool in_r = !lr.is_null();
      const bool in_s = !ls.is_null();
      // Union.
      double expected = in_r && in_s
                            ? prob.Probability(manager.Or(lr, ls))
                            : prob.Probability(in_r ? lr : ls);
      EXPECT_NEAR(result_prob_at(*uni, fact, t), expected, 1e-9)
          << "union at t=" << t << " fact " << RowToString(fact);
      // Intersection.
      if (in_r && in_s) {
        EXPECT_NEAR(result_prob_at(*inter, fact, t),
                    prob.Probability(manager.And(lr, ls)), 1e-9)
            << "intersect at t=" << t;
      } else {
        EXPECT_EQ(result_prob_at(*inter, fact, t), -1.0)
            << "spurious intersect tuple at t=" << t;
      }
      // Difference.
      if (in_r) {
        const double want = in_s
                                ? prob.Probability(manager.AndNot(lr, ls))
                                : prob.Probability(lr);
        EXPECT_NEAR(result_prob_at(*diff, fact, t), want, 1e-9)
            << "difference at t=" << t;
      } else {
        EXPECT_EQ(result_prob_at(*diff, fact, t), -1.0)
            << "spurious difference tuple at t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tpdb
