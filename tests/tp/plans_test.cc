// Tests of plan assembly: error paths, stage filters, WindowPlan lifetime,
// the LAWAN-only continuation, and large-scale structural invariants on
// the generated datasets (where the per-time-point oracle is too slow).
#include <gtest/gtest.h>

#include <map>

#include "datasets/meteo.h"
#include "datasets/webkit.h"
#include "engine/materialize.h"
#include "temporal/timeline.h"
#include "tests/reference/fixtures.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

using testing::MakeFig1Example;

TEST(WindowPlanErrors, RejectsDifferentManagers) {
  LineageManager m1;
  LineageManager m2;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation r("r", schema, &m1);
  TPRelation s("s", schema, &m2);
  StatusOr<WindowPlan> plan = MakeWindowPlan(
      r, s, JoinCondition::Equals("k"), WindowStage::kWuon);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(WindowPlanErrors, RejectsUnknownThetaColumns) {
  auto fx = MakeFig1Example();
  StatusOr<WindowPlan> plan = MakeWindowPlan(
      *fx->a, *fx->b, JoinCondition::Equals("NoSuchColumn"),
      WindowStage::kWuon);
  EXPECT_FALSE(plan.ok());
  // The message names the offending column.
  EXPECT_NE(plan.status().message().find("NoSuchColumn"), std::string::npos);

  JoinCondition half;
  half.equal_columns.emplace_back("Loc", "Missing");
  StatusOr<WindowPlan> plan2 =
      MakeWindowPlan(*fx->a, *fx->b, half, WindowStage::kWuon);
  EXPECT_FALSE(plan2.ok());
}

TEST(WindowPlan, MoveKeepsOperatorsValid) {
  auto fx = MakeFig1Example();
  StatusOr<WindowPlan> plan = MakeWindowPlan(
      *fx->a, *fx->b, fx->theta, WindowStage::kWuon);
  ASSERT_TRUE(plan.ok());
  // Move the plan: the tables are heap-allocated, so the operators keep
  // pointing at live data.
  WindowPlan moved = std::move(*plan);
  EXPECT_EQ(Drain(moved.root.get()), 7u);
}

TEST(WindowPlan, ReopenProducesSameRows) {
  auto fx = MakeFig1Example();
  StatusOr<WindowPlan> plan = MakeWindowPlan(
      *fx->a, *fx->b, fx->theta, WindowStage::kWuon);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Drain(plan->root.get()), 7u);
  EXPECT_EQ(Drain(plan->root.get()), 7u);  // restartable
}

TEST(LawanOnly, ContinuesMaterializedWuo) {
  auto fx = MakeFig1Example();
  StatusOr<WindowPlan> plan = MakeWindowPlan(
      *fx->a, *fx->b, fx->theta, WindowStage::kWuo);
  ASSERT_TRUE(plan.ok());
  Table wuo = Materialize(plan->root.get());
  EXPECT_EQ(wuo.size(), 4u);
  OperatorPtr lawan =
      MakeLawanOnly(&wuo, plan->layout, fx->a->manager());
  EXPECT_EQ(Drain(lawan.get()), 7u);
}

TEST(ComputeWindowsStages, MonotoneWindowCounts) {
  auto fx = MakeFig1Example();
  size_t previous = 0;
  for (const WindowStage stage :
       {WindowStage::kOverlap, WindowStage::kWuo, WindowStage::kWuon}) {
    StatusOr<std::vector<TPWindow>> w =
        ComputeWindows(*fx->a, *fx->b, fx->theta, stage);
    ASSERT_TRUE(w.ok());
    EXPECT_GE(w->size(), previous);
    previous = w->size();
  }
}

// Large-scale structural invariants on the generated datasets: the
// time-point oracle is too slow here, but the window-set laws can be
// checked directly interval-wise.
class DatasetInvariantTest : public ::testing::Test {
 protected:
  void CheckInvariants(const TPRelation& r, const TPRelation& s,
                       const JoinCondition& theta) {
    StatusOr<std::vector<TPWindow>> w =
        ComputeWindows(r, s, theta, WindowStage::kWuon);
    ASSERT_TRUE(w.ok());

    std::map<int64_t, std::vector<const TPWindow*>> by_rid;
    for (const TPWindow& win : *w) by_rid[win.rid].push_back(&win);

    ASSERT_EQ(by_rid.size(), r.size());  // every r tuple produces windows
    for (const auto& [rid, windows] : by_rid) {
      const Interval rt = r.tuple(static_cast<size_t>(rid)).interval;
      std::vector<Interval> partition;  // unmatched ∪ negating
      std::vector<Interval> negating;
      std::vector<Interval> overlapping;
      for (const TPWindow* win : windows) {
        EXPECT_EQ(win->r_interval, rt);
        EXPECT_TRUE(rt.Contains(win->window))
            << win->window.ToString() << " outside " << rt.ToString();
        switch (win->cls) {
          case WindowClass::kUnmatched:
            EXPECT_TRUE(win->lin_s.is_null());
            partition.push_back(win->window);
            break;
          case WindowClass::kNegating:
            EXPECT_FALSE(win->lin_s.is_null());
            partition.push_back(win->window);
            negating.push_back(win->window);
            break;
          case WindowClass::kOverlapping:
            overlapping.push_back(win->window);
            break;
        }
      }
      // Unmatched ∪ negating windows tile the tuple's interval exactly.
      EXPECT_TRUE(PairwiseDisjoint(partition));
      EXPECT_TRUE(Covers(rt, partition));
      // Negating windows cover exactly the union of overlapping windows.
      const std::vector<Interval> covered = CoveredRuns(rt, overlapping);
      EXPECT_EQ(Coalesce(negating), covered);
    }
  }
};

TEST_F(DatasetInvariantTest, WebkitWindowsSatisfyLaws) {
  LineageManager manager;
  WebkitOptions opts;
  opts.num_tuples = 1500;
  StatusOr<WebkitDataset> ds = MakeWebkitDataset(&manager, opts);
  ASSERT_TRUE(ds.ok());
  CheckInvariants(ds->r, ds->s, ds->theta);
}

TEST_F(DatasetInvariantTest, MeteoWindowsSatisfyLaws) {
  LineageManager manager;
  MeteoOptions opts;
  opts.num_tuples = 800;
  StatusOr<MeteoDataset> ds = MakeMeteoDataset(&manager, opts);
  ASSERT_TRUE(ds.ok());
  CheckInvariants(ds->r, ds->s, ds->theta);
}

}  // namespace
}  // namespace tpdb
