#include "tp/tp_relation.h"

#include <gtest/gtest.h>

#include "lineage/print.h"

namespace tpdb {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.AddColumn({"name", DatumType::kString});
  s.AddColumn({"loc", DatumType::kString});
  return s;
}

TEST(TPRelation, AppendBaseRegistersVariable) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(rel.AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                             0.7, "a1")
                  .ok());
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(mgr.num_variables(), 1u);
  EXPECT_EQ(LineageToString(mgr, rel.tuple(0).lineage), "a1");
  EXPECT_NEAR(rel.Probability(0), 0.7, 1e-12);
}

TEST(TPRelation, RejectsBadInputs) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  // Wrong arity.
  EXPECT_FALSE(rel.AppendBase({Datum("Ann")}, Interval(2, 8), 0.7).ok());
  // Empty interval.
  EXPECT_FALSE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(8, 2), 0.7).ok());
  EXPECT_FALSE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(3, 3), 0.7).ok());
  // Probability out of range.
  EXPECT_FALSE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(2, 8), 1.5).ok());
  // Null lineage on derived append.
  EXPECT_FALSE(rel.AppendDerived({Datum("x"), Datum("y")}, Interval(2, 8),
                                 LineageRef::Null())
                   .ok());
  EXPECT_EQ(rel.size(), 0u);
}

TEST(TPRelation, ValidateAcceptsDisjointSameFactIntervals) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(0, 5), 0.5).ok());
  ASSERT_TRUE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(5, 9), 0.6).ok());
  EXPECT_TRUE(rel.Validate().ok());
}

TEST(TPRelation, ValidateRejectsOverlappingSameFactIntervals) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(0, 5), 0.5).ok());
  ASSERT_TRUE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(4, 9), 0.6).ok());
  const Status st = rel.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TPRelation, ValidateAllowsOverlapAcrossDifferentFacts) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(
      rel.AppendBase({Datum("x"), Datum("y")}, Interval(0, 5), 0.5).ok());
  ASSERT_TRUE(
      rel.AppendBase({Datum("x"), Datum("z")}, Interval(0, 5), 0.6).ok());
  EXPECT_TRUE(rel.Validate().ok());
}

TEST(TPRelation, ToTableUsesReservedColumns) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(rel.AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                             0.7)
                  .ok());
  const Table t = rel.ToTable();
  EXPECT_EQ(t.schema.num_columns(), 5u);
  EXPECT_EQ(t.schema.IndexOf(kTsColumn), 2);
  EXPECT_EQ(t.schema.IndexOf(kTeColumn), 3);
  EXPECT_EQ(t.schema.IndexOf(kLineageColumn), 4);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][2].AsInt64(), 2);
  EXPECT_EQ(t.rows[0][3].AsInt64(), 8);
  EXPECT_FALSE(t.rows[0][4].AsLineage().is_null());
}

TEST(TPRelation, FromTableRoundTrip) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(rel.AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                             0.7)
                  .ok());
  ASSERT_TRUE(rel.AppendBase({Datum("Jim"), Datum("WEN")}, Interval(7, 10),
                             0.8)
                  .ok());
  StatusOr<TPRelation> back =
      TPRelation::FromTable("copy", rel.ToTable(), &mgr);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(CompareRows(back->tuple(i).fact, rel.tuple(i).fact), 0);
    EXPECT_EQ(back->tuple(i).interval, rel.tuple(i).interval);
    EXPECT_EQ(back->tuple(i).lineage, rel.tuple(i).lineage);
  }
}

TEST(TPRelation, FromTableRejectsMissingReservedColumns) {
  LineageManager mgr;
  Table t;
  t.schema.AddColumn({"x", DatumType::kInt64});
  EXPECT_FALSE(TPRelation::FromTable("bad", t, &mgr).ok());
}

TEST(TPRelation, ToStringShowsPaperStyleRows) {
  LineageManager mgr;
  TPRelation rel("a", TwoColSchema(), &mgr);
  ASSERT_TRUE(rel.AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                             0.7, "a1")
                  .ok());
  const std::string text = rel.ToString();
  EXPECT_NE(text.find("Ann | ZAK"), std::string::npos);
  EXPECT_NE(text.find("a1"), std::string::npos);
  EXPECT_NE(text.find("[2,8)"), std::string::npos);
  EXPECT_NE(text.find("0.7"), std::string::npos);
}

TEST(TPRelation, DerivedTupleProbabilityComesFromLineage) {
  LineageManager mgr;
  const VarId a = mgr.RegisterVariable(0.5, "a");
  const VarId b = mgr.RegisterVariable(0.5, "b");
  TPRelation rel("d", TwoColSchema(), &mgr);
  ASSERT_TRUE(rel.AppendDerived({Datum("x"), Datum("y")}, Interval(0, 1),
                                mgr.And(mgr.Var(a), mgr.Var(b)))
                  .ok());
  EXPECT_NEAR(rel.Probability(0), 0.25, 1e-12);
}

}  // namespace
}  // namespace tpdb
