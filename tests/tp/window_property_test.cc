// Property tests of the window computation against the brute-force oracle,
// plus the structural invariants of Definition 1 (DESIGN.md §7), swept over
// randomized inputs via parameterized tests.
#include <gtest/gtest.h>

#include <map>

#include "lineage/print.h"
#include "tests/reference/fixtures.h"
#include "tests/reference/reference.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

using testing::MakeRandomRelation;
using testing::RandomRelationOptions;
using testing::ReferenceWindows;

bool SameWindow(const TPWindow& a, const TPWindow& b) {
  return a.cls == b.cls && a.rid == b.rid && a.window == b.window &&
         a.r_interval == b.r_interval && a.lin_r == b.lin_r &&
         a.lin_s == b.lin_s && CompareRows(a.fact_r, b.fact_r) == 0;
}

struct Param {
  uint64_t seed;
  int64_t r_tuples;
  int64_t s_tuples;
  int64_t keys;
};

class WindowPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const Param& p = GetParam();
    Random rng(p.seed);
    RandomRelationOptions opts;
    opts.num_keys = p.keys;
    opts.num_tuples = p.r_tuples;
    r_ = MakeRandomRelation(&manager_, "r", opts, &rng);
    opts.num_tuples = p.s_tuples;
    s_ = MakeRandomRelation(&manager_, "s", opts, &rng);
    ASSERT_TRUE(r_->Validate().ok());
    ASSERT_TRUE(s_->Validate().ok());
    theta_ = JoinCondition::Equals("key");
  }

  std::vector<TPWindow> Computed(WindowStage stage,
                                 OverlapAlgorithm algorithm) {
    StatusOr<std::vector<TPWindow>> w =
        ComputeWindows(*r_, *s_, theta_, stage, algorithm);
    TPDB_CHECK(w.ok()) << w.status().ToString();
    std::vector<TPWindow> out = std::move(*w);
    SortWindows(&out);
    return out;
  }

  void ExpectSameWindows(const std::vector<TPWindow>& expected,
                         const std::vector<TPWindow>& actual) {
    ASSERT_EQ(expected.size(), actual.size())
        << "expected:\n" << WindowsToString(manager_, expected)
        << "actual:\n" << WindowsToString(manager_, actual);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(SameWindow(expected[i], actual[i]))
          << "window " << i << ":\nexpected "
          << expected[i].ToString(manager_) << "\nactual   "
          << actual[i].ToString(manager_);
    }
  }

  LineageManager manager_;
  std::unique_ptr<TPRelation> r_;
  std::unique_ptr<TPRelation> s_;
  JoinCondition theta_;
};

TEST_P(WindowPropertyTest, WuonMatchesOracle) {
  ExpectSameWindows(
      ReferenceWindows(*r_, *s_, theta_, WindowStage::kWuon),
      Computed(WindowStage::kWuon, OverlapAlgorithm::kPartitioned));
}

TEST_P(WindowPropertyTest, WuoMatchesOracle) {
  ExpectSameWindows(
      ReferenceWindows(*r_, *s_, theta_, WindowStage::kWuo),
      Computed(WindowStage::kWuo, OverlapAlgorithm::kPartitioned));
}

TEST_P(WindowPropertyTest, OverlapStageMatchesOracle) {
  ExpectSameWindows(
      ReferenceWindows(*r_, *s_, theta_, WindowStage::kOverlap),
      Computed(WindowStage::kOverlap, OverlapAlgorithm::kPartitioned));
}

TEST_P(WindowPropertyTest, NestedLoopAgreesWithPartitioned) {
  ExpectSameWindows(
      Computed(WindowStage::kWuon, OverlapAlgorithm::kPartitioned),
      Computed(WindowStage::kWuon, OverlapAlgorithm::kNestedLoop));
}

// Invariant 1 of DESIGN.md §7: per r tuple, every time point of its
// interval lies in exactly one unmatched-or-negating window, and in exactly
// k overlapping windows where k = |valid θ-matching s tuples at t|.
TEST_P(WindowPropertyTest, WindowsPartitionEachTupleInterval) {
  std::vector<TPWindow> windows =
      Computed(WindowStage::kWuon, OverlapAlgorithm::kPartitioned);
  StatusOr<ThetaMatcher> matcher =
      ThetaMatcher::Make(theta_, r_->fact_schema(), s_->fact_schema());
  ASSERT_TRUE(matcher.ok());

  std::map<int64_t, std::vector<const TPWindow*>> by_rid;
  for (const TPWindow& w : windows) by_rid[w.rid].push_back(&w);

  for (size_t i = 0; i < r_->size(); ++i) {
    const TPTuple& rt = r_->tuple(i);
    const auto& ws = by_rid[static_cast<int64_t>(i)];
    for (TimePoint t = rt.interval.start; t < rt.interval.end; ++t) {
      size_t unmatched = 0;
      size_t negating = 0;
      size_t overlapping = 0;
      for (const TPWindow* w : ws) {
        if (!w->window.Contains(t)) continue;
        switch (w->cls) {
          case WindowClass::kUnmatched:
            ++unmatched;
            break;
          case WindowClass::kNegating:
            ++negating;
            break;
          case WindowClass::kOverlapping:
            ++overlapping;
            break;
        }
      }
      size_t expected_matches = 0;
      for (size_t j = 0; j < s_->size(); ++j) {
        if (s_->tuple(j).interval.Contains(t) &&
            matcher->Matches(rt.fact, s_->tuple(j).fact))
          ++expected_matches;
      }
      EXPECT_EQ(unmatched + negating, 1u)
          << "rid " << i << " t=" << t;
      EXPECT_EQ(negating, expected_matches > 0 ? 1u : 0u)
          << "rid " << i << " t=" << t;
      EXPECT_EQ(overlapping, expected_matches)
          << "rid " << i << " t=" << t;
    }
  }
}

// Invariant 2: maximality — adjacent same-class windows of one rid must
// differ in λs (otherwise the earlier window was not maximal).
TEST_P(WindowPropertyTest, WindowsAreMaximal) {
  std::vector<TPWindow> windows =
      Computed(WindowStage::kWuon, OverlapAlgorithm::kPartitioned);
  for (size_t i = 0; i + 1 < windows.size(); ++i) {
    const TPWindow& a = windows[i];
    const TPWindow& b = windows[i + 1];
    if (a.rid != b.rid || a.cls != b.cls) continue;
    if (a.cls == WindowClass::kOverlapping) continue;  // per-pair, maximal
    if (a.window.end != b.window.start) continue;
    EXPECT_FALSE(a.lin_s == b.lin_s)
        << "non-maximal adjacent windows:\n"
        << a.ToString(manager_) << "\n" << b.ToString(manager_);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, WindowPropertyTest,
    ::testing::Values(
        Param{1, 8, 8, 2}, Param{2, 12, 10, 3}, Param{3, 16, 16, 2},
        Param{4, 20, 12, 4}, Param{5, 6, 18, 2}, Param{6, 18, 6, 3},
        Param{7, 25, 25, 3}, Param{8, 30, 30, 5}, Param{9, 10, 10, 1},
        Param{10, 15, 15, 8}, Param{11, 1, 12, 2}, Param{12, 12, 1, 2},
        Param{13, 40, 40, 4}, Param{14, 22, 9, 2}, Param{15, 9, 22, 2}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// Degenerate inputs: empty relations on either side.
TEST(WindowEdgeCases, EmptyNegativeRelationYieldsOnlyUnmatched) {
  LineageManager manager;
  Random rng(99);
  RandomRelationOptions opts;
  auto r = MakeRandomRelation(&manager, "r", opts, &rng);
  Schema s_schema;
  s_schema.AddColumn({"key", DatumType::kInt64});
  s_schema.AddColumn({"tag", DatumType::kInt64});
  TPRelation s("s", s_schema, &manager);

  StatusOr<std::vector<TPWindow>> w = ComputeWindows(
      *r, s, JoinCondition::Equals("key"), WindowStage::kWuon);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->size(), r->size());
  for (const TPWindow& win : *w) {
    EXPECT_EQ(win.cls, WindowClass::kUnmatched);
    EXPECT_EQ(win.window, win.r_interval);
  }
}

TEST(WindowEdgeCases, EmptyPositiveRelationYieldsNothing) {
  LineageManager manager;
  Random rng(99);
  RandomRelationOptions opts;
  auto s = MakeRandomRelation(&manager, "s", opts, &rng);
  Schema r_schema;
  r_schema.AddColumn({"key", DatumType::kInt64});
  r_schema.AddColumn({"tag", DatumType::kInt64});
  TPRelation r("r", r_schema, &manager);

  StatusOr<std::vector<TPWindow>> w = ComputeWindows(
      r, *s, JoinCondition::Equals("key"), WindowStage::kWuon);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->empty());
}

TEST(WindowEdgeCases, TrivialThetaMatchesEverything) {
  LineageManager manager;
  Random rng(5);
  RandomRelationOptions opts;
  opts.num_tuples = 6;
  auto r = MakeRandomRelation(&manager, "r", opts, &rng);
  auto s = MakeRandomRelation(&manager, "s", opts, &rng);
  JoinCondition trivial;  // no equalities, no predicate
  std::vector<TPWindow> expected =
      ReferenceWindows(*r, *s, trivial, WindowStage::kWuon);
  StatusOr<std::vector<TPWindow>> actual =
      ComputeWindows(*r, *s, trivial, WindowStage::kWuon);
  ASSERT_TRUE(actual.ok());
  SortWindows(&*actual);
  ASSERT_EQ(expected.size(), actual->size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_TRUE(SameWindow(expected[i], (*actual)[i]))
        << expected[i].ToString(manager) << "\nvs\n"
        << (*actual)[i].ToString(manager);
}

}  // namespace
}  // namespace tpdb
