#include "common/datum.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

TEST(Datum, DefaultIsNull) {
  Datum d;
  EXPECT_TRUE(d.is_null());
  EXPECT_EQ(d.type(), DatumType::kNull);
}

TEST(Datum, TypedConstructionAndAccess) {
  EXPECT_EQ(Datum(static_cast<int64_t>(42)).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Datum(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Datum("abc").AsString(), "abc");
  EXPECT_EQ(Datum(LineageRef{7}).AsLineage().id, 7u);
}

TEST(Datum, TypeTags) {
  EXPECT_EQ(Datum(static_cast<int64_t>(1)).type(), DatumType::kInt64);
  EXPECT_EQ(Datum(1.0).type(), DatumType::kDouble);
  EXPECT_EQ(Datum("x").type(), DatumType::kString);
  EXPECT_EQ(Datum(LineageRef{0}).type(), DatumType::kLineage);
}

TEST(Datum, CompareWithinTypes) {
  EXPECT_LT(Datum(static_cast<int64_t>(1)), Datum(static_cast<int64_t>(2)));
  EXPECT_EQ(Datum(static_cast<int64_t>(3)), Datum(static_cast<int64_t>(3)));
  EXPECT_LT(Datum(1.5), Datum(2.5));
  EXPECT_LT(Datum("a"), Datum("b"));
  EXPECT_LT(Datum(LineageRef{1}), Datum(LineageRef{2}));
}

TEST(Datum, CompareAcrossTypesUsesTypeOrder) {
  // NULL < int64 < double < string < lineage.
  EXPECT_LT(Datum::Null(), Datum(static_cast<int64_t>(0)));
  EXPECT_LT(Datum(static_cast<int64_t>(999)), Datum(0.0));
  EXPECT_LT(Datum(999.0), Datum(""));
  EXPECT_LT(Datum("zzz"), Datum(LineageRef{0}));
}

TEST(Datum, NullsCompareEqual) {
  EXPECT_EQ(Datum::Null(), Datum::Null());
}

TEST(Datum, HashDistinguishesValuesAndTypes) {
  EXPECT_NE(Datum(static_cast<int64_t>(1)).Hash(),
            Datum(static_cast<int64_t>(2)).Hash());
  EXPECT_NE(Datum(static_cast<int64_t>(1)).Hash(), Datum("1").Hash());
  EXPECT_EQ(Datum("abc").Hash(), Datum("abc").Hash());
}

TEST(Datum, ToStringRendersEveryType) {
  EXPECT_EQ(Datum::Null().ToString(), "-");
  EXPECT_EQ(Datum(static_cast<int64_t>(7)).ToString(), "7");
  EXPECT_EQ(Datum("x").ToString(), "x");
  EXPECT_EQ(Datum(LineageRef::Null()).ToString(), "-");
  EXPECT_EQ(Datum(LineageRef{3}).ToString(), "λ#3");
}

TEST(LineageRefBasics, NullSentinel) {
  EXPECT_TRUE(LineageRef::Null().is_null());
  EXPECT_FALSE((LineageRef{0}).is_null());
  EXPECT_EQ(LineageRef::Null(), LineageRef::Null());
  EXPECT_NE(LineageRef{1}, LineageRef{2});
}

}  // namespace
}  // namespace tpdb
