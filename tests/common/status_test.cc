#include "common/status.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad θ");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad θ");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad θ");
}

TEST(Status, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 5);
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::OK();
}

Status Outer(bool fail) {
  TPDB_RETURN_IF_ERROR(Inner(fail));
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tpdb
