#include "common/strings.h"

#include <gtest/gtest.h>

namespace tpdb {
namespace {

TEST(Strings, JoinBasics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(Strings, SplitJoinRoundTrip) {
  const std::string original = "one,two,three";
  EXPECT_EQ(Join(Split(original, ','), ","), original);
}

TEST(Strings, TrimBasics) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(Strings, StartsWithBasics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "abc"));
}

}  // namespace
}  // namespace tpdb
