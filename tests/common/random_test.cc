#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace tpdb {
namespace {

TEST(Random, DeterministicForFixedSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Random, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Random, UniformSingletonRange) {
  Random rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(4, 4), 4);
}

TEST(Random, UniformCoversAllValues) {
  Random rng(11);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[rng.Uniform(0, 9)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) EXPECT_GT(c, 150) << v;
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Random, ExponentialIsPositiveWithRoughMean) {
  Random rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.Exponential(50.0);
    EXPECT_GE(v, 1);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 50.0, 5.0);
}

TEST(Random, ZipfZeroSkewIsUniform) {
  Random rng(5);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (const auto& [v, c] : counts) EXPECT_GT(c, 300) << v;
}

TEST(Random, ZipfSkewFavoursSmallValues) {
  Random rng(5);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (rng.Zipf(100, 1.2) < 10) ++low;
  EXPECT_GT(low, n / 2);
}

TEST(Random, ZipfStaysInRange) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Zipf(7, 0.9);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

}  // namespace
}  // namespace tpdb
