// Tests of the Temporal Alignment baseline: its primitives, and the
// equivalence NJ ≡ TA (invariant 4 of DESIGN.md §7) — the baseline must
// compute the same result while doing redundant work.
#include <gtest/gtest.h>

#include "baseline/alignment.h"
#include "baseline/ta_join.h"
#include "tests/reference/fixtures.h"
#include "tests/reference/reference.h"
#include "tp/operators.h"
#include "tp/plans.h"

namespace tpdb {
namespace {

using testing::MakeFig1Example;
using testing::MakeRandomRelation;
using testing::RandomRelationOptions;

TEST(AlignmentPrimitives, SplitPointsIncludeTupleEndpoints) {
  auto fx = MakeFig1Example();
  const std::vector<std::vector<TimePoint>> points =
      SplitPoints(*fx->a, *fx->b);
  ASSERT_EQ(points.size(), 2u);
  // a1 = [2,8): boundaries of b1 [1,4), b2 [5,8), b3 [4,6) inside (θ is
  // ignored, so b1's end 4 counts too): {2, 4, 5, 6, 8}.
  EXPECT_EQ(points[0], (std::vector<TimePoint>{2, 4, 5, 6, 8}));
  // a2 = [7,10): b2 [5,8) overlaps it *temporally* (θ is ignored by the
  // alignment primitives), so its end contributes a split: {7, 8, 10}.
  EXPECT_EQ(points[1], (std::vector<TimePoint>{7, 8, 10}));
}

TEST(AlignmentPrimitives, NormalizeFragmentsCoverEachTuple) {
  auto fx = MakeFig1Example();
  const std::vector<AlignedFragment> fragments = Normalize(*fx->a, *fx->b);
  // a1 splits into [2,4) [4,5) [5,6) [6,8); a2 into [7,8) [8,10).
  ASSERT_EQ(fragments.size(), 6u);
  std::vector<Interval> a1_pieces;
  for (const AlignedFragment& f : fragments)
    if (f.rid == 0) a1_pieces.push_back(f.piece);
  ASSERT_EQ(a1_pieces.size(), 4u);
  EXPECT_EQ(a1_pieces[0], Interval(2, 4));
  EXPECT_EQ(a1_pieces[3], Interval(6, 8));
  // Fragments tile the original interval with no gaps.
  for (size_t i = 1; i < a1_pieces.size(); ++i)
    EXPECT_EQ(a1_pieces[i - 1].end, a1_pieces[i].start);
}

TEST(AlignmentPrimitives, NormalizeReplicates) {
  // The inefficiency the paper attributes to TA: fragment count exceeds
  // tuple count as soon as intervals overlap across relations.
  auto fx = MakeFig1Example();
  EXPECT_GT(Normalize(*fx->a, *fx->b).size(), fx->a->size());
}

struct TaParam {
  uint64_t seed;
  int64_t keys;
};

class TaEquivalenceTest : public ::testing::TestWithParam<TaParam> {
 protected:
  void SetUp() override {
    Random rng(GetParam().seed * 77);
    RandomRelationOptions opts;
    opts.num_tuples = 18;
    opts.num_keys = GetParam().keys;
    r_ = MakeRandomRelation(&manager_, "r", opts, &rng);
    s_ = MakeRandomRelation(&manager_, "s", opts, &rng);
    theta_ = JoinCondition::Equals("key");
  }

  LineageManager manager_;
  std::unique_ptr<TPRelation> r_;
  std::unique_ptr<TPRelation> s_;
  JoinCondition theta_;
};

TEST_P(TaEquivalenceTest, WindowsMatchLineageAwareStrategy) {
  for (const WindowStage stage :
       {WindowStage::kOverlap, WindowStage::kWuo, WindowStage::kWuon}) {
    StatusOr<std::vector<TPWindow>> nj =
        ComputeWindows(*r_, *s_, theta_, stage);
    StatusOr<std::vector<TPWindow>> ta =
        TAComputeWindows(*r_, *s_, theta_, stage);
    ASSERT_TRUE(nj.ok());
    ASSERT_TRUE(ta.ok());
    SortWindows(&*nj);
    SortWindows(&*ta);
    ASSERT_EQ(nj->size(), ta->size())
        << "stage " << static_cast<int>(stage) << "\nNJ:\n"
        << WindowsToString(manager_, *nj) << "TA:\n"
        << WindowsToString(manager_, *ta);
    for (size_t i = 0; i < nj->size(); ++i) {
      const TPWindow& a = (*nj)[i];
      const TPWindow& b = (*ta)[i];
      EXPECT_TRUE(a.cls == b.cls && a.rid == b.rid && a.window == b.window &&
                  a.lin_r == b.lin_r && a.lin_s == b.lin_s)
          << "stage " << static_cast<int>(stage) << " window " << i << ":\n"
          << a.ToString(manager_) << "\nvs\n" << b.ToString(manager_);
    }
  }
}

TEST_P(TaEquivalenceTest, JoinResultsMatchForAllKinds) {
  for (const TPJoinKind kind :
       {TPJoinKind::kInner, TPJoinKind::kAnti, TPJoinKind::kLeftOuter,
        TPJoinKind::kRightOuter, TPJoinKind::kFullOuter}) {
    TPJoinOptions nj_opts;
    TPJoinOptions ta_opts;
    ta_opts.strategy = JoinStrategy::kTemporalAlignment;
    StatusOr<TPRelation> nj = TPJoin(kind, *r_, *s_, theta_, nj_opts);
    StatusOr<TPRelation> ta = TPJoin(kind, *r_, *s_, theta_, ta_opts);
    ASSERT_TRUE(nj.ok()) << nj.status().ToString();
    ASSERT_TRUE(ta.ok()) << ta.status().ToString();
    ASSERT_EQ(nj->size(), ta->size()) << TPJoinKindName(kind);

    // Compare as canonicalized sets of (fact, interval, lineage id).
    auto canon = [](const TPRelation& rel) {
      std::vector<std::tuple<Row, Interval, uint32_t>> rows;
      for (const TPTuple& t : rel.tuples())
        rows.emplace_back(t.fact, t.interval, t.lineage.id);
      std::sort(rows.begin(), rows.end(),
                [](const auto& a, const auto& b) {
                  const int c = CompareRows(std::get<0>(a), std::get<0>(b));
                  if (c != 0) return c < 0;
                  if (!(std::get<1>(a) == std::get<1>(b)))
                    return std::get<1>(a) < std::get<1>(b);
                  return std::get<2>(a) < std::get<2>(b);
                });
      return rows;
    };
    EXPECT_EQ(canon(*nj), canon(*ta)) << TPJoinKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, TaEquivalenceTest,
    ::testing::Values(TaParam{1, 2}, TaParam{2, 3}, TaParam{3, 1},
                      TaParam{4, 4}, TaParam{5, 2}, TaParam{6, 6},
                      TaParam{7, 3}, TaParam{8, 2}),
    [](const ::testing::TestParamInfo<TaParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(TaWindows, MatchOracleOnFig1) {
  auto fx = MakeFig1Example();
  StatusOr<std::vector<TPWindow>> ta =
      TAComputeWindows(*fx->a, *fx->b, fx->theta, WindowStage::kWuon);
  ASSERT_TRUE(ta.ok());
  std::vector<TPWindow> expected = testing::ReferenceWindows(
      *fx->a, *fx->b, fx->theta, WindowStage::kWuon);
  SortWindows(&*ta);
  ASSERT_EQ(ta->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*ta)[i].window, expected[i].window);
    EXPECT_EQ((*ta)[i].cls, expected[i].cls);
    EXPECT_EQ((*ta)[i].lin_s, expected[i].lin_s);
  }
}

}  // namespace
}  // namespace tpdb
