// Scheduler-level tests: the pool runs everything it is given, propagates
// task errors, helps when saturated, and the morsel partitioners cover
// their input exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/random.h"
#include "datasets/generator.h"
#include "exec/morsel.h"
#include "exec/thread_pool.h"

namespace tpdb {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&count]() -> Status {
      count.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, PropagatesFirstError) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    group.Spawn([&count, i]() -> Status {
      count.fetch_add(1, std::memory_order_relaxed);
      if (i % 10 == 3) return Status::Internal("task failed");
      return Status::OK();
    });
  }
  const Status status = group.Wait();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(count.load(), 50) << "errors must not cancel sibling tasks";
}

TEST(ThreadPoolTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    group.Spawn([&count]() -> Status {
      ++count;  // single-threaded by construction
      return Status::OK();
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(count, 10);
}

TEST(ThreadPoolTest, WaiterHelpsWhenPoolIsSmall) {
  // A 1-thread pool with many tasks: Wait() must help drain the queues
  // rather than deadlock or serialize behind a stuck worker.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Spawn([&count]() -> Status {
      count.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkerIndexIsInRangeInsideTasks) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Spawn([&]() -> Status {
      const int worker = ThreadPool::CurrentWorker();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(worker);
      return Status::OK();
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  for (const int worker : seen) {
    // -1 = the test thread helping from Wait(); otherwise a pool index.
    EXPECT_GE(worker, -1);
    EXPECT_LT(worker, 3);
  }
  EXPECT_EQ(ThreadPool::CurrentWorker(), -1);
}

TEST(MorselTest, MorselsTileTheInputExactly) {
  for (const size_t n : {0u, 1u, 7u, 1024u, 1025u, 5000u}) {
    const std::vector<Morsel> morsels = MakeMorsels(n, 256);
    size_t expected_begin = 0;
    for (const Morsel& m : morsels) {
      EXPECT_EQ(m.begin, expected_begin);
      EXPECT_LT(m.begin, m.end);
      expected_begin = m.end;
    }
    EXPECT_EQ(expected_begin, n);
  }
}

TEST(MorselTest, MaxMorselsGrowsTheChunk) {
  const std::vector<Morsel> morsels = MakeMorsels(10000, 16, 8);
  EXPECT_LE(morsels.size(), 8u);
  size_t covered = 0;
  for (const Morsel& m : morsels) covered += m.size();
  EXPECT_EQ(covered, 10000u);
}

TEST(MorselTest, HashPartitionIsALosslessFactRouting) {
  LineageManager manager;
  Random rng(7);
  UniformWorkloadOptions options;
  options.num_tuples = 800;
  options.num_facts = 60;
  StatusOr<TPRelation> rel =
      MakeUniformWorkload(&manager, "r", options, &rng);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();

  const std::vector<TPRelation> parts = HashPartitionRelation(*rel, 5);
  ASSERT_EQ(parts.size(), 5u);
  size_t total = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    total += parts[i].size();
    // Tuples route by fact hash, so equal facts can never split across
    // partitions.
    for (const TPTuple& t : parts[i].tuples())
      EXPECT_EQ(HashFactRow(t.fact) % 5, i);
  }
  EXPECT_EQ(total, rel->size());
}

TEST(MorselTest, SliceRelationCopiesTheRange) {
  LineageManager manager;
  Schema schema;
  schema.AddColumn({"k", DatumType::kInt64});
  TPRelation rel("r", schema, &manager);
  for (int64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(
        rel.AppendBase({Datum(i)}, Interval(i, i + 1), 0.5).ok());
  const TPRelation slice = SliceRelation(rel, Morsel{3, 7});
  ASSERT_EQ(slice.size(), 4u);
  for (size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice.tuple(i).fact[0].AsInt64(),
              rel.tuple(i + 3).fact[0].AsInt64());
    EXPECT_EQ(slice.tuple(i).lineage, rel.tuple(i + 3).lineage);
  }
}

}  // namespace
}  // namespace tpdb
