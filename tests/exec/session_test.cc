// Concurrent-session tests: N threads issuing Query() against one
// TPDatabase must never race (shared-read catalog, thread-safe lineage
// interning), parallel sessions must agree with the serial planner, and
// Explain must surface per-worker timings for parallel runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

std::vector<CanonicalTuple> Canonicalize(const TPRelation& rel) {
  ProbabilityEngine engine(rel.manager());
  std::vector<CanonicalTuple> out;
  out.reserve(rel.size());
  for (const TPTuple& t : rel.tuples())
    out.push_back(
        CanonicalTuple{t.fact, t.interval, engine.Probability(t.lineage)});
  std::sort(out.begin(), out.end(),
            [](const CanonicalTuple& a, const CanonicalTuple& b) {
              const int c = CompareRows(a.fact, b.fact);
              if (c != 0) return c < 0;
              return a.interval < b.interval;
            });
  return out;
}

void ExpectSameCanonical(const TPRelation& expected,
                         const TPRelation& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  const std::vector<CanonicalTuple> e = Canonicalize(expected);
  const std::vector<CanonicalTuple> a = Canonicalize(actual);
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(CompareRows(e[i].fact, a[i].fact), 0);
    EXPECT_EQ(e[i].interval, a[i].interval);
    EXPECT_NEAR(e[i].probability, a[i].probability, 1e-9);
  }
}

class SessionConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(99);
    UniformWorkloadOptions options;
    options.num_tuples = 900;
    options.num_facts = 120;
    options.history_length = 3000;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db_.manager(), name, options, &rng);
      ASSERT_TRUE(rel.ok()) << rel.status().ToString();
      ASSERT_TRUE(db_.Register(std::move(*rel)).ok());
    }
  }

  SessionOptions ParallelOptions() const {
    SessionOptions options;
    options.parallelism = 3;
    options.morsel_size = 128;
    options.min_parallel_rows = 64;
    return options;
  }

  TPDatabase db_;
};

TEST_F(SessionConcurrencyTest, ParallelSessionAgreesWithSerialPlanner) {
  const std::vector<std::string> queries = {
      "SELECT * FROM r INNER JOIN s ON key",
      "SELECT * FROM r LEFT JOIN s ON key",
      "r ANTI JOIN s ON key",
      "r UNION s",
      "r INTERSECT s",
      "r EXCEPT s",
      "SELECT * FROM r WHERE key < 40",
      "SELECT * FROM r INNER JOIN s ON key WHERE key < 60 ORDER BY key",
  };
  const Session serial(&db_, SessionOptions{.parallelism = 1});
  const Session parallel(&db_, ParallelOptions());
  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    StatusOr<TPRelation> expected = serial.Query(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    StatusOr<TPRelation> actual = parallel.Query(query);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ExpectSameCanonical(*expected, *actual);
  }
}

TEST_F(SessionConcurrencyTest, ConcurrentQueriesNeverRace) {
  const std::vector<std::string> queries = {
      "SELECT * FROM r INNER JOIN s ON key",
      "r UNION s",
      "r EXCEPT s",
      "SELECT * FROM r WHERE key < 50",
      "r ANTI JOIN s ON key",
  };
  // Serial ground truth, computed before any concurrency starts.
  std::vector<std::unique_ptr<TPRelation>> expected;
  {
    const Session serial(&db_, SessionOptions{.parallelism = 1});
    for (const std::string& query : queries) {
      StatusOr<TPRelation> result = serial.Query(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      expected.push_back(std::make_unique<TPRelation>(std::move(*result)));
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mixed fleet: some sessions parallel, some serial.
      const Session session(
          &db_, t % 2 == 0 ? ParallelOptions()
                           : SessionOptions{.parallelism = 1});
      for (int round = 0; round < kRounds; ++round) {
        const size_t q = static_cast<size_t>(t + round) % queries.size();
        StatusOr<TPRelation> result = session.Query(queries[q]);
        if (!result.ok() || result->size() != expected[q]->size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Full content check once the threads are done (probability computation
  // inside the check would otherwise serialize the interesting part).
  const Session session(&db_, ParallelOptions());
  for (size_t q = 0; q < queries.size(); ++q) {
    StatusOr<TPRelation> result = session.Query(queries[q]);
    ASSERT_TRUE(result.ok());
    ExpectSameCanonical(*expected[q], *result);
  }
}

TEST_F(SessionConcurrencyTest, QueriesAndDdlInterleaveSafely) {
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Query threads hammer the stable relations.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const Session session(&db_, ParallelOptions());
      for (int round = 0; round < 4; ++round) {
        StatusOr<TPRelation> result = session.Query(
            t % 2 == 0 ? "SELECT * FROM r INNER JOIN s ON key"
                       : "r UNION s");
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  // DDL threads create and drop unrelated relations concurrently.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Schema schema;
      schema.AddColumn({"x", DatumType::kInt64});
      for (int i = 0; i < 20 && !stop.load(); ++i) {
        const std::string name =
            "tmp_" + std::to_string(t) + "_" + std::to_string(i);
        StatusOr<TPRelation*> rel = db_.CreateRelation(name, schema);
        if (!rel.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!db_.Drop(name).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  stop.store(true);
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SessionConcurrencyTest, ExplainSurfacesWorkerTimings) {
  const Session parallel(&db_, ParallelOptions());
  StatusOr<std::string> text =
      parallel.Explain("SELECT * FROM r INNER JOIN s ON key");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("parallel workers:"), std::string::npos) << *text;

  const Session serial(&db_, SessionOptions{.parallelism = 1});
  StatusOr<std::string> serial_text =
      serial.Explain("SELECT * FROM r INNER JOIN s ON key");
  ASSERT_TRUE(serial_text.ok());
  EXPECT_EQ(serial_text->find("parallel workers:"), std::string::npos)
      << "the serial path must not report workers";
}

}  // namespace
}  // namespace tpdb
