// Parallel-vs-serial equivalence on the random-scenario generator: every
// join kind and set operation must produce element-wise identical results
// under the morsel drivers, and the parallel pipeline driver must be
// byte-identical to a serial pipeline run (ordered merge).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/random.h"
#include "datasets/generator.h"
#include "engine/expr.h"
#include "engine/filter.h"
#include "engine/materialize.h"
#include "engine/scan.h"
#include "exec/parallel.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

/// A (fact, interval, probability) triple: everything observable about a
/// result tuple that is independent of lineage node ids.
struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

std::vector<CanonicalTuple> Canonicalize(const TPRelation& rel,
                                         bool sorted) {
  ProbabilityEngine engine(rel.manager());
  std::vector<CanonicalTuple> out;
  out.reserve(rel.size());
  for (const TPTuple& t : rel.tuples())
    out.push_back(
        CanonicalTuple{t.fact, t.interval, engine.Probability(t.lineage)});
  if (sorted) {
    std::sort(out.begin(), out.end(),
              [](const CanonicalTuple& a, const CanonicalTuple& b) {
                const int c = CompareRows(a.fact, b.fact);
                if (c != 0) return c < 0;
                if (a.interval != b.interval) return a.interval < b.interval;
                return a.probability < b.probability;
              });
  }
  return out;
}

/// Element-wise comparison; `sorted` canonicalizes order first (used for
/// the hash-partitioned set ops, whose order is deterministic but not the
/// serial emit order).
void ExpectSameContents(const TPRelation& serial, const TPRelation& parallel,
                        bool sorted) {
  ASSERT_EQ(serial.size(), parallel.size());
  const std::vector<CanonicalTuple> expected = Canonicalize(serial, sorted);
  const std::vector<CanonicalTuple> actual = Canonicalize(parallel, sorted);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(CompareRows(expected[i].fact, actual[i].fact), 0)
        << "fact mismatch at " << i;
    EXPECT_EQ(expected[i].interval, actual[i].interval)
        << "interval mismatch at " << i;
    EXPECT_NEAR(expected[i].probability, actual[i].probability, 1e-9)
        << "probability mismatch at " << i;
  }
}

struct Workload {
  LineageManager manager;
  std::unique_ptr<TPRelation> r;
  std::unique_ptr<TPRelation> s;
};

/// Two relations over the same key space, with enough tuples to clear the
/// parallel threshold and enough key collisions for interesting windows.
std::unique_ptr<Workload> MakeWorkload(uint64_t seed, int64_t tuples) {
  auto w = std::make_unique<Workload>();
  Random rng(seed);
  UniformWorkloadOptions options;
  options.num_tuples = tuples;
  options.num_facts = tuples / 8;
  options.history_length = 4000;
  options.avg_duration = 40.0;
  options.gap_probability = 0.3;
  StatusOr<TPRelation> r = MakeUniformWorkload(&w->manager, "r", options, &rng);
  TPDB_CHECK(r.ok()) << r.status().ToString();
  StatusOr<TPRelation> s = MakeUniformWorkload(&w->manager, "s", options, &rng);
  TPDB_CHECK(s.ok()) << s.status().ToString();
  w->r = std::make_unique<TPRelation>(std::move(*r));
  w->s = std::make_unique<TPRelation>(std::move(*s));
  return w;
}

/// A context that genuinely parallelizes: 4 workers, small morsels, low
/// threshold.
ExecContext MakeParallelContext(ThreadPool* pool) {
  ExecOptions options;
  options.parallelism = 4;
  options.morsel_size = 64;
  options.min_parallel_rows = 32;
  return ExecContext(pool, options);
}

class ParallelExecTest : public ::testing::Test {
 protected:
  ThreadPool pool_{4};
};

TEST_F(ParallelExecTest, JoinsMatchSerialForEveryKind) {
  const std::unique_ptr<Workload> w = MakeWorkload(42, 1200);
  const JoinCondition theta = JoinCondition::Equals("key");
  for (const TPJoinKind kind :
       {TPJoinKind::kInner, TPJoinKind::kAnti, TPJoinKind::kLeftOuter,
        TPJoinKind::kRightOuter, TPJoinKind::kFullOuter, TPJoinKind::kSemi}) {
    SCOPED_TRACE(TPJoinKindName(kind));
    StatusOr<TPRelation> serial = TPJoin(kind, *w->r, *w->s, theta);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    ExecContext ctx = MakeParallelContext(&pool_);
    StatusOr<TPRelation> parallel =
        ParallelTPJoin(&ctx, kind, *w->r, *w->s, theta);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    // Contiguous morsels preserve the serial emit order exactly.
    ExpectSameContents(*serial, *parallel, /*sorted=*/false);
    EXPECT_TRUE(parallel->Validate().ok());
    EXPECT_FALSE(ctx.CollectWorkerStats().empty())
        << "join of this size must actually have gone parallel";
  }
}

TEST_F(ParallelExecTest, SetOpsMatchSerialElementWise) {
  const std::unique_ptr<Workload> w = MakeWorkload(7, 1000);
  for (const TPSetOpKind kind :
       {TPSetOpKind::kUnion, TPSetOpKind::kIntersect,
        TPSetOpKind::kDifference}) {
    SCOPED_TRACE(TPSetOpKindName(kind));
    StatusOr<TPRelation> serial = TPSetOp(kind, *w->r, *w->s);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    ExecContext ctx = MakeParallelContext(&pool_);
    StatusOr<TPRelation> parallel =
        ParallelTPSetOp(&ctx, kind, *w->r, *w->s);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    // Hash partitioning reorders tuples; contents must be identical.
    ExpectSameContents(*serial, *parallel, /*sorted=*/true);
    EXPECT_TRUE(parallel->Validate().ok());
    EXPECT_EQ(serial->name(), parallel->name());
  }
}

TEST_F(ParallelExecTest, SmallInputsFallBackToSerialOrder) {
  const std::unique_ptr<Workload> w = MakeWorkload(3, 1000);
  ExecOptions options;
  options.parallelism = 4;
  options.min_parallel_rows = 1u << 20;  // threshold above every input
  ExecContext ctx(&pool_, options);
  StatusOr<TPRelation> serial =
      TPJoin(TPJoinKind::kLeftOuter, *w->r, *w->s,
             JoinCondition::Equals("key"));
  ASSERT_TRUE(serial.ok());
  StatusOr<TPRelation> fallback =
      ParallelTPJoin(&ctx, TPJoinKind::kLeftOuter, *w->r, *w->s,
                     JoinCondition::Equals("key"));
  ASSERT_TRUE(fallback.ok());
  ExpectSameContents(*serial, *fallback, /*sorted=*/false);
  EXPECT_TRUE(ctx.CollectWorkerStats().empty());
}

TEST_F(ParallelExecTest, PipelineMergeIsByteIdentical) {
  const std::unique_ptr<Workload> w = MakeWorkload(11, 1500);
  const Table input = w->r->ToTable();

  const PipelineFactory factory =
      [](OperatorPtr source) -> StatusOr<OperatorPtr> {
    // keep rows with key < 60 (roughly a third of the key space)
    ExprPtr pred = Compare(CompareOp::kLt, Col(0, "key"),
                           Lit(Datum(static_cast<int64_t>(60))));
    return OperatorPtr(
        std::make_unique<Filter>(std::move(source), std::move(pred)));
  };

  StatusOr<OperatorPtr> serial_op = factory(std::make_unique<TableScan>(&input));
  ASSERT_TRUE(serial_op.ok());
  const Table serial = Materialize(serial_op->get());

  ExecContext ctx = MakeParallelContext(&pool_);
  StatusOr<Table> parallel = ParallelPipeline(&ctx, input, factory);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial.rows.size(), parallel->rows.size());
  for (size_t i = 0; i < serial.rows.size(); ++i)
    EXPECT_EQ(CompareRows(serial.rows[i], parallel->rows[i]), 0)
        << "row " << i << " differs — ordered merge must be byte-identical";
}

TEST_F(ParallelExecTest, PipelinePropagatesFactoryErrors) {
  const std::unique_ptr<Workload> w = MakeWorkload(5, 1000);
  const Table input = w->r->ToTable();
  ExecContext ctx = MakeParallelContext(&pool_);
  StatusOr<Table> result = ParallelPipeline(
      &ctx, input, [](OperatorPtr) -> StatusOr<OperatorPtr> {
        return Status::InvalidArgument("factory failure");
      });
  EXPECT_FALSE(result.ok());
}

TEST_F(ParallelExecTest, RepeatedRunsAreDeterministic) {
  const std::unique_ptr<Workload> w = MakeWorkload(23, 900);
  ExecContext ctx1 = MakeParallelContext(&pool_);
  ExecContext ctx2 = MakeParallelContext(&pool_);
  StatusOr<TPRelation> a =
      ParallelTPSetOp(&ctx1, TPSetOpKind::kUnion, *w->r, *w->s);
  StatusOr<TPRelation> b =
      ParallelTPSetOp(&ctx2, TPSetOpKind::kUnion, *w->r, *w->s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same parallelism level → same partition routing → same tuple order,
  // regardless of thread interleaving.
  ExpectSameContents(*a, *b, /*sorted=*/false);
}

}  // namespace
}  // namespace tpdb
