// Time-partitioned parallel sweep: slicing the timeline into disjoint
// ranges and sweeping each slice independently must reproduce the serial
// sweep's output exactly (the driver merges slices in order), and match
// the partitioned probe element-wise on every join kind and set
// operation. Also covers the slice chooser's boundary behavior and the
// per-slice Explain report.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/random.h"
#include "datasets/generator.h"
#include "exec/parallel.h"
#include "exec/time_partition.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

std::vector<CanonicalTuple> Canonicalize(const TPRelation& rel, bool sorted) {
  ProbabilityEngine engine(rel.manager());
  std::vector<CanonicalTuple> out;
  out.reserve(rel.size());
  for (const TPTuple& t : rel.tuples())
    out.push_back(
        CanonicalTuple{t.fact, t.interval, engine.Probability(t.lineage)});
  if (sorted) {
    std::sort(out.begin(), out.end(),
              [](const CanonicalTuple& a, const CanonicalTuple& b) {
                const int c = CompareRows(a.fact, b.fact);
                if (c != 0) return c < 0;
                if (a.interval != b.interval) return a.interval < b.interval;
                return a.probability < b.probability;
              });
  }
  return out;
}

void ExpectSameContents(const TPRelation& expected_rel,
                        const TPRelation& actual_rel, bool sorted) {
  ASSERT_EQ(expected_rel.size(), actual_rel.size());
  const std::vector<CanonicalTuple> expected =
      Canonicalize(expected_rel, sorted);
  const std::vector<CanonicalTuple> actual = Canonicalize(actual_rel, sorted);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(CompareRows(expected[i].fact, actual[i].fact), 0)
        << "fact mismatch at " << i;
    EXPECT_EQ(expected[i].interval, actual[i].interval)
        << "interval mismatch at " << i;
    EXPECT_NEAR(expected[i].probability, actual[i].probability, 1e-9)
        << "probability mismatch at " << i;
  }
}

struct Workload {
  LineageManager manager;
  std::unique_ptr<TPRelation> r;
  std::unique_ptr<TPRelation> s;
};

std::unique_ptr<Workload> MakeWorkload(uint64_t seed, int64_t tuples,
                                       double fact_skew = 0.0,
                                       int64_t num_facts = 0) {
  auto w = std::make_unique<Workload>();
  Random rng(seed);
  UniformWorkloadOptions options;
  options.num_tuples = tuples;
  options.num_facts = num_facts > 0 ? num_facts : tuples / 8;
  options.history_length = 4000;
  options.avg_duration = 40.0;
  options.gap_probability = 0.3;
  options.fact_skew = fact_skew;
  StatusOr<TPRelation> r = MakeUniformWorkload(&w->manager, "r", options, &rng);
  TPDB_CHECK(r.ok()) << r.status().ToString();
  StatusOr<TPRelation> s = MakeUniformWorkload(&w->manager, "s", options, &rng);
  TPDB_CHECK(s.ok()) << s.status().ToString();
  w->r = std::make_unique<TPRelation>(std::move(*r));
  w->s = std::make_unique<TPRelation>(std::move(*s));
  return w;
}

ExecContext MakeParallelContext(ThreadPool* pool) {
  ExecOptions options;
  options.parallelism = 4;
  options.morsel_size = 64;
  options.min_parallel_rows = 32;
  return ExecContext(pool, options);
}

TPJoinOptions SweepOptions(int time_slices = 0) {
  TPJoinOptions options;
  options.overlap_algorithm = OverlapAlgorithm::kSweep;
  options.time_slices = time_slices;
  return options;
}

constexpr TPJoinKind kAllKinds[] = {
    TPJoinKind::kInner,      TPJoinKind::kAnti,      TPJoinKind::kLeftOuter,
    TPJoinKind::kRightOuter, TPJoinKind::kFullOuter, TPJoinKind::kSemi};

class TimePartitionTest : public ::testing::Test {
 protected:
  ThreadPool pool_{4};
};

TEST_F(TimePartitionTest, ChooseTimeSlicesSplitsUniformHistory) {
  const std::unique_ptr<Workload> w = MakeWorkload(3, 800);
  const std::vector<TimePoint> bounds =
      ChooseTimeSlices(*w->r, *w->s, /*target=*/4);
  ASSERT_FALSE(bounds.empty());
  EXPECT_LE(bounds.size(), 3u);
  for (size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);
  // Every boundary must fall inside the data's start range, else a slice
  // would be empty by construction.
  TimePoint min_ts = bounds.front(), max_ts = bounds.front();
  for (const TPTuple& t : w->r->tuples()) {
    min_ts = std::min(min_ts, t.interval.start);
    max_ts = std::max(max_ts, t.interval.start);
  }
  EXPECT_GT(bounds.front(), min_ts);
  EXPECT_LE(bounds.back(), max_ts);
}

TEST_F(TimePartitionTest, ChooseTimeSlicesRefusesDegenerateInputs) {
  LineageManager manager;
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  TPRelation r("r", schema, &manager);
  TPRelation s("s", schema, &manager);
  EXPECT_TRUE(ChooseTimeSlices(r, s, 4).empty());  // empty inputs

  // All-overlapping long intervals: every tuple would replicate into every
  // slice, so the chooser must refuse to partition.
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(r.AppendBase({Datum(i)}, Interval(i, 10000 + i), 0.5).ok());
    ASSERT_TRUE(s.AppendBase({Datum(i)}, Interval(i, 10000 + i), 0.5).ok());
  }
  EXPECT_TRUE(ChooseTimeSlices(r, s, 4).empty());
  EXPECT_TRUE(ChooseTimeSlices(r, s, 1).empty());  // target 1 = no split
}

TEST_F(TimePartitionTest, MatchesSerialSweepExactlyForEveryKind) {
  const std::unique_ptr<Workload> w = MakeWorkload(42, 1200);
  const JoinCondition theta = JoinCondition::Equals("key");
  for (const TPJoinKind kind : kAllKinds) {
    SCOPED_TRACE(TPJoinKindName(kind));
    StatusOr<TPRelation> serial =
        TPJoin(kind, *w->r, *w->s, theta, SweepOptions());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    ExecContext ctx = MakeParallelContext(&pool_);
    TimePartitionReport report;
    StatusOr<TPRelation> partitioned = TimePartitionedTPJoin(
        &ctx, kind, *w->r, *w->s, theta, SweepOptions(), &report);
    ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();

    // The driver regroups slices in time order per rid, so the output is
    // order-identical to the serial sweep — compare unsorted.
    ExpectSameContents(*serial, *partitioned, /*sorted=*/false);
    EXPECT_TRUE(partitioned->Validate().ok());
    EXPECT_GT(report.slices, 1) << "workload of this size must partition";
  }
}

TEST_F(TimePartitionTest, MatchesPartitionedProbeOnSkewedWorkload) {
  // Zipf-hot keys: the shape hash partitioning serializes on but time
  // slicing splits. Compare against the probe join, sorted (different
  // algorithms emit per-rid windows in different tie orders).
  const std::unique_ptr<Workload> w =
      MakeWorkload(7, 1000, /*fact_skew=*/1.5, /*num_facts=*/40);
  const JoinCondition theta = JoinCondition::Equals("key");
  for (const TPJoinKind kind : kAllKinds) {
    SCOPED_TRACE(TPJoinKindName(kind));
    StatusOr<TPRelation> probe = TPJoin(kind, *w->r, *w->s, theta);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    ExecContext ctx = MakeParallelContext(&pool_);
    StatusOr<TPRelation> partitioned =
        TimePartitionedTPJoin(&ctx, kind, *w->r, *w->s, theta, SweepOptions());
    ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
    ExpectSameContents(*probe, *partitioned, /*sorted=*/true);
  }
}

TEST_F(TimePartitionTest, SetOpsMatchSerialForEveryKind) {
  const std::unique_ptr<Workload> w = MakeWorkload(11, 900, /*fact_skew=*/0.0,
                                                  /*num_facts=*/60);
  for (const TPSetOpKind kind :
       {TPSetOpKind::kUnion, TPSetOpKind::kIntersect,
        TPSetOpKind::kDifference}) {
    SCOPED_TRACE(TPSetOpKindName(kind));
    StatusOr<TPRelation> serial = TPSetOp(kind, *w->r, *w->s);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ExecContext ctx = MakeParallelContext(&pool_);
    TimePartitionReport report;
    StatusOr<TPRelation> partitioned =
        TimePartitionedTPSetOp(&ctx, kind, *w->r, *w->s, "", &report);
    ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
    ExpectSameContents(*serial, *partitioned, /*sorted=*/true);
    EXPECT_TRUE(partitioned->Validate().ok());
    EXPECT_GT(report.slices, 1);
  }
}

TEST_F(TimePartitionTest, ReportAccountsForEverySlice) {
  const std::unique_ptr<Workload> w = MakeWorkload(19, 800);
  ExecContext ctx = MakeParallelContext(&pool_);
  TimePartitionReport report;
  StatusOr<TPRelation> joined =
      TimePartitionedTPJoin(&ctx, TPJoinKind::kLeftOuter, *w->r, *w->s,
                            JoinCondition::Equals("key"), SweepOptions(),
                            &report);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_GT(report.slices, 1);
  ASSERT_EQ(report.per_slice.size(), static_cast<size_t>(report.slices));
  EXPECT_GT(report.endpoints, 0u);
  EXPECT_GT(report.active_max, 0u);
  uint64_t r_rows = 0;
  for (const TimeSliceStats& slice : report.per_slice) {
    EXPECT_LE(slice.lo, slice.hi);
    EXPECT_LE(slice.active_max, report.active_max);
    r_rows += slice.r_rows;
  }
  // Replication means per-slice r rows sum to |r| plus r's share of the
  // replica count.
  EXPECT_GE(r_rows, w->r->size());
  EXPECT_LE(r_rows, w->r->size() + report.replicated);
}

TEST_F(TimePartitionTest, ParallelJoinEntryPointRoutesSweepToSlices) {
  const std::unique_ptr<Workload> w = MakeWorkload(29, 1100);
  const JoinCondition theta = JoinCondition::Equals("key");
  StatusOr<TPRelation> serial =
      TPJoin(TPJoinKind::kFullOuter, *w->r, *w->s, theta, SweepOptions());
  ASSERT_TRUE(serial.ok());

  ExecContext ctx = MakeParallelContext(&pool_);
  TimePartitionReport report;
  StatusOr<TPRelation> parallel = ParallelTPJoin(
      &ctx, TPJoinKind::kFullOuter, *w->r, *w->s, theta, SweepOptions(),
      &report);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectSameContents(*serial, *parallel, /*sorted=*/false);
  EXPECT_GT(report.slices, 1)
      << "ParallelTPJoin(kSweep) must dispatch to the time partitioner";
}

TEST_F(TimePartitionTest, ParallelSetOpFallsBackToTimeSlicesUnderSkew) {
  // One hot fact chain: fact hashing puts (almost) everything in one
  // partition, which triggers the time-partitioned fallback. The result
  // must still match the serial set op element-wise.
  LineageManager manager;
  Schema schema;
  schema.AddColumn({"key", DatumType::kInt64});
  TPRelation r("r", schema, &manager);
  TPRelation s("s", schema, &manager);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        r.AppendBase({Datum(int64_t{7})}, Interval(i * 10, i * 10 + 8), 0.6)
            .ok());
    ASSERT_TRUE(s.AppendBase({Datum(int64_t{7})},
                             Interval(i * 10 + 4, i * 10 + 9), 0.4)
                    .ok());
  }
  for (const TPSetOpKind kind :
       {TPSetOpKind::kUnion, TPSetOpKind::kIntersect,
        TPSetOpKind::kDifference}) {
    SCOPED_TRACE(TPSetOpKindName(kind));
    StatusOr<TPRelation> serial = TPSetOp(kind, r, s);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ExecContext ctx = MakeParallelContext(&pool_);
    StatusOr<TPRelation> parallel = ParallelTPSetOp(&ctx, kind, r, s);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameContents(*serial, *parallel, /*sorted=*/true);
  }
}

TEST_F(TimePartitionTest, SerialContextStillPartitionsWhenAsked) {
  // Even without a pool, an explicit slice hint must work (tasks run on
  // the calling thread) and produce the serial sweep's output.
  const std::unique_ptr<Workload> w = MakeWorkload(31, 600);
  const JoinCondition theta = JoinCondition::Equals("key");
  StatusOr<TPRelation> serial =
      TPJoin(TPJoinKind::kAnti, *w->r, *w->s, theta, SweepOptions());
  ASSERT_TRUE(serial.ok());
  ExecOptions options;
  options.parallelism = 1;
  ExecContext ctx(nullptr, options);
  StatusOr<TPRelation> partitioned = TimePartitionedTPJoin(
      &ctx, TPJoinKind::kAnti, *w->r, *w->s, theta, SweepOptions(4));
  ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
  ExpectSameContents(*serial, *partitioned, /*sorted=*/false);
}

}  // namespace
}  // namespace tpdb
