// tpdb_shell: interactive SQL shell over the binary wire protocol.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/tpdb_shell [host] [port]
//
// Commands:
//   <query>            run a query, pretty-print the streamed result
//   \e <query>         EXPLAIN: run server-side, show the full plan report
//   \p <query>         PREPARE: parse + plan only, show the logical tree
//   \t <query>         TRACE: run traced, print chrome://tracing JSON
//   \s                 storage + server statistics
//   \m [json]          metrics snapshot (Prometheus text, or JSON)
//   \q                 quit
//
// Set TPDB_AUTH_TOKEN to authenticate against a token-protected server.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "server/client.h"

using namespace tpdb;

namespace {

std::string DatumText(const Datum& d) {
  if (d.is_null()) return "NULL";
  switch (d.type()) {
    case DatumType::kInt64:
      return std::to_string(d.AsInt64());
    case DatumType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d.AsDouble());
      return buf;
    }
    case DatumType::kString:
      return d.AsString();
    default:
      return d.ToString();
  }
}

void PrintResult(const server::ClientResult& result) {
  const size_t num_cols = result.schema.num_columns();
  std::vector<size_t> widths(num_cols);
  std::vector<std::vector<std::string>> cells;
  cells.reserve(result.rows.size());
  for (size_t c = 0; c < num_cols; ++c)
    widths[c] = result.schema.column(c).name.size();
  for (const Row& row : result.rows) {
    std::vector<std::string> line;
    line.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      line.push_back(DatumText(row[c]));
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  for (size_t c = 0; c < num_cols; ++c)
    std::printf("%-*s%s", static_cast<int>(widths[c]),
                result.schema.column(c).name.c_str(),
                c + 1 < num_cols ? "  " : "\n");
  for (size_t c = 0; c < num_cols; ++c)
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 < num_cols ? "  " : "\n");
  for (const std::vector<std::string>& line : cells)
    for (size_t c = 0; c < num_cols; ++c)
      std::printf("%-*s%s", static_cast<int>(widths[c]), line[c].c_str(),
                  c + 1 < num_cols ? "  " : "\n");
  std::printf("(%llu row%s)\n",
              static_cast<unsigned long long>(result.total_rows),
              result.total_rows == 1 ? "" : "s");
}

}  // namespace

int main(int argc, char** argv) {
  server::ClientOptions options;
  options.host = argc > 1 ? argv[1] : "127.0.0.1";
  options.port =
      argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 5433;
  options.client_name = "tpdb_shell";
  if (const char* token = std::getenv("TPDB_AUTH_TOKEN"))
    options.auth_token = token;

  StatusOr<std::unique_ptr<server::Client>> client =
      server::Client::Connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n",
                 options.host.c_str(), options.port,
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected: %s\n", (*client)->banner().c_str());
  std::printf("type a query, \\e <query> to explain, \\p <query> to plan, "
              "\\t <query> to trace, \\s for stats, \\m for metrics, "
              "\\q to quit\n");

  std::string line;
  for (;;) {
    std::printf("tpdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim surrounding whitespace.
    const size_t begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    line = line.substr(begin, line.find_last_not_of(" \t\r\n") - begin + 1);
    if (line == "\\q" || line == "quit" || line == "exit") break;

    if (line == "\\s") {
      StatusOr<std::string> stats = (*client)->Stats();
      if (stats.ok())
        std::printf("%s", stats->c_str());
      else
        std::printf("error: %s\n", stats.status().ToString().c_str());
      continue;
    }

    if (line == "\\m" || line == "\\m json") {
      StatusOr<std::string> metrics = (*client)->Metrics(
          line == "\\m json" ? server::MetricsFormat::kJson
                             : server::MetricsFormat::kPrometheus);
      if (metrics.ok())
        std::printf("%s\n", metrics->c_str());
      else
        std::printf("error: %s\n", metrics.status().ToString().c_str());
      continue;
    }

    if (line.rfind("\\e ", 0) == 0 || line.rfind("\\p ", 0) == 0 ||
        line.rfind("\\t ", 0) == 0) {
      const char kind = line[1];
      const std::string query = line.substr(3);
      StatusOr<std::string> text = kind == 'e'   ? (*client)->Explain(query)
                                   : kind == 'p' ? (*client)->Prepare(query)
                                                 : (*client)->TraceQuery(query);
      if (text.ok())
        std::printf("%s\n", text->c_str());
      else
        std::printf("error: %s\n", text.status().ToString().c_str());
      continue;
    }

    StatusOr<server::ClientResult> result = (*client)->Query(line);
    if (result.ok())
      PrintResult(*result);
    else
      std::printf("error: %s\n", result.status().ToString().c_str());
  }
  (void)(*client)->Close().ok();
  return 0;
}
