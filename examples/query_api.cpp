// Example: the layered query API, three ways into the same plan.
//
// The booking scenario of Fig. 1, queried through (1) the SQL-like text
// front end, (2) the fluent QueryBuilder (no strings involved), and (3) a
// hand-assembled LogicalPlan — all three lower through the same planner
// onto the engine/ pipelines and tp/ window plans.
//
// Run: ./build/examples/query_api
#include <cstdio>

#include "api/database.h"

using namespace tpdb;

namespace {
void Must(const Status& st) { TPDB_CHECK(st.ok()) << st.ToString(); }
}  // namespace

int main() {
  TPDatabase db;

  Schema wants_schema;
  wants_schema.AddColumn({"Name", DatumType::kString});
  wants_schema.AddColumn({"Loc", DatumType::kString});
  StatusOr<TPRelation*> wants = db.CreateRelation("wants", wants_schema);
  TPDB_CHECK(wants.ok());
  Must((*wants)->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                            0.7, "a1"));
  Must((*wants)->AppendBase({Datum("Jim"), Datum("WEN")}, Interval(7, 10),
                            0.8, "a2"));

  Schema hotels_schema;
  hotels_schema.AddColumn({"Hotel", DatumType::kString});
  hotels_schema.AddColumn({"Loc", DatumType::kString});
  StatusOr<TPRelation*> hotels = db.CreateRelation("hotels", hotels_schema);
  TPDB_CHECK(hotels.ok());
  Must((*hotels)->AppendBase({Datum("hotel3"), Datum("SOR")}, Interval(1, 4),
                             0.9, "b1"));
  Must((*hotels)->AppendBase({Datum("hotel2"), Datum("ZAK")}, Interval(5, 8),
                             0.6, "b2"));
  Must((*hotels)->AppendBase({Datum("hotel1"), Datum("ZAK")}, Interval(4, 6),
                             0.7, "b3"));

  // 1) Text: with which probability does Ann find a room in ZAK, day by
  //    day, most likely options first?
  const char* text =
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY _ts WITH PROB >= 0.1";
  StatusOr<TPRelation> from_text = db.Query(text);
  TPDB_CHECK(from_text.ok()) << from_text.status().ToString();
  std::printf("== %s ==\n%s\n", text, from_text->ToString().c_str());

  // 2) QueryBuilder: the same query without the string front end.
  StatusOr<TPRelation> from_builder =
      db.Execute(QueryBuilder("wants")
                     .Join(TPJoinKind::kLeftOuter, "hotels", "Loc")
                     .Where("Loc = 'ZAK'")
                     .Select({"Name", "Hotel"})
                     .OrderBy("_ts")
                     .WithMinProb(0.1));
  TPDB_CHECK(from_builder.ok()) << from_builder.status().ToString();
  std::printf("QueryBuilder produced the same %zu tuples.\n\n",
              from_builder->size());

  // 3) A hand-assembled logical plan (what both front ends build).
  LogicalPlan plan;
  plan.root = LogicalNode::ProbThreshold(
      LogicalNode::Filter(
          LogicalNode::Join(LogicalNode::Scan("wants"),
                            LogicalNode::Scan("hotels"),
                            TPJoinKind::kLeftOuter, {{"Loc", "Loc"}}),
          AstCompare(CompareOp::kEq, AstColumn("Loc"),
                     AstLiteral(Datum("ZAK")))),
      0.1);
  StatusOr<TPRelation> from_plan = db.Execute(plan);
  TPDB_CHECK(from_plan.ok()) << from_plan.status().ToString();
  std::printf("Hand-built logical plan:\n%s", plan.ToString().c_str());

  // EXPLAIN shows the lowered operator tree with per-node rows and time.
  StatusOr<std::string> explain = db.Explain(text);
  TPDB_CHECK(explain.ok()) << explain.status().ToString();
  std::printf("\n%s\n", explain->c_str());
  return 0;
}
