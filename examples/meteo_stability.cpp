// Example: cross-station corroboration of stability predictions — the
// Meteo-Swiss-style workload of the paper's evaluation.
//
// Each tuple predicts "metric m at station s does not vary by more than
// 0.1 over [ts, te) with probability p". The TP full outer join over
// θ: same metric, different station reconciles two prediction feeds: at
// every time point it reports matched corroborations (both stations
// stable), plus — via the negating windows — the probability that a
// station's stability claim holds while every cross-station counterpart
// fails.
//
// Run: ./build/examples/meteo_stability [num_tuples]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "datasets/meteo.h"
#include "tp/operators.h"

using namespace tpdb;

int main(int argc, char** argv) {
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 4000;

  LineageManager manager;
  MeteoOptions options;
  options.num_tuples = n;
  StatusOr<MeteoDataset> ds = MakeMeteoDataset(&manager, options);
  TPDB_CHECK(ds.ok()) << ds.status().ToString();
  std::printf("generated %zu + %zu station-metric stability predictions\n",
              ds->r.size(), ds->s.size());

  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<TPRelation> reconciled =
      TPFullOuterJoin(ds->r, ds->s, ds->theta);
  TPDB_CHECK(reconciled.ok()) << reconciled.status().ToString();
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("full outer join: %zu output tuples in %.1f ms\n",
              reconciled->size(),
              std::chrono::duration<double, std::milli>(t1 - t0).count());

  // Aggregate per metric: corroborated (pair) vs solo (null-extended)
  // probability mass — a data-quality report per metric.
  const int r_metric = 1;  // (station, metric | station_s, metric_s)
  const int s_metric = 3;
  struct MetricStats {
    double corroborated = 0;
    double solo = 0;
    size_t tuples = 0;
  };
  std::map<int64_t, MetricStats> per_metric;
  for (size_t i = 0; i < reconciled->size(); ++i) {
    const TPTuple& t = reconciled->tuple(i);
    const bool has_r = !t.fact[r_metric].is_null();
    const bool has_s = !t.fact[s_metric].is_null();
    const int64_t metric = has_r ? t.fact[r_metric].AsInt64()
                                 : t.fact[s_metric].AsInt64();
    MetricStats& stats = per_metric[metric];
    ++stats.tuples;
    const double mass =
        reconciled->Probability(i) * static_cast<double>(t.interval.duration());
    if (has_r && has_s)
      stats.corroborated += mass;
    else
      stats.solo += mass;
  }

  std::printf("per-metric corroboration (top 5 by volume):\n");
  std::printf("  %-8s %-10s %-16s %-16s\n", "metric", "tuples",
              "corroborated", "uncorroborated");
  std::multimap<size_t, int64_t, std::greater<>> by_volume;
  for (const auto& [metric, stats] : per_metric)
    by_volume.emplace(stats.tuples, metric);
  size_t shown = 0;
  for (const auto& [volume, metric] : by_volume) {
    if (++shown > 5) break;
    const MetricStats& stats = per_metric[metric];
    std::printf("  %-8lld %-10zu %-16.1f %-16.1f\n",
                static_cast<long long>(metric), stats.tuples,
                stats.corroborated, stats.solo);
  }
  return 0;
}
