// Example: the TPDatabase facade and pipeline introspection.
//
// Loads the booking scenario through the catalog, runs queries through the
// textual interface, then rebuilds the window pipeline with per-stage
// instrumentation to show what the paper's "pipelined computation" means:
// the overlap join streams into LAWAU which streams into LAWAN, each stage
// adding exactly its own windows — no stage rescans or replicates input.
//
// Run: ./build/examples/pipeline_explain
#include <cstdio>

#include "api/database.h"
#include "engine/explain.h"
#include "engine/materialize.h"
#include "tp/lawan.h"
#include "tp/lawau.h"
#include "tp/plans.h"

using namespace tpdb;

namespace {
void Must(const Status& st) { TPDB_CHECK(st.ok()) << st.ToString(); }
}  // namespace

int main() {
  TPDatabase db;

  Schema wants_schema;
  wants_schema.AddColumn({"Name", DatumType::kString});
  wants_schema.AddColumn({"Loc", DatumType::kString});
  StatusOr<TPRelation*> wants = db.CreateRelation("wants", wants_schema);
  TPDB_CHECK(wants.ok());
  Must((*wants)->AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8),
                            0.7, "a1"));
  Must((*wants)->AppendBase({Datum("Jim"), Datum("WEN")}, Interval(7, 10),
                            0.8, "a2"));

  Schema hotels_schema;
  hotels_schema.AddColumn({"Hotel", DatumType::kString});
  hotels_schema.AddColumn({"Loc", DatumType::kString});
  StatusOr<TPRelation*> hotels = db.CreateRelation("hotels", hotels_schema);
  TPDB_CHECK(hotels.ok());
  Must((*hotels)->AppendBase({Datum("hotel3"), Datum("SOR")}, Interval(1, 4),
                             0.9, "b1"));
  Must((*hotels)->AppendBase({Datum("hotel2"), Datum("ZAK")}, Interval(5, 8),
                             0.6, "b2"));
  Must((*hotels)->AppendBase({Datum("hotel1"), Datum("ZAK")}, Interval(4, 6),
                             0.7, "b3"));

  // The textual query interface: legacy one-liners and full SELECTs both
  // run through the layered stack (parser → logical plan → planner).
  const char* queries[] = {
      "wants LEFT JOIN hotels ON Loc",
      "wants ANTI JOIN hotels ON Loc",
      "wants SEMI JOIN hotels ON Loc",
      "wants LEFT JOIN hotels ON Loc USING TA",
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY _ts LIMIT 5 WITH PROB >= 0.1",
  };
  for (const char* q : queries) {
    StatusOr<TPRelation> result = db.Query(q);
    TPDB_CHECK(result.ok()) << result.status().ToString();
    std::printf("query: %-42s -> %zu tuples\n", q, result->size());
  }

  // EXPLAIN: the logical plan plus the lowered, instrumented pipeline.
  StatusOr<std::string> explain = db.Explain(
      "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc "
      "WHERE Loc = 'ZAK' ORDER BY _ts LIMIT 5 WITH PROB >= 0.1");
  TPDB_CHECK(explain.ok()) << explain.status().ToString();
  std::printf("\n%s\n", explain->c_str());

  // Rebuild the left-outer window pipeline with instrumentation.
  StatusOr<TPRelation*> a = db.Get("wants");
  StatusOr<TPRelation*> b = db.Get("hotels");
  TPDB_CHECK(a.ok() && b.ok());
  StatusOr<WindowPlan> plan =
      MakeWindowPlan(**a, **b, JoinCondition::Equals("Loc"),
                     WindowStage::kOverlap, OverlapAlgorithm::kAuto);
  TPDB_CHECK(plan.ok()) << plan.status().ToString();

  ExecStats stats;
  OperatorPtr root =
      Instrument("overlap_join (θo ∧ θ)", std::move(plan->root), &stats);
  root = std::make_unique<Lawau>(std::move(root), plan->layout);
  root = Instrument("lawau (unmatched)", std::move(root), &stats);
  root = std::make_unique<Lawan>(std::move(root), plan->layout,
                                 db.manager());
  root = Instrument("lawan (negating)", std::move(root), &stats);
  const size_t windows = Drain(root.get());

  std::printf("\nwindow pipeline (%zu windows total):\n%s", windows,
              stats.ToString().c_str());
  std::printf(
      "\neach stage's row count = its input + the windows it creates:\n"
      "the pipeline is single-pass, with no tuple replication.\n");
  return 0;
}
