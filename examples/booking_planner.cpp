// Example: CSV-driven availability planner — exercises the I/O path and
// per-time-point reporting on top of the TP left outer join.
//
// The program writes two small CSV files (clients' destination wishes and
// hotel availability), loads them back as TP base relations, joins them,
// and prints a day-by-day report: for each client and day, the probability
// of finding a room and the probability of finding none.
//
// Run: ./build/examples/booking_planner [/tmp/workdir]
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "api/database.h"
#include "datasets/csv.h"

using namespace tpdb;

namespace {

void WriteInputFiles(const std::string& dir) {
  {
    std::ofstream out(dir + "/wants.csv");
    out << "name,loc,ts,te,p\n"
        << "Ann,ZAK,2,8,0.7\n"
        << "Jim,WEN,7,10,0.8\n"
        << "Mia,ZAK,1,5,0.9\n"
        << "Mia,SOR,5,9,0.6\n";
  }
  {
    std::ofstream out(dir + "/hotels.csv");
    out << "hotel,loc,ts,te,p\n"
        << "hotel3,SOR,1,4,0.9\n"
        << "hotel2,ZAK,5,8,0.6\n"
        << "hotel1,ZAK,4,6,0.7\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  WriteInputFiles(dir);

  TPDatabase db;
  Schema wants_schema;
  wants_schema.AddColumn({"name", DatumType::kString});
  wants_schema.AddColumn({"loc", DatumType::kString});
  Schema hotels_schema;
  hotels_schema.AddColumn({"hotel", DatumType::kString});
  hotels_schema.AddColumn({"loc", DatumType::kString});

  StatusOr<TPRelation> wants = ReadTPRelationCsv(
      dir + "/wants.csv", "wants", wants_schema, db.manager());
  TPDB_CHECK(wants.ok()) << wants.status().ToString();
  StatusOr<TPRelation> hotels = ReadTPRelationCsv(
      dir + "/hotels.csv", "hotels", hotels_schema, db.manager());
  TPDB_CHECK(hotels.ok()) << hotels.status().ToString();
  TPDB_CHECK(wants->Validate().ok());
  TPDB_CHECK(hotels->Validate().ok());

  std::printf("loaded %zu wishes, %zu availability records\n", wants->size(),
              hotels->size());

  // Hand the loaded relations to the catalog and query them by name.
  TPDB_CHECK(db.Register(std::move(*wants)).ok());
  TPDB_CHECK(db.Register(std::move(*hotels)).ok());
  StatusOr<TPRelation> plan =
      db.Query("SELECT * FROM wants LEFT JOIN hotels ON loc");
  TPDB_CHECK(plan.ok()) << plan.status().ToString();

  // Persist the result and reload it (round trip through the CSV layer).
  TPDB_CHECK(WriteTPRelationCsv(*plan, dir + "/plan.csv").ok());
  std::printf("wrote %s\n", (dir + "/plan.csv").c_str());

  // Day-by-day report: per client, P(some room) vs P(no room).
  // A tuple with a hotel column contributes to "room"; a null-extended
  // tuple is the probability of finding none (the negated lineage).
  const int name_col = plan->fact_schema().IndexOf("name");
  const int hotel_col = plan->fact_schema().IndexOf("hotel");
  TPDB_CHECK(name_col >= 0 && hotel_col >= 0);

  std::printf("\n%-5s %-6s %-28s %-10s\n", "day", "client", "best room offer",
              "P(no room)");
  for (TimePoint day = 1; day <= 10; ++day) {
    std::map<std::string, std::pair<std::string, double>> best_room;
    std::map<std::string, double> no_room;
    for (size_t i = 0; i < plan->size(); ++i) {
      const TPTuple& t = plan->tuple(i);
      if (!t.interval.Contains(day)) continue;
      const std::string client = t.fact[name_col].AsString();
      const double p = plan->Probability(i);
      if (t.fact[hotel_col].is_null()) {
        no_room[client] = p;
      } else {
        auto& best = best_room[client];
        if (p > best.second)
          best = {t.fact[hotel_col].AsString(), p};
      }
    }
    for (const auto& [client, p_none] : no_room) {
      const auto it = best_room.find(client);
      char offer[64];
      if (it != best_room.end())
        std::snprintf(offer, sizeof(offer), "%s (p=%.2f)",
                      it->second.first.c_str(), it->second.second);
      else
        std::snprintf(offer, sizeof(offer), "none on the market");
      std::printf("%-5lld %-6s %-28s %-10.3f\n",
                  static_cast<long long>(day), client.c_str(), offer,
                  p_none);
    }
  }
  return 0;
}
