// tpdb_server: serve a database over the binary wire protocol.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/tpdb_server [port] [snapshot.tpdb]
//
// With no snapshot argument the server generates a small demo workload
// (relations `r` and `s`, int64 `key` column) so a shell can connect and
// query immediately:
//
//   ./build/examples/tpdb_server 5433 &
//   ./build/examples/tpdb_shell 127.0.0.1 5433
//
// Stops on SIGINT/SIGTERM with a graceful drain (in-flight queries finish,
// every connection gets a Goodbye frame).
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "api/database.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "server/server.h"

using namespace tpdb;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 5433;
  const std::string snapshot = argc > 2 ? argv[2] : "";

  TPDatabase db;
  if (!snapshot.empty()) {
    const Status loaded = db.LoadSnapshot(snapshot);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", snapshot.c_str(),
                   loaded.ToString().c_str());
      return 1;
    }
    std::printf("loaded snapshot %s\n", snapshot.c_str());
  } else {
    Random rng(42);
    UniformWorkloadOptions options;
    options.num_tuples = 2000;
    options.num_facts = 100;
    options.history_length = 5000;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db.manager(), name, options, &rng);
      TPDB_CHECK(rel.ok()) << rel.status().ToString();
      TPDB_CHECK(db.Register(std::move(*rel)).ok());
    }
    std::printf("no snapshot given — generated demo relations r, s\n");
  }
  for (const std::string& name : db.RelationNames())
    std::printf("  relation %-12s %zu tuples\n", name.c_str(),
                (*db.Get(name))->size());

  server::ServerOptions options;
  options.port = port;
  if (const char* token = std::getenv("TPDB_AUTH_TOKEN"))
    options.auth_token = token;
  server::Server server(&db, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("tpdb server listening on %s:%u (Ctrl-C to stop)\n",
              options.host.c_str(), server.port());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("\ndraining...\n");
  server.Shutdown();
  const server::ServerStats stats = server.Stats();
  std::printf("served %llu queries (%llu failed) over %llu connections, "
              "%llu bytes sent\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_failed),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.bytes_sent));
  return 0;
}
