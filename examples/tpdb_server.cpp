// tpdb_server: serve a database over the binary wire protocol.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/tpdb_server [port] [snapshot.tpdb] \
//       [--metrics-dump=SECONDS] [--slow-query-ms=N]
//
// --metrics-dump=SECONDS periodically prints the Prometheus exposition of
// the metrics registry to stderr; --slow-query-ms=N logs any query slower
// than N milliseconds (also settable via TPDB_SLOW_QUERY_MS).
//
// With no snapshot argument the server generates a small demo workload
// (relations `r` and `s`, int64 `key` column) so a shell can connect and
// query immediately:
//
//   ./build/examples/tpdb_server 5433 &
//   ./build/examples/tpdb_shell 127.0.0.1 5433
//
// Stops on SIGINT/SIGTERM with a graceful drain (in-flight queries finish,
// every connection gets a Goodbye frame).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/database.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "obs/metrics.h"
#include "obs/slow_query.h"
#include "server/server.h"

using namespace tpdb;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 5433;
  std::string snapshot;
  long metrics_dump_s = 0;
  long slow_query_ms = -1;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-dump=", 15) == 0) {
      metrics_dump_s = std::atol(arg + 15);
    } else if (std::strncmp(arg, "--slow-query-ms=", 16) == 0) {
      slow_query_ms = std::atol(arg + 16);
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    } else if (positional++ == 0) {
      port = static_cast<uint16_t>(std::atoi(arg));
    } else {
      snapshot = arg;
    }
  }
  if (slow_query_ms >= 0) obs::SlowQueryLog::SetThresholdMs(slow_query_ms);

  TPDatabase db;
  if (!snapshot.empty()) {
    const Status loaded = db.LoadSnapshot(snapshot);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", snapshot.c_str(),
                   loaded.ToString().c_str());
      return 1;
    }
    std::printf("loaded snapshot %s\n", snapshot.c_str());
  } else {
    Random rng(42);
    UniformWorkloadOptions options;
    options.num_tuples = 2000;
    options.num_facts = 100;
    options.history_length = 5000;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db.manager(), name, options, &rng);
      TPDB_CHECK(rel.ok()) << rel.status().ToString();
      TPDB_CHECK(db.Register(std::move(*rel)).ok());
    }
    std::printf("no snapshot given — generated demo relations r, s\n");
  }
  for (const std::string& name : db.RelationNames())
    std::printf("  relation %-12s %zu tuples\n", name.c_str(),
                (*db.Get(name))->size());

  server::ServerOptions options;
  options.port = port;
  if (const char* token = std::getenv("TPDB_AUTH_TOKEN"))
    options.auth_token = token;
  server::Server server(&db, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("tpdb server listening on %s:%u (Ctrl-C to stop)\n",
              options.host.c_str(), server.port());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  long ticks = 0;
  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    // 5 ticks per second; dump the registry every metrics_dump_s seconds.
    if (metrics_dump_s > 0 && ++ticks % (5 * metrics_dump_s) == 0)
      std::fprintf(stderr, "%s",
                   obs::MetricsRegistry::Default().RenderPrometheus().c_str());
  }

  std::printf("\ndraining...\n");
  server.Shutdown();
  const server::ServerStats stats = server.Stats();
  std::printf("served %llu queries (%llu failed) over %llu connections, "
              "%llu bytes sent\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_failed),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.bytes_sent));
  return 0;
}
