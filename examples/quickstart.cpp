// Quickstart: the paper's running example (Fig. 1), end to end.
//
// A booking website archives prediction data: relation `a` records which
// location each client wants to visit (with a probability per day), and
// relation `b` records hotel availability per location. The TP left outer
// join answers, for every day, with which probability a client finds — or
// does not find — accommodation at their preferred location.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "lineage/print.h"
#include "tp/operators.h"
#include "tp/plans.h"

using namespace tpdb;

namespace {

void Must(const Status& st) {
  TPDB_CHECK(st.ok()) << st.ToString();
}

void PrintResult(const TPRelation& rel) {
  std::printf("%s\n", rel.ToString().c_str());
}

}  // namespace

int main() {
  // One LineageManager owns the base-tuple variables of the database.
  LineageManager manager;

  // a (wantsToVisit): Name, Loc.
  Schema a_schema;
  a_schema.AddColumn({"Name", DatumType::kString});
  a_schema.AddColumn({"Loc", DatumType::kString});
  TPRelation a("wantsToVisit", a_schema, &manager);
  Must(a.AppendBase({Datum("Ann"), Datum("ZAK")}, Interval(2, 8), 0.7, "a1"));
  Must(a.AppendBase({Datum("Jim"), Datum("WEN")}, Interval(7, 10), 0.8,
                    "a2"));

  // b (hotelAvailability): Hotel, Loc.
  Schema b_schema;
  b_schema.AddColumn({"Hotel", DatumType::kString});
  b_schema.AddColumn({"Loc", DatumType::kString});
  TPRelation b("hotelAvailability", b_schema, &manager);
  Must(b.AppendBase({Datum("hotel3"), Datum("SOR")}, Interval(1, 4), 0.9,
                    "b1"));
  Must(b.AppendBase({Datum("hotel2"), Datum("ZAK")}, Interval(5, 8), 0.6,
                    "b2"));
  Must(b.AppendBase({Datum("hotel1"), Datum("ZAK")}, Interval(4, 6), 0.7,
                    "b3"));

  Must(a.Validate());
  Must(b.Validate());
  std::printf("== Input relations (Fig. 1a) ==\n");
  PrintResult(a);
  PrintResult(b);

  // θ: a.Loc = b.Loc.
  const JoinCondition theta = JoinCondition::Equals("Loc");

  // The generalized lineage-aware temporal windows behind the join
  // (Fig. 2): unmatched, overlapping, and negating.
  std::printf("== Generalized windows of a w.r.t. b (Fig. 2) ==\n");
  StatusOr<std::vector<TPWindow>> windows =
      ComputeWindows(a, b, theta, WindowStage::kWuon);
  TPDB_CHECK(windows.ok()) << windows.status().ToString();
  SortWindows(&*windows);
  std::printf("%s\n", WindowsToString(manager, *windows).c_str());

  // Q = a ⟕Tp b — the TP left outer join of Fig. 1b.
  std::printf("== Q = a LEFT OUTER JOIN b on Loc (Fig. 1b) ==\n");
  StatusOr<TPRelation> q = TPLeftOuterJoin(a, b, theta);
  TPDB_CHECK(q.ok()) << q.status().ToString();
  PrintResult(*q);

  // The anti join: with which probability does a client find *no* room?
  std::printf("== a ANTI JOIN b on Loc ==\n");
  StatusOr<TPRelation> anti = TPAntiJoin(a, b, theta);
  TPDB_CHECK(anti.ok()) << anti.status().ToString();
  PrintResult(*anti);

  // Both strategies agree; TA just works harder (see bench/).
  TPJoinOptions ta;
  ta.strategy = JoinStrategy::kTemporalAlignment;
  StatusOr<TPRelation> q_ta = TPLeftOuterJoin(a, b, theta, ta);
  TPDB_CHECK(q_ta.ok()) << q_ta.status().ToString();
  std::printf("NJ result: %zu tuples; TA baseline: %zu tuples (identical)\n",
              q->size(), q_ta->size());
  return 0;
}
