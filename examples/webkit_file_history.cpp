// Example: change-conflict detection over file-history predictions — the
// Webkit-style workload that motivates the paper's evaluation.
//
// Two prediction sources (e.g. two models trained on the repository's
// commit log) each emit tuples "file f remains unchanged over [ts, te)
// with probability p". The TP anti join r ▷ s answers: over which periods,
// and with which probability, does source r predict stability that source
// s does NOT corroborate — i.e. r says "unchanged" while every overlapping
// s prediction for the same file is false?
//
// Run: ./build/examples/webkit_file_history [num_tuples]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "datasets/webkit.h"
#include "tp/operators.h"

using namespace tpdb;

int main(int argc, char** argv) {
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;

  LineageManager manager;
  WebkitOptions options;
  options.num_tuples = n;
  StatusOr<WebkitDataset> ds = MakeWebkitDataset(&manager, options);
  TPDB_CHECK(ds.ok()) << ds.status().ToString();
  std::printf("generated %zu + %zu file-history predictions\n", ds->r.size(),
              ds->s.size());

  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<TPRelation> uncorroborated =
      TPAntiJoin(ds->r, ds->s, ds->theta);
  TPDB_CHECK(uncorroborated.ok()) << uncorroborated.status().ToString();
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("anti join: %zu output tuples in %.1f ms\n",
              uncorroborated->size(), ms);

  // Summarize: how much of the output is genuinely negated (the lineage
  // mentions s tuples) vs plain unmatched periods?
  size_t negated = 0;
  double negated_prob_mass = 0.0;
  for (size_t i = 0; i < uncorroborated->size(); ++i) {
    const LineageRef lam = uncorroborated->tuple(i).lineage;
    if (manager.KindOf(lam) == LineageKind::kAnd) {
      ++negated;
      negated_prob_mass += uncorroborated->Probability(i);
    }
  }
  std::printf(
      "  %zu tuples negate at least one conflicting prediction "
      "(avg probability %.3f)\n",
      negated, negated > 0 ? negated_prob_mass / negated : 0.0);

  // Show the three most uncertain conflict periods (probability nearest
  // 0.5 — where the sources genuinely disagree).
  std::printf("sample of contested periods:\n");
  size_t shown = 0;
  for (size_t i = 0; i < uncorroborated->size() && shown < 3; ++i) {
    const double p = uncorroborated->Probability(i);
    if (manager.KindOf(uncorroborated->tuple(i).lineage) !=
        LineageKind::kAnd)
      continue;
    if (p < 0.25 || p > 0.75) continue;
    const TPTuple& t = uncorroborated->tuple(i);
    std::printf("  file %s over %s: P(unchanged per r, uncorroborated) = %.3f\n",
                t.fact[0].ToString().c_str(), t.interval.ToString().c_str(),
                p);
    ++shown;
  }
  return 0;
}
