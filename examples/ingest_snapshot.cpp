// Ingest a benchmark dataset once and persist it as a columnar snapshot:
//
//   ./examples/ingest_snapshot --dataset webkit --tuples 20000 \
//       --snapshot webkit.tpdb [--segment-rows 4096] [--seed 7]
//
// Later runs (benches, examples, sessions) start from the snapshot:
//
//   db.Query("LOAD SNAPSHOT 'webkit.tpdb'");
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/database.h"
#include "datasets/ingest.h"

int main(int argc, char** argv) {
  tpdb::IngestOptions options;
  options.snapshot_path = "dataset.tpdb";
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s is missing its value\n", flag.c_str());
      return 2;
    }
    const char* value = argv[i + 1];
    if (flag == "--dataset") {
      options.dataset = value;
    } else if (flag == "--tuples") {
      options.num_tuples = std::atoll(value);
    } else if (flag == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--snapshot") {
      options.snapshot_path = value;
    } else if (flag == "--segment-rows") {
      options.segment_rows = static_cast<size_t>(std::atoll(value));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  tpdb::TPDatabase db;
  const tpdb::Status status = tpdb::IngestDataset(&db, options);
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  for (const std::string& name : db.RelationNames()) {
    tpdb::StatusOr<const tpdb::TPRelation*> rel =
        const_cast<const tpdb::TPDatabase&>(db).Get(name);
    std::printf("%-12s %zu tuples\n", name.c_str(), (*rel)->size());
  }
  std::printf("snapshot written to %s\n", options.snapshot_path.c_str());
  std::printf("start from it with: LOAD SNAPSHOT '%s'\n",
              options.snapshot_path.c_str());
  return 0;
}
